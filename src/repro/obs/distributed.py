"""Cross-process trace context for the sharded serve stack.

One request through ``ttm-cas serve --workers N`` crosses three
processes: the parent router, a prefork worker, and (inside the worker)
the batcher's executor threads.  Each process runs its own in-process
:class:`~repro.obs.trace.Tracer`; what stitches their spans into *one*
trace is a compact W3C ``traceparent``-style context minted at router
admission and carried over the router→worker HTTP hop as a header:

``00-<32 hex trace id>-<16 hex span id>-<01|00>``

The trace id names the request end to end; the span id names the
*sender's* span (so the receiver can record it as ``parent_ctx``); the
trailing flags byte carries the sampling bit.  Span records then tag
themselves with ``trace_id`` / ``ctx_span`` / ``parent_ctx`` attributes
and :func:`stitch_trace` reassembles the cross-process tree: seed spans
matched by trace id, batch spans reached through the ``batch_span_id``
attribute stamped by the coalescing batcher, and engine-kernel spans
reached as in-process descendants.

Everything here is stdlib-only and allocation-light: contexts are
frozen dataclasses, ids come from :func:`os.urandom`, and parsing never
raises on malformed headers (it returns ``None`` — a bad header from a
client must not fail the request).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "REQUEST_ID_HEADER",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "mint_request_id",
    "mint_trace_context",
    "parse_traceparent",
    "stitch_trace",
]

#: Header carrying the trace context across the router→worker hop.
TRACEPARENT_HEADER = "traceparent"

#: Header carrying the request id (router-minted, echoed by workers).
REQUEST_ID_HEADER = "x-request-id"

_HEX = set("0123456789abcdef")

# Request ids are ordered per process: "pid-counter" reads naturally in
# logs and never collides across the prefork fleet.
_REQUEST_COUNTER = itertools.count(1)


def mint_request_id() -> str:
    """A process-unique, human-scannable request id (``pid-counter``)."""
    return f"{os.getpid():x}-{next(_REQUEST_COUNTER):x}"


def _hex_token(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """A parsed/mintable ``traceparent`` context.

    ``span_id`` is the wire id of the span that *owns* this context —
    the sender's current span.  The receiver records it as its parent.
    """

    trace_id: str  # 32 lowercase hex chars
    span_id: str  # 16 lowercase hex chars
    sampled: bool = True

    def to_traceparent(self) -> str:
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id: the context a receiver would
        forward if it called further downstream."""
        return TraceContext(self.trace_id, _hex_token(8), self.sampled)


def mint_trace_context(sampled: bool = True) -> TraceContext:
    """Mint a brand-new context at admission (router or solo server)."""
    return TraceContext(_hex_token(16), _hex_token(8), sampled)


def _is_hex(token: str, length: int) -> bool:
    return len(token) == length and all(c in _HEX for c in token)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    Only version ``00`` is accepted; an all-zero trace or span id is
    invalid per the W3C spec and rejected here too.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != "00":
        return None
    if not _is_hex(trace_id, 32) or set(trace_id) == {"0"}:
        return None
    if not _is_hex(span_id, 16) or set(span_id) == {"0"}:
        return None
    if not _is_hex(flags, 2):
        return None
    return TraceContext(trace_id, span_id, bool(int(flags, 16) & 0x01))


def _as_dict(span: Any) -> Dict[str, Any]:
    if hasattr(span, "to_jsonable"):
        return span.to_jsonable()
    return dict(span)


def stitch_trace(
    spans: Iterable[Any], trace_id: str
) -> List[Dict[str, Any]]:
    """Extract the single cross-process trace ``trace_id`` from a span
    soup merged across router and workers.

    Three joins, in order:

    1. *seeds* — spans whose ``attributes["trace_id"]`` matches (the
       router admission span and each worker request span);
    2. *batch membership* — each seed may carry a ``batch_span_id``
       attribute stamped by the coalescing batcher; the named
       ``serve.batch`` span joins even though, having fused several
       requests, it belongs to no single parent;
    3. *descendants* — the in-process ``parent_id`` closure under every
       span found so far (engine-kernel spans nest under the batch
       span on the worker's executor thread).

    Spans come back sorted by start time; each input may be a
    ``SpanRecord`` or an already-jsonable dict.
    """
    records = [_as_dict(s) for s in spans]
    by_id: Dict[str, Dict[str, Any]] = {}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        by_id[record["span_id"]] = record
        children.setdefault(record.get("parent_id"), []).append(record)

    seeds = [
        r
        for r in records
        if r.get("attributes", {}).get("trace_id") == trace_id
    ]
    queue = list(seeds)
    for seed in seeds:
        batch_id = seed.get("attributes", {}).get("batch_span_id")
        if batch_id in by_id:
            queue.append(by_id[batch_id])

    seen: Dict[str, bool] = {}
    stitched: List[Dict[str, Any]] = []
    while queue:
        record = queue.pop()
        span_id = record["span_id"]
        if span_id in seen:
            continue
        seen[span_id] = True
        stitched.append(record)
        queue.extend(children.get(span_id, ()))

    stitched.sort(key=lambda r: (r.get("start_unix_ns", 0), r["span_id"]))
    return stitched
