"""Exception hierarchy for the ttm-cas reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Specific subclasses signal which subsystem rejected the
input, mirroring the paper's constraints (e.g. a process node with zero wafer
production rate cannot fabricate anything, Sec. 6.2).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class UnknownNodeError(ReproError, KeyError):
    """A process node name is not present in the technology database."""

    def __init__(self, name: str, known: tuple = ()):  # type: ignore[assignment]
        self.name = name
        self.known = tuple(known)
        message = f"unknown process node {name!r}"
        if self.known:
            message += f" (known nodes: {', '.join(self.known)})"
        super().__init__(message)


class NodeUnavailableError(ReproError):
    """A node exists but has no production capacity (e.g. 20 nm / 10 nm).

    TSMC reported 0% revenue from 20 nm and 10 nm in 2022 Q2 (paper Sec. 6.2),
    which the dataset encodes as a zero wafer production rate. Requesting
    fabrication on such a node is a modeling error, not a long queue.
    """

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"process node {name!r} has no wafer production capacity; "
            "it cannot fabricate wafers under current market conditions"
        )


class InvalidDesignError(ReproError, ValueError):
    """A chip design violates a structural invariant (e.g. NUT > NTT)."""


class InvalidParameterError(ReproError, ValueError):
    """A numeric model parameter is outside its valid domain."""


class CalibrationError(ReproError):
    """A regression fit could not be computed from the given anchor data."""
