"""Fig. 8 — total-effect sensitivity of A11 TTM per node (Sec. 6.2).

For every node, Sobol total-effect indices of TTM with respect to the six
guarded inputs under +-10% variance. The paper's pattern:

* legacy nodes (250-90 nm): NTT dominates (area -> wafers -> production);
* mid nodes (65-7 nm): foundry/OSAT latency variance dominates;
* 5 nm: NUT rises (exponential tapeout effort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..design.library.a11 import A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS
from ..engine.sobol_adapter import ttm_factor_batch_function
from ..sensitivity.sobol import DEFAULT_BASE_SAMPLES, SobolResult, sobol_indices
from ..sensitivity.ttm_factors import FACTOR_NAMES, ttm_factor_function, ttm_factors
from ..ttm.model import TTMModel
from .fig07_a11_ttm_cost import DEFAULT_N_CHIPS, DEFAULT_PROCESSES


@dataclass(frozen=True)
class Fig08Result:
    """Total-effect matrix, factor rows x node columns (like the figure)."""

    n_chips: float
    processes: Tuple[str, ...]
    results: Mapping[str, SobolResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", dict(self.results))

    def total_effect(self, factor: str, process: str) -> float:
        """One heatmap cell."""
        return self.results[process].total_effect[factor]

    def dominant_factor(self, process: str) -> str:
        """The factor with the largest S_T on one node."""
        return self.results[process].dominant_factor

    def table(self) -> str:
        """The heatmap as a factor x node table."""
        headers = ["factor"] + list(self.processes)
        rows = []
        for factor in FACTOR_NAMES:
            rows.append(
                [factor]
                + [self.total_effect(factor, process) for process in self.processes]
            )
        return format_table(headers, rows)


def run(
    model: Optional[TTMModel] = None,
    processes: Sequence[str] = DEFAULT_PROCESSES,
    n_chips: float = DEFAULT_N_CHIPS,
    base_samples: int = DEFAULT_BASE_SAMPLES,
    vectorized: bool = True,
) -> Fig08Result:
    """Regenerate Fig. 8's sensitivity heatmap (N*(k+2) evals per node).

    ``vectorized`` (the default) evaluates each Saltelli matrix in one
    batched call via
    :func:`repro.engine.sobol_adapter.ttm_factor_batch_function`; set it
    to False to take the scalar per-row objective instead. Both paths
    consume the same sample stream and agree to round-off.
    """
    ttm_model = model or TTMModel.nominal()
    technology = ttm_model.foundry.technology
    results = {}
    for process in processes:
        factors = ttm_factors(
            process, A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS, technology
        )
        if vectorized:
            function = ttm_factor_batch_function(process, n_chips, technology)
        else:
            function = ttm_factor_function(process, n_chips, technology)
        results[process] = sobol_indices(
            function, factors, base_samples=base_samples, vectorized=vectorized
        )
    return Fig08Result(
        n_chips=n_chips, processes=tuple(processes), results=results
    )
