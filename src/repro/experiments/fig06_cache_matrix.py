"""Fig. 6 — IPC/TTM-optimal (I$, D$) per node and production volume.

For each (process node, number of final chips) cell, find the cache pair
maximizing IPC per week of time-to-market. The paper's trends:

* shrinking nodes make cache area cheap -> optimal capacities grow;
* larger volumes make wafer throughput the bottleneck -> optimal
  capacities shrink;
* data caches are generally preferred, except at legacy nodes under
  mass production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.sweep import chip_quantities
from ..analysis.tables import format_table
from ..design.library.ariane import CACHE_SWEEP_KB, ariane_manycore
from ..perf.ipc import IPCModel
from ..ttm.model import TTMModel
from .fig04_cache_scatter import DEFAULT_CAPACITY_SHARE

DEFAULT_PROCESSES: Tuple[str, ...] = (
    "250nm",
    "180nm",
    "130nm",
    "90nm",
    "65nm",
    "40nm",
    "28nm",
    "14nm",
    "7nm",
    "5nm",
)
DEFAULT_CORES = 16


@dataclass(frozen=True)
class CellOptimum:
    """Best cache pair for one (node, quantity) cell."""

    process: str
    n_chips: float
    icache_kb: int
    dcache_kb: int
    ipc: float
    ttm_weeks: float
    cache_area_fraction: float


@dataclass(frozen=True)
class Fig06Result:
    """The optimization matrix, keyed by (process, n_chips)."""

    processes: Tuple[str, ...]
    quantities: Tuple[float, ...]
    cells: Mapping[Tuple[str, float], CellOptimum] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", dict(self.cells))

    def cell(self, process: str, n_chips: float) -> CellOptimum:
        """One matrix cell."""
        return self.cells[(process, n_chips)]

    def table(self) -> str:
        """The matrix as "I$/D$" cells (KB), quantities as rows."""
        headers = ["chips"] + list(self.processes)
        rows = []
        for quantity in self.quantities:
            row = [f"{quantity:g}"]
            for process in self.processes:
                best = self.cells[(process, quantity)]
                row.append(f"{best.icache_kb}/{best.dcache_kb}")
            rows.append(row)
        return format_table(headers, rows)


def _cache_area_fraction(
    model: TTMModel, process: str, cores: int, icache_kb: int, dcache_kb: int
) -> float:
    """Fraction of die area spent on the swept caches (the color bar)."""
    node = model.foundry.technology[process]
    with_caches = ariane_manycore(
        process, cores=cores, icache_kb=icache_kb, dcache_kb=dcache_kb
    )
    # A hypothetical cache-less design isolates the cache contribution.
    minimal = ariane_manycore(process, cores=cores, icache_kb=0, dcache_kb=0)
    total = with_caches.dies[0].area_on(node)
    base = minimal.dies[0].area_on(node)
    return (total - base) / total


def run(
    model: Optional[TTMModel] = None,
    ipc_model: Optional[IPCModel] = None,
    processes: Sequence[str] = DEFAULT_PROCESSES,
    quantities: Optional[Sequence[float]] = None,
    cores: int = DEFAULT_CORES,
    sizes_kb: Optional[Sequence[int]] = None,
    capacity_share: float = DEFAULT_CAPACITY_SHARE,
) -> Fig06Result:
    """Regenerate Fig. 6's optimal-configuration matrix."""
    ttm_model = (model or TTMModel.nominal()).at_capacity(capacity_share)
    perf = ipc_model or IPCModel()
    volume_grid = tuple(quantities) if quantities else chip_quantities()
    sweep = tuple(sizes_kb) if sizes_kb else CACHE_SWEEP_KB
    cells = {}
    for process in processes:
        for n_chips in volume_grid:
            best: Optional[CellOptimum] = None
            for icache_kb in sweep:
                for dcache_kb in sweep:
                    design = ariane_manycore(
                        process,
                        cores=cores,
                        icache_kb=icache_kb,
                        dcache_kb=dcache_kb,
                    )
                    ipc = perf.ipc(icache_kb, dcache_kb)
                    ttm = ttm_model.total_weeks(design, n_chips)
                    candidate = CellOptimum(
                        process=process,
                        n_chips=n_chips,
                        icache_kb=icache_kb,
                        dcache_kb=dcache_kb,
                        ipc=ipc,
                        ttm_weeks=ttm,
                        cache_area_fraction=0.0,
                    )
                    if best is None or ipc / ttm > best.ipc / best.ttm_weeks:
                        best = candidate
            assert best is not None  # sweep is never empty
            fraction = _cache_area_fraction(
                ttm_model, process, cores, best.icache_kb, best.dcache_kb
            )
            cells[(process, n_chips)] = CellOptimum(
                process=best.process,
                n_chips=best.n_chips,
                icache_kb=best.icache_kb,
                dcache_kb=best.dcache_kb,
                ipc=best.ipc,
                ttm_weeks=best.ttm_weeks,
                cache_area_fraction=fraction,
            )
    return Fig06Result(
        processes=tuple(processes), quantities=volume_grid, cells=cells
    )
