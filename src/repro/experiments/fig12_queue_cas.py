"""Fig. 12 — queue time erodes agility (CAS view, Sec. 6.3).

Same setup as Fig. 11, but plotting CAS. Because the quoted backlog adds
``N_ahead / mu_W`` to TTM, it adds ``N_ahead / mu_W^2`` to the Eq. 8
sensitivity, so even one quoted week slashes the maximum CAS — the paper
reports a 37% drop for 1 week of queue at 7 nm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.sweep import capacity_fractions
from ..analysis.tables import format_table
from ..design.library.a11 import a11
from ..engine.batch import cas_over_capacity
from ..engine.parallel import parallel_map
from ..ttm.model import TTMModel
from .fig07_a11_ttm_cost import DEFAULT_N_CHIPS
from .fig11_queue_ttm import DEFAULT_PROCESS, DEFAULT_QUEUES, queue_model


@dataclass(frozen=True)
class Fig12Result:
    """CAS series per quoted queue time."""

    process: str
    n_chips: float
    fractions: Tuple[float, ...]
    series: Mapping[float, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "series", dict(self.series))

    def max_cas(self) -> Mapping[float, float]:
        """{queue weeks: max CAS over the sweep}."""
        return {queue: max(values) for queue, values in self.series.items()}

    def one_week_drop(self) -> float:
        """Fractional max-CAS loss from a 1-week quote (paper: ~37%)."""
        peaks = self.max_cas()
        return 1.0 - peaks[1.0] / peaks[0.0]

    def table(self) -> str:
        """The curves as rows per capacity point."""
        headers = ["capacity %"] + [f"queue {q:g} wk" for q in self.series]
        rows = []
        for i, fraction in enumerate(self.fractions):
            rows.append(
                [round(fraction * 100)]
                + [self.series[queue][i] for queue in self.series]
            )
        return format_table(headers, rows)


def run(
    model: Optional[TTMModel] = None,
    process: str = DEFAULT_PROCESS,
    n_chips: float = DEFAULT_N_CHIPS,
    queues: Sequence[float] = DEFAULT_QUEUES,
    fractions: Optional[Sequence[float]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> Fig12Result:
    """Regenerate Fig. 12's CAS-vs-capacity curves per queue time.

    Each queue's curve is one batched CAS call; ``executor`` fans the
    per-queue work out through :func:`repro.engine.parallel.parallel_map`.
    """
    base = model or TTMModel.nominal()
    sweep = tuple(fractions) if fractions else capacity_fractions(0.25, 1.0, 16)
    design = a11(process)

    def queue_curve(queue_weeks: float) -> Tuple[float, ...]:
        queued = queue_model(base, process, queue_weeks)
        return tuple(cas_over_capacity(queued, design, n_chips, sweep))

    curves = parallel_map(
        queue_curve, queues, executor=executor, max_workers=max_workers
    )
    series = dict(zip(queues, curves))
    return Fig12Result(
        process=process, n_chips=n_chips, fractions=sweep, series=series
    )
