"""Fig. 13 — chiplet & mixed-process study: TTM, cost, CAS (Sec. 6.5).

Eight Zen-2-class variants (mixed-process, single-process chiplets with
and without interposer, monolithic equivalents) evaluated over a range of
final-chip volumes (TTM/cost) and over the capacity sweep (CAS). The
paper's findings this experiment checks:

* mixed-process Zen 2 is faster to market than the all-7nm design (the
  dies proceed in parallel and the I/O die's tapeout is cheap at 12 nm),
  but costs more (two tapeouts, two mask sets);
* chiplets beat equivalent monolithic designs on TTM, cost and CAS;
* interposer variants are strictly worse (an extra large legacy die must
  arrive before packaging);
* the mixed design is the most agile at full capacity but carries extra
  vulnerability: disrupting *either* of its nodes hurts it, which
  :func:`node_disruption` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..agility.cas import chip_agility_score
from ..analysis.sweep import capacity_fractions
from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..design.library.zen2 import fig13_variants
from ..engine.batch import batch_ttm, cas_over_capacity
from ..engine.parallel import parallel_map
from ..engine.portfolio import (
    portfolio_cas_over_capacity,
    portfolio_cost,
    portfolio_ttm,
)
from ..errors import InvalidParameterError
from ..market.conditions import MarketConditions
from ..ttm.model import TTMModel

DEFAULT_QUANTITIES: Tuple[float, ...] = (10e6, 25e6, 50e6, 75e6, 100e6)
DEFAULT_CAS_N_CHIPS = 50e6


@dataclass(frozen=True)
class Fig13Result:
    """TTM/cost series per variant plus CAS curves."""

    quantities: Tuple[float, ...]
    fractions: Tuple[float, ...]
    ttm: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)
    cost: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)
    cas: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ttm", dict(self.ttm))
        object.__setattr__(self, "cost", dict(self.cost))
        object.__setattr__(self, "cas", dict(self.cas))

    @property
    def variants(self) -> Tuple[str, ...]:
        """Variant names in legend order."""
        return tuple(self.ttm)

    def cas_at_full_capacity(self) -> Dict[str, float]:
        """{variant: CAS} at max production rate."""
        return {name: values[-1] for name, values in self.cas.items()}

    def table(self) -> str:
        """Per-variant TTM / cost / CAS at the largest volume."""
        rows = []
        full_cas = self.cas_at_full_capacity()
        for name in self.variants:
            rows.append(
                [
                    name,
                    self.ttm[name][-1],
                    self.cost[name][-1] / 1e9,
                    full_cas[name],
                ]
            )
        return format_table(
            [
                "variant",
                f"TTM wk @{self.quantities[-1]:g}",
                "cost $B",
                "CAS @100%",
            ],
            rows,
        )


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    quantities: Sequence[float] = DEFAULT_QUANTITIES,
    cas_n_chips: float = DEFAULT_CAS_N_CHIPS,
    fractions: Optional[Sequence[float]] = None,
    designs: Optional[Sequence[ChipDesign]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    engine: str = "portfolio",
) -> Fig13Result:
    """Regenerate Fig. 13's three panels.

    ``engine="portfolio"`` (default) evaluates all eight variants per
    panel in one fused (designs x grid) pass over a shared compiled
    portfolio; ``engine="loop"`` keeps one batched engine call per
    variant as the equivalence oracle, fanned out through
    :func:`repro.engine.parallel.parallel_map`.
    """
    ttm_model = model or TTMModel.nominal()
    costs = cost_model or CostModel.nominal()
    sweep = tuple(fractions) if fractions else capacity_fractions(0.15, 1.0, 18)
    variants = tuple(designs) if designs else fig13_variants()
    volume_grid = tuple(quantities)

    if engine == "portfolio":
        ttm_matrix = portfolio_ttm(
            ttm_model, variants, volume_grid
        ).total_weeks
        cost_matrix = portfolio_cost(
            costs, variants, volume_grid, engineers=ttm_model.engineers
        ).total_usd
        cas_matrix = portfolio_cas_over_capacity(
            ttm_model, variants, cas_n_chips, sweep
        )
        return Fig13Result(
            quantities=volume_grid,
            fractions=sweep,
            ttm={
                design.name: tuple(float(w) for w in ttm_matrix[i])
                for i, design in enumerate(variants)
            },
            cost={
                design.name: tuple(float(c) for c in cost_matrix[i])
                for i, design in enumerate(variants)
            },
            cas={
                design.name: tuple(cas_matrix[i])
                for i, design in enumerate(variants)
            },
        )
    if engine != "loop":
        raise InvalidParameterError(
            f"unknown engine {engine!r}; use 'portfolio' or 'loop'"
        )

    def panels(design: ChipDesign):
        ttm = batch_ttm(ttm_model, design, volume_grid).total_weeks
        return (
            tuple(float(weeks) for weeks in ttm),
            tuple(costs.total_usd(design, n) for n in volume_grid),
            tuple(cas_over_capacity(ttm_model, design, cas_n_chips, sweep)),
        )

    results = parallel_map(
        panels, variants, executor=executor, max_workers=max_workers
    )
    ttm_series = {}
    cost_series = {}
    cas_series = {}
    for design, (ttm, cost, cas) in zip(variants, results):
        ttm_series[design.name] = ttm
        cost_series[design.name] = cost
        cas_series[design.name] = cas
    return Fig13Result(
        quantities=tuple(quantities),
        fractions=sweep,
        ttm=ttm_series,
        cost=cost_series,
        cas=cas_series,
    )


def node_disruption(
    design: ChipDesign,
    model: Optional[TTMModel] = None,
    n_chips: float = DEFAULT_CAS_N_CHIPS,
    capacity: float = 0.5,
) -> Dict[str, float]:
    """TTM after halving each node the design uses, one at a time.

    Quantifies the mixed-process vulnerability the paper describes: a
    single-node design only fears its own node; a mixed design can be
    stalled by a disruption on *any* of its nodes.
    """
    base = model or TTMModel.nominal()
    outcomes: Dict[str, float] = {
        "nominal": base.total_weeks(design, n_chips)
    }
    for process in design.processes:
        conditions = MarketConditions.nominal().with_capacity(process, capacity)
        disrupted = base.with_foundry(base.foundry.with_conditions(conditions))
        outcomes[process] = disrupted.total_weeks(design, n_chips)
    return outcomes


def agility_gains(result: Fig13Result) -> Dict[str, float]:
    """Mixed-design CAS gain over the single-process variants.

    The paper's abstract quotes 24%-51% over equivalent single-process
    chiplet and monolithic designs.
    """
    full = result.cas_at_full_capacity()
    mixed = full["Zen 2"]
    return {
        name: mixed / value - 1.0
        for name, value in full.items()
        if name != "Zen 2"
    }


def full_capacity_cas(
    design: ChipDesign,
    model: Optional[TTMModel] = None,
    n_chips: float = DEFAULT_CAS_N_CHIPS,
) -> float:
    """CAS of one variant at nominal conditions (helper for tests)."""
    base = model or TTMModel.nominal()
    return chip_agility_score(base, design, n_chips).normalized
