"""Fig. 4 — IPC vs TTM over the (I$, D$) design space (Sec. 6.1).

Workload: a 16-core Ariane chip at 14 nm manufactured at 100 M units,
sweeping each L1 from 1 KB to 1 MB. Small caches buy IPC almost for free;
past ~512 KB combined, diminishing IPC returns meet growing die area and
TTM climbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..design.library.ariane import CACHE_SWEEP_KB, ariane_manycore
from ..perf.ipc import IPCModel
from ..ttm.model import TTMModel

DEFAULT_PROCESS = "14nm"
DEFAULT_N_CHIPS = 100e6
DEFAULT_CORES = 16

#: Fraction of the node's wafer line allocated to this customer's order.
#: A single fabless customer does not command the foundry's entire node
#: capacity; at a realistic allocation the wafer throughput — not just
#: latency — shapes TTM, which is what gives Fig. 4 its upward bend for
#: large caches.
DEFAULT_CAPACITY_SHARE = 0.05


@dataclass(frozen=True)
class CachePoint:
    """One (I$, D$) configuration's metrics."""

    icache_kb: int
    dcache_kb: int
    ipc: float
    ttm_weeks: float

    @property
    def ipc_per_week(self) -> float:
        """The study's headline figure of merit."""
        return self.ipc / self.ttm_weeks


@dataclass(frozen=True)
class Fig04Result:
    """The full scatter."""

    process: str
    n_chips: float
    cores: int
    points: Tuple[CachePoint, ...]

    def point(self, icache_kb: int, dcache_kb: int) -> CachePoint:
        """Look up one configuration."""
        for candidate in self.points:
            if (candidate.icache_kb, candidate.dcache_kb) == (
                icache_kb,
                dcache_kb,
            ):
                return candidate
        raise KeyError(f"no point for ({icache_kb}, {dcache_kb}) KB")

    def table(self) -> str:
        """Corner + optimum rows (the full 121-point grid is data)."""
        best = max(self.points, key=lambda p: p.ipc_per_week)
        picks = {
            (1, 1),
            (16, 32),
            (best.icache_kb, best.dcache_kb),
            (1024, 1024),
        }
        rows = [
            [p.icache_kb, p.dcache_kb, p.ipc, p.ttm_weeks, p.ipc_per_week * 1000]
            for p in self.points
            if (p.icache_kb, p.dcache_kb) in picks
        ]
        return format_table(
            ["I$ KB", "D$ KB", "IPC", "TTM wk", "IPC/TTM (x1000)"], rows
        )


def run(
    model: Optional[TTMModel] = None,
    ipc_model: Optional[IPCModel] = None,
    process: str = DEFAULT_PROCESS,
    n_chips: float = DEFAULT_N_CHIPS,
    cores: int = DEFAULT_CORES,
    sizes_kb: Optional[Sequence[int]] = None,
    capacity_share: float = DEFAULT_CAPACITY_SHARE,
) -> Fig04Result:
    """Regenerate Fig. 4's IPC/TTM scatter."""
    ttm_model = (model or TTMModel.nominal()).at_capacity(capacity_share)
    perf = ipc_model or IPCModel()
    sweep = tuple(sizes_kb) if sizes_kb else CACHE_SWEEP_KB
    points = []
    for icache_kb in sweep:
        for dcache_kb in sweep:
            design = ariane_manycore(
                process, cores=cores, icache_kb=icache_kb, dcache_kb=dcache_kb
            )
            points.append(
                CachePoint(
                    icache_kb=icache_kb,
                    dcache_kb=dcache_kb,
                    ipc=perf.ipc(icache_kb, dcache_kb),
                    ttm_weeks=ttm_model.total_weeks(design, n_chips),
                )
            )
    return Fig04Result(
        process=process, n_chips=n_chips, cores=cores, points=tuple(points)
    )
