"""Reproductions of every table and figure in the paper's evaluation.

One module per artifact; see :mod:`repro.experiments.registry` for the
uniform entry points used by the CLI and benchmarks.
"""

from . import (  # noqa: F401  (re-exported for discoverability)
    accelerator_scaling,
    codesign_search,
    fig03_chip_ab,
    fig04_cache_scatter,
    fig05_ipc_tradeoffs,
    fig06_cache_matrix,
    fig07_a11_ttm_cost,
    fig08_a11_sensitivity,
    fig09_a11_cas,
    fig10_a11_matrix,
    fig11_queue_ttm,
    fig12_queue_cas,
    fig13_chiplets,
    fig14_multiprocess,
    interposer_study,
    mc_disruption,
    profit_study_a11,
    ramp_timing,
    robustness,
    table3_accelerators,
    table4_zen2_dies,
)

__all__ = [
    "accelerator_scaling",
    "codesign_search",
    "fig03_chip_ab",
    "fig04_cache_scatter",
    "fig05_ipc_tradeoffs",
    "fig06_cache_matrix",
    "fig07_a11_ttm_cost",
    "fig08_a11_sensitivity",
    "fig09_a11_cas",
    "fig10_a11_matrix",
    "fig11_queue_ttm",
    "fig12_queue_cas",
    "fig13_chiplets",
    "fig14_multiprocess",
    "interposer_study",
    "mc_disruption",
    "profit_study_a11",
    "ramp_timing",
    "robustness",
    "table3_accelerators",
    "table4_zen2_dies",
]
