"""Fig. 10 — A11 TTM matrix: process node x number of final chips.

For each quantity from 1 K to 100 M, TTM on every node, with the fastest
node per quantity highlighted (the paper outlines it in blue). Trends:
small runs favor legacy nodes (no tapeout burden, short latency); volume
shifts the optimum toward denser, higher-rate nodes — but 180 nm stays
ahead of 130/90 nm at every volume thanks to its wafer rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.sweep import chip_quantities
from ..analysis.tables import format_table
from ..design.library.a11 import a11
from ..engine.batch import batch_ttm
from ..engine.parallel import parallel_map
from ..ttm.model import TTMModel
from .fig07_a11_ttm_cost import DEFAULT_PROCESSES


@dataclass(frozen=True)
class Fig10Result:
    """TTM (weeks) keyed by (process, n_chips)."""

    processes: Tuple[str, ...]
    quantities: Tuple[float, ...]
    ttm: Mapping[Tuple[str, float], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ttm", dict(self.ttm))

    def fastest_for(self, n_chips: float) -> str:
        """The blue-outlined node for one quantity row."""
        return min(
            self.processes, key=lambda process: self.ttm[(process, n_chips)]
        )

    def row(self, n_chips: float) -> Tuple[float, ...]:
        """TTM across nodes for one quantity."""
        return tuple(self.ttm[(process, n_chips)] for process in self.processes)

    def table(self) -> str:
        """The matrix with quantities as rows."""
        headers = ["chips"] + list(self.processes) + ["fastest"]
        rows = []
        for quantity in self.quantities:
            rows.append(
                [f"{quantity:g}"]
                + list(self.row(quantity))
                + [self.fastest_for(quantity)]
            )
        return format_table(headers, rows)


def run(
    model: Optional[TTMModel] = None,
    processes: Sequence[str] = DEFAULT_PROCESSES,
    quantities: Optional[Sequence[float]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> Fig10Result:
    """Regenerate Fig. 10's TTM matrix.

    One batched TTM call covers a node's whole quantity row; ``executor``
    fans the per-node rows out through
    :func:`repro.engine.parallel.parallel_map`.
    """
    ttm_model = model or TTMModel.nominal()
    volume_grid = tuple(quantities) if quantities else chip_quantities()

    def node_row(process: str) -> Tuple[float, ...]:
        totals = batch_ttm(ttm_model, a11(process), volume_grid).total_weeks
        return tuple(float(weeks) for weeks in totals)

    rows = parallel_map(
        node_row, processes, executor=executor, max_workers=max_workers
    )
    ttm = {}
    for process, row in zip(processes, rows):
        for n_chips, weeks in zip(volume_grid, row):
            ttm[(process, n_chips)] = weeks
    return Fig10Result(
        processes=tuple(processes), quantities=volume_grid, ttm=ttm
    )
