"""Fig. 9 — A11 CAS vs production capacity on the advanced nodes.

CAS curves for 10 M A11 chips at 40/28/14/7/5 nm over the capacity sweep.
The paper's ordering at full capacity: 7 nm highest (high rate x high
density), 14 nm above 5 nm (5 nm's low wafer rate and density-amplified
rate sensitivity), 40/28 nm lowest among the five.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.sweep import capacity_fractions
from ..analysis.tables import format_table
from ..design.library.a11 import A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS, a11
from ..engine.batch import cas_over_capacity
from ..engine.parallel import parallel_map
from ..sensitivity.ttm_factors import cas_factor_function, ttm_factors
from ..sensitivity.uncertainty import UncertaintyResult, uncertainty_bands
from ..ttm.model import TTMModel
from .fig07_a11_ttm_cost import DEFAULT_N_CHIPS

DEFAULT_PROCESSES: Tuple[str, ...] = ("40nm", "28nm", "14nm", "7nm", "5nm")


@dataclass(frozen=True)
class Fig09Result:
    """Per-node CAS series over the capacity sweep.

    ``bands`` optionally carries the +-10% / +-25% input-variance
    confidence intervals of the full-capacity CAS per node (the shaded
    regions in the paper's figure), keyed node -> variation.
    """

    n_chips: float
    fractions: Tuple[float, ...]
    series: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)
    bands: Mapping[str, Mapping[float, UncertaintyResult]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "series", dict(self.series))
        object.__setattr__(self, "bands", dict(self.bands))

    def at_full_capacity(self) -> Mapping[str, float]:
        """{node: CAS} at the rightmost sweep point."""
        return {process: values[-1] for process, values in self.series.items()}

    def ranking_at_full_capacity(self) -> Tuple[str, ...]:
        """Nodes ordered by decreasing CAS at full capacity."""
        full = self.at_full_capacity()
        return tuple(sorted(full, key=lambda process: -full[process]))

    def table(self) -> str:
        """The curves as rows per capacity point."""
        headers = ["capacity %"] + list(self.series)
        rows = []
        for i, fraction in enumerate(self.fractions):
            rows.append(
                [round(fraction * 100)]
                + [self.series[process][i] for process in self.series]
            )
        return format_table(headers, rows)


def run(
    model: Optional[TTMModel] = None,
    processes: Sequence[str] = DEFAULT_PROCESSES,
    n_chips: float = DEFAULT_N_CHIPS,
    fractions: Optional[Sequence[float]] = None,
    with_bands: bool = False,
    band_samples: int = 128,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> Fig09Result:
    """Regenerate Fig. 9's CAS-vs-capacity curves.

    Each node's curve is one batched CAS call; ``executor`` fans the
    per-node work out through :func:`repro.engine.parallel.parallel_map`.
    ``with_bands`` additionally estimates the +-10% / +-25% input-
    variance CIs of the full-capacity CAS (the figure's shaded regions);
    it costs ``2 * band_samples`` CAS evaluations per node.
    """
    ttm_model = model or TTMModel.nominal()
    technology = ttm_model.foundry.technology
    sweep = tuple(fractions) if fractions else capacity_fractions(0.1, 1.0, 19)

    def node_curve(process: str) -> Tuple[float, ...]:
        return tuple(cas_over_capacity(ttm_model, a11(process), n_chips, sweep))

    curves = parallel_map(
        node_curve, processes, executor=executor, max_workers=max_workers
    )
    series = dict(zip(processes, curves))
    bands = {}
    for process in processes:
        if with_bands:
            function = cas_factor_function(process, n_chips, technology)
            factors = ttm_factors(
                process,
                A11_TOTAL_TRANSISTORS,
                A11_UNIQUE_TRANSISTORS,
                technology,
            )
            bands[process] = uncertainty_bands(
                function, factors, samples=band_samples
            )
    return Fig09Result(
        n_chips=n_chips, fractions=sweep, series=series, bands=bands
    )
