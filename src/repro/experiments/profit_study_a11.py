"""Extension: profit-optimal node selection for the A11 re-release.

Fig. 7 gives the A11's TTM and cost per node; Sec. 2.2 reminds us both
only matter through profit ("products must meet time-to-market
requirements to maximize revenue"). This experiment closes the loop with
the market-window revenue model: for a smartphone-class race (a ~2-year
window) and an embedded-class product (a long, modest window), which
node actually maximizes profit?

The punchline mirrors the paper's framing: in the race the profit
optimum coincides with the TTM optimum (28 nm), not the cost optimum —
time is worth more than wafers — while the long-lived product's optimum
drifts toward the cheapest node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.a11 import a11
from ..economics.market_window import MarketWindow
from ..economics.profit import ProfitStudy, profit_study
from ..ttm.model import TTMModel

DEFAULT_N_CHIPS = 10e6
DEFAULT_PROCESSES: Tuple[str, ...] = (
    "180nm",
    "130nm",
    "90nm",
    "65nm",
    "40nm",
    "28nm",
    "14nm",
    "7nm",
    "5nm",
)

#: Smartphone-class race: ~2-year window, ~$60 M peak weekly revenue.
RACE_WINDOW = MarketWindow(window_weeks=104.0, peak_weekly_revenue_usd=60e6)

#: Embedded-class product: ~15-year window, modest weekly revenue.
EMBEDDED_WINDOW = MarketWindow(
    window_weeks=780.0, peak_weekly_revenue_usd=1.5e6
)


@dataclass(frozen=True)
class ProfitExperimentResult:
    """The two profit studies side by side."""

    race: ProfitStudy
    embedded: ProfitStudy

    def table(self) -> str:
        """Optima under both market shapes."""
        rows = []
        for label, study in (("race", self.race), ("embedded", self.embedded)):
            best = study.most_profitable
            rows.append(
                [
                    label,
                    best.process,
                    study.fastest.process,
                    study.cheapest.process,
                    best.profit_usd / 1e9,
                ]
            )
        header = format_table(
            [
                "market",
                "profit-optimal",
                "TTM-optimal",
                "cost-optimal",
                "best profit $B",
            ],
            rows,
        )
        return header + "\n\nrace detail:\n" + self.race.table()


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    n_chips: float = DEFAULT_N_CHIPS,
    processes: Sequence[str] = DEFAULT_PROCESSES,
) -> ProfitExperimentResult:
    """Run both profit studies over the candidate nodes."""
    ttm_model = model or TTMModel.nominal()
    costs = cost_model or CostModel.nominal()
    return ProfitExperimentResult(
        race=profit_study(
            a11, processes, RACE_WINDOW, n_chips, ttm_model, costs
        ),
        embedded=profit_study(
            a11, processes, EMBEDDED_WINDOW, n_chips, ttm_model, costs
        ),
    )
