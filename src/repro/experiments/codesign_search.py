"""Extension: joint node/core/cache co-design under a cost cap.

The case studies sweep one axis at a time (caches in Sec. 6.1, nodes in
Sec. 6.2). Real chip planning picks a *point* in the joint space. This
experiment searches (process node) x (core count) x (L1 capacities) for
the configuration maximizing throughput per week of time-to-market —
cores x IPC / TTM — subject to a chip-creation budget, exercising the
entire model stack through one optimizer call.

Passing ``split_processes`` appends a Sec. 7 production stage: the
winning architecture is ported across those nodes and the vectorized
split engine picks the CAS-optimal two-process manufacturing plan for
it (``result.production``), answering "how should we actually build the
chip we just chose?" in one extra batched call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.search import Configuration, SearchSpace, grid_search
from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.ariane import ariane_manycore
from ..engine.portfolio import portfolio_cost, portfolio_ttm
from ..errors import InvalidParameterError
from ..multiprocess.optimizer import PairResult, run_split_study
from ..perf.ipc import IPCModel
from ..ttm.model import TTMModel

DEFAULT_N_CHIPS = 50e6
DEFAULT_BUDGET_USD = 0.38e9
DEFAULT_PROCESSES: Tuple[str, ...] = ("65nm", "40nm", "28nm", "14nm", "7nm")
DEFAULT_CORES: Tuple[int, ...] = (4, 8, 16, 32)
DEFAULT_CACHES_KB: Tuple[int, ...] = (8, 16, 32, 64, 128)

#: Customer share of each node's line (same rationale as Fig. 4).
DEFAULT_CAPACITY_SHARE = 0.05


@dataclass(frozen=True)
class CodesignPoint:
    """Full evaluation of one configuration."""

    process: str
    cores: int
    icache_kb: int
    dcache_kb: int
    ipc: float
    throughput: float
    ttm_weeks: float
    cost_usd: float

    @property
    def throughput_per_week(self) -> float:
        """The search objective: cores * IPC / TTM."""
        return self.throughput / self.ttm_weeks


@dataclass(frozen=True)
class CodesignResult:
    """Search outcome plus context."""

    n_chips: float
    budget_usd: float
    best: CodesignPoint
    evaluated: int
    feasible: int
    production: Optional[PairResult] = None

    def table(self) -> str:
        """The winning configuration as a one-row table."""
        best = self.best
        text = format_table(
            [
                "node",
                "cores",
                "I$/D$ KB",
                "IPC",
                "TTM wk",
                "cost $B",
                "thpt/wk",
            ],
            [
                [
                    best.process,
                    best.cores,
                    f"{best.icache_kb}/{best.dcache_kb}",
                    best.ipc,
                    best.ttm_weeks,
                    best.cost_usd / 1e9,
                    best.throughput_per_week,
                ]
            ],
        ) + (
            f"\n\nfeasible {self.feasible}/{self.evaluated} points under "
            f"${self.budget_usd / 1e9:.2f}B"
        )
        if self.production is not None:
            plan = self.production
            text += (
                f"\nproduction: {plan.best.split:.0%} on {plan.primary}"
                + (
                    ""
                    if plan.is_single_process
                    else f", {1.0 - plan.best.split:.0%} on {plan.secondary}"
                )
                + f" (CAS {plan.best.cas_normalized:.3f})"
            )
        return text


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    ipc_model: Optional[IPCModel] = None,
    n_chips: float = DEFAULT_N_CHIPS,
    budget_usd: float = DEFAULT_BUDGET_USD,
    processes: Sequence[str] = DEFAULT_PROCESSES,
    cores: Sequence[int] = DEFAULT_CORES,
    caches_kb: Sequence[int] = DEFAULT_CACHES_KB,
    capacity_share: float = DEFAULT_CAPACITY_SHARE,
    split_processes: Optional[Sequence[str]] = None,
    split_grid: Optional[Sequence[float]] = None,
    refine_split: bool = False,
    engine: str = "portfolio",
) -> CodesignResult:
    """Search the joint space for the best throughput-per-week design.

    ``engine="portfolio"`` (default) scores every candidate's TTM and
    cost up front in one fused (candidates x 1) portfolio pass — the
    grid search then selects over precomputed points with no scalar
    model call per configuration. ``engine="scalar"`` keeps the lazy
    per-configuration scalar evaluation as the equivalence oracle.

    ``split_processes`` (optional) adds the production stage: the
    winning architecture is re-ported across those nodes and the batched
    split engine returns the CAS-optimal manufacturing plan as
    ``result.production`` (``refine_split=True`` sharpens its split to
    ~0.1% resolution).
    """
    if engine not in ("portfolio", "scalar"):
        raise InvalidParameterError(
            f"unknown engine {engine!r}; use 'portfolio' or 'scalar'"
        )
    ttm_model = (model or TTMModel.nominal()).at_capacity(capacity_share)
    costs = cost_model or CostModel.nominal()
    perf = ipc_model or IPCModel()

    cache: Dict[Tuple[str, int, int, int], CodesignPoint] = {}

    space = SearchSpace(
        {
            "process": tuple(processes),
            "cores": tuple(cores),
            "icache_kb": tuple(caches_kb),
            "dcache_kb": tuple(caches_kb),
        }
    )

    if engine == "portfolio":
        candidate_keys = [
            (
                str(point["process"]),
                int(point["cores"]),  # type: ignore[arg-type]
                int(point["icache_kb"]),  # type: ignore[arg-type]
                int(point["dcache_kb"]),  # type: ignore[arg-type]
            )
            for point in space.points()
        ]
        unique_keys = list(dict.fromkeys(candidate_keys))
        candidates = [
            ariane_manycore(
                process, cores=n_cores, icache_kb=icache_kb, dcache_kb=dcache_kb
            )
            for process, n_cores, icache_kb, dcache_kb in unique_keys
        ]
        ttm_weeks = portfolio_ttm(
            ttm_model, candidates, n_chips
        ).total_weeks[:, 0]
        cost_usd = portfolio_cost(
            costs, candidates, n_chips, engineers=ttm_model.engineers
        ).total_usd[:, 0]
        for row, key in enumerate(unique_keys):
            process, n_cores, icache_kb, dcache_kb = key
            ipc = perf.ipc(icache_kb, dcache_kb)
            cache[key] = CodesignPoint(
                process=process,
                cores=n_cores,
                icache_kb=icache_kb,
                dcache_kb=dcache_kb,
                ipc=ipc,
                throughput=n_cores * ipc,
                ttm_weeks=float(ttm_weeks[row]),
                cost_usd=float(cost_usd[row]),
            )

    def evaluate(configuration: Configuration) -> CodesignPoint:
        key = (
            str(configuration["process"]),
            int(configuration["cores"]),  # type: ignore[arg-type]
            int(configuration["icache_kb"]),  # type: ignore[arg-type]
            int(configuration["dcache_kb"]),  # type: ignore[arg-type]
        )
        if key not in cache:
            process, n_cores, icache_kb, dcache_kb = key
            design = ariane_manycore(
                process, cores=n_cores, icache_kb=icache_kb, dcache_kb=dcache_kb
            )
            ipc = perf.ipc(icache_kb, dcache_kb)
            cache[key] = CodesignPoint(
                process=process,
                cores=n_cores,
                icache_kb=icache_kb,
                dcache_kb=dcache_kb,
                ipc=ipc,
                throughput=n_cores * ipc,
                ttm_weeks=ttm_model.total_weeks(design, n_chips),
                cost_usd=costs.total_usd(design, n_chips),
            )
        return cache[key]
    outcome = grid_search(
        space,
        objective=lambda cfg: evaluate(cfg).throughput_per_week,
        constraints=[lambda cfg: evaluate(cfg).cost_usd <= budget_usd],
    )
    best = evaluate(outcome.best)
    production: Optional[PairResult] = None
    if split_processes is not None:
        winner_cores = best.cores
        winner_icache = best.icache_kb
        winner_dcache = best.dcache_kb

        def port_winner(process: str):
            return ariane_manycore(
                process,
                cores=winner_cores,
                icache_kb=winner_icache,
                dcache_kb=winner_dcache,
            )

        study = run_split_study(
            port_winner,
            split_processes,
            ttm_model,
            costs,
            n_chips,
            **(
                {}
                if split_grid is None
                else {"split_grid": tuple(split_grid)}
            ),
            refine=refine_split,
        )
        production = study.most_agile()
    return CodesignResult(
        n_chips=n_chips,
        budget_usd=budget_usd,
        best=best,
        evaluated=outcome.evaluated,
        feasible=outcome.feasible,
        production=production,
    )
