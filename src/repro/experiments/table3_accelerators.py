"""Table 3 — accelerator speed-up, size, tapeout time and cost (Sec. 6.4).

For each SPIRAL-style accelerator (streaming/iterative sorting and DFT):
speed-up over the Ariane baseline on 2048-element blocks, transistor
count, area relative to the reference Ariane core, and the 5 nm tapeout
time and cost of adding the block to an existing chip.

The paper's tapeout weeks assume a 50-engineer block team (the Table 4
calibration fixes E_tapeout at a 100-engineer scale; Table 3's published
weeks are consistent with half that team on a single block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.tables import format_table
from ..cost.nre import ENGINEER_WEEK_COST_USD, block_tapeout_cost_usd
from ..design.library.accelerators import (
    ACCELERATOR_BLOCK_SIZE,
    ACCELERATORS,
    AcceleratorSpec,
)
from ..design.library.ariane import ariane_core_transistors
from ..perf.accel.scalar import ScalarCoreModel
from ..perf.accel.speedup import evaluate_speedup
from ..technology.database import TechnologyDatabase
from ..technology.effort import engineering_weeks_to_calendar_weeks

DEFAULT_PROCESS = "5nm"

#: Block-team size matching Table 3's published tapeout weeks.
BLOCK_TEAM_ENGINEERS = 50


@dataclass(frozen=True)
class AcceleratorRow:
    """One Table 3 row."""

    key: str
    display_name: str
    speedup: float
    transistors: float
    area_relative_to_ariane: float
    tapeout_weeks: float
    tapeout_cost_usd: float


@dataclass(frozen=True)
class Table3Result:
    """All four accelerator rows."""

    process: str
    block_size: int
    rows: Tuple[AcceleratorRow, ...]

    def row(self, key: str) -> AcceleratorRow:
        """Look up one accelerator by key."""
        for row in self.rows:
            if row.key == key:
                return row
        raise KeyError(f"no accelerator row {key!r}")

    def table(self) -> str:
        """The table as printed in the paper."""
        return format_table(
            [
                "block",
                "speed-up",
                "NTT (M)",
                "area vs Ariane",
                f"T_tapeout wk ({self.process})",
                f"C_tapeout $M ({self.process})",
            ],
            [
                [
                    row.display_name,
                    f"{row.speedup:.2f}x",
                    row.transistors / 1e6,
                    f"{row.area_relative_to_ariane:.2f}x",
                    row.tapeout_weeks,
                    row.tapeout_cost_usd / 1e6,
                ]
                for row in self.rows
            ],
        )


def run(
    technology: Optional[TechnologyDatabase] = None,
    process: str = DEFAULT_PROCESS,
    block_size: int = ACCELERATOR_BLOCK_SIZE,
    engineers: int = BLOCK_TEAM_ENGINEERS,
    core: ScalarCoreModel = ScalarCoreModel(),
    engineer_week_cost_usd: float = ENGINEER_WEEK_COST_USD,
) -> Table3Result:
    """Regenerate Table 3."""
    db = technology or TechnologyDatabase.default()
    node = db[process]
    ariane_reference = ariane_core_transistors()
    rows = []
    for spec in ACCELERATORS:
        performance = evaluate_speedup(spec, block_size=block_size, core=core)
        effort_weeks = spec.transistors * node.tapeout_effort
        rows.append(
            AcceleratorRow(
                key=spec.key,
                display_name=spec.display_name,
                speedup=performance.speedup,
                transistors=spec.transistors,
                area_relative_to_ariane=spec.transistors / ariane_reference,
                tapeout_weeks=engineering_weeks_to_calendar_weeks(
                    effort_weeks, engineers
                ),
                tapeout_cost_usd=block_tapeout_cost_usd(
                    spec.transistors, node, engineer_week_cost_usd
                ),
            )
        )
    return Table3Result(
        process=process, block_size=block_size, rows=tuple(rows)
    )


def spec_for(key: str) -> AcceleratorSpec:
    """Convenience re-export for tests and examples."""
    for spec in ACCELERATORS:
        if spec.key == key:
            return spec
    raise KeyError(key)
