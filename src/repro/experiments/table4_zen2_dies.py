"""Table 4 — Zen-2-like die data: NTT, NUT, area and tapeout time.

Transistor counts and published areas per die (compute and I/O) at the
"12 nm-class" (mapped to 14 nm) and 7 nm nodes, plus the tapeout weeks a
100-engineer team needs — the calibration anchor for E_tapeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.tables import format_table
from ..design.library.zen2 import compute_die, io_die
from ..technology.database import TechnologyDatabase
from ..ttm.model import DEFAULT_ENGINEERS
from ..ttm.tapeout import die_tapeout_calendar_weeks

DEFAULT_PROCESSES: Tuple[str, ...] = ("14nm", "7nm")


@dataclass(frozen=True)
class DieRow:
    """One (die, node) entry."""

    die: str
    process: str
    ntt: float
    nut: float
    area_mm2: float
    tapeout_weeks: float


@dataclass(frozen=True)
class Table4Result:
    """All (die, node) entries."""

    rows: Tuple[DieRow, ...]

    def row(self, die: str, process: str) -> DieRow:
        """Look up one (die, node) entry."""
        for candidate in self.rows:
            if (candidate.die, candidate.process) == (die, process):
                return candidate
        raise KeyError(f"no row for die {die!r} at {process!r}")

    def table(self) -> str:
        """The table as printed in the paper (one row per die x node)."""
        return format_table(
            ["die", "node", "NTT (B)", "NUT (M)", "area mm^2", "T_tapeout wk"],
            [
                [
                    row.die,
                    row.process,
                    row.ntt / 1e9,
                    row.nut / 1e6,
                    row.area_mm2,
                    row.tapeout_weeks,
                ]
                for row in self.rows
            ],
        )


def run(
    technology: Optional[TechnologyDatabase] = None,
    processes: Tuple[str, ...] = DEFAULT_PROCESSES,
    engineers: int = DEFAULT_ENGINEERS,
) -> Table4Result:
    """Regenerate Table 4."""
    db = technology or TechnologyDatabase.default()
    rows = []
    for process in processes:
        for factory, label in ((compute_die, "compute"), (io_die, "io")):
            die = factory(process)
            node = db[process]
            rows.append(
                DieRow(
                    die=label,
                    process=process,
                    ntt=die.ntt,
                    nut=die.nut,
                    area_mm2=die.area_on(node),
                    tapeout_weeks=die_tapeout_calendar_weeks(
                        die, node, engineers
                    ),
                )
            )
    return Table4Result(rows=tuple(rows))
