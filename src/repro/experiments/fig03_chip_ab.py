"""Fig. 3 — TTM and CAS of two synthetic chips vs production capacity.

Chip A (large die, mid node) needs many wafers per unit of production
rate: its TTM climbs steeply as capacity drops. Chip B (small advanced
die) starts with a *higher* TTM at full capacity but barely moves — the
more agile design. The figure's lesson is that agility and baseline TTM
are different axes; this experiment regenerates both curve families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.sweep import capacity_curves, capacity_fractions
from ..analysis.tables import format_table
from ..design.library.generic import demo_chip_a, demo_chip_b
from ..engine.batch import cas_over_capacity, ttm_over_capacity
from ..engine.parallel import parallel_map
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel

#: Final chips produced by both designs (identical, per the figure).
DEFAULT_N_CHIPS = 5e6


@dataclass(frozen=True)
class Fig03Result:
    """Per-chip TTM and CAS series over the capacity sweep."""

    n_chips: float
    fractions: Tuple[float, ...]
    ttm: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)
    cas: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ttm", dict(self.ttm))
        object.__setattr__(self, "cas", dict(self.cas))

    def table(self) -> str:
        """The figure's series as a printable table."""
        headers = ["capacity %"]
        for name in self.ttm:
            headers += [f"{name} TTM", f"{name} CAS"]
        rows = []
        for i, fraction in enumerate(self.fractions):
            row = [round(fraction * 100)]
            for name in self.ttm:
                row += [self.ttm[name][i], self.cas[name][i]]
            rows.append(row)
        return format_table(headers, rows)


def run(
    model: Optional[TTMModel] = None,
    n_chips: float = DEFAULT_N_CHIPS,
    fractions: Optional[Sequence[float]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    engine: str = "portfolio",
) -> Fig03Result:
    """Regenerate Fig. 3's two TTM curves and two CAS curves.

    ``engine="portfolio"`` (default) evaluates both designs' curve
    families in one fused (designs x fractions) pass;
    ``engine="loop"`` keeps the one-batched-call-per-design path as the
    equivalence oracle, fanned out through
    :func:`repro.engine.parallel.parallel_map`.
    """
    ttm_model = model or TTMModel.nominal()
    sweep = tuple(fractions) if fractions else capacity_fractions(0.2, 1.0, 17)
    designs = {"Chip A": demo_chip_a(), "Chip B": demo_chip_b()}

    if engine == "portfolio":
        ttm_matrix, cas_matrix = capacity_curves(
            ttm_model, tuple(designs.values()), n_chips, sweep
        )
        ttm_series = {
            name: tuple(ttm_matrix[i]) for i, name in enumerate(designs)
        }
        cas_series = {
            name: tuple(cas_matrix[i]) for i, name in enumerate(designs)
        }
        return Fig03Result(
            n_chips=n_chips, fractions=sweep, ttm=ttm_series, cas=cas_series
        )
    if engine != "loop":
        raise InvalidParameterError(
            f"unknown engine {engine!r}; use 'portfolio' or 'loop'"
        )

    def curves(design):
        return (
            tuple(ttm_over_capacity(ttm_model, design, n_chips, sweep)),
            tuple(cas_over_capacity(ttm_model, design, n_chips, sweep)),
        )

    results = parallel_map(
        curves, designs.values(), executor=executor, max_workers=max_workers
    )
    ttm_series = {}
    cas_series = {}
    for name, (ttm, cas) in zip(designs, results):
        ttm_series[name] = ttm
        cas_series[name] = cas
    return Fig03Result(
        n_chips=n_chips, fractions=sweep, ttm=ttm_series, cas=cas_series
    )
