"""Experiment registry: every paper table/figure by id.

Each entry maps an experiment id to a zero-argument runner returning a
result object with a ``table()`` method, so the CLI (and the benchmarks)
can enumerate the full evaluation uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..obs.trace import span
from . import (
    accelerator_scaling,
    codesign_search,
    fig03_chip_ab,
    fig04_cache_scatter,
    fig05_ipc_tradeoffs,
    fig06_cache_matrix,
    fig07_a11_ttm_cost,
    fig08_a11_sensitivity,
    fig09_a11_cas,
    fig10_a11_matrix,
    fig11_queue_ttm,
    fig12_queue_cas,
    fig13_chiplets,
    fig14_multiprocess,
    interposer_study,
    mc_disruption,
    profit_study_a11,
    ramp_timing,
    robustness,
    table3_accelerators,
    table4_zen2_dies,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    key: str
    title: str
    runner: Callable[[], object]

    def run(self) -> object:
        """Execute the runner under an ``experiment.<key>`` span.

        With no tracer installed this is exactly ``self.runner()`` plus
        one no-op context manager; with one, the experiment's engine
        spans all nest under a single root span for the artifact.
        """
        with span(f"experiment.{self.key}", title=self.title):
            return self.runner()


EXPERIMENTS: Dict[str, Experiment] = {
    exp.key: exp
    for exp in (
        Experiment(
            "fig3",
            "TTM and CAS of Chip A / Chip B vs production capacity",
            fig03_chip_ab.run,
        ),
        Experiment(
            "fig4",
            "IPC vs TTM over the (I$, D$) design space",
            fig04_cache_scatter.run,
        ),
        Experiment(
            "fig5",
            "Normalized IPC/TTM vs IPC/cost optima",
            fig05_ipc_tradeoffs.run,
        ),
        Experiment(
            "fig6",
            "IPC/TTM-optimal cache configurations per node and volume",
            fig06_cache_matrix.run,
        ),
        Experiment(
            "fig7",
            "A11 TTM phases and cost per node (10M chips)",
            fig07_a11_ttm_cost.run,
        ),
        Experiment(
            "fig8",
            "A11 TTM Sobol total-effect sensitivity per node",
            fig08_a11_sensitivity.run,
        ),
        Experiment(
            "fig9",
            "A11 CAS vs capacity on advanced nodes",
            fig09_a11_cas.run,
        ),
        Experiment(
            "fig10",
            "A11 TTM matrix: node x number of final chips",
            fig10_a11_matrix.run,
        ),
        Experiment(
            "fig11",
            "A11 @7nm TTM vs capacity under 0-4 week queues",
            fig11_queue_ttm.run,
        ),
        Experiment(
            "fig12",
            "A11 @7nm CAS vs capacity under 0-4 week queues",
            fig12_queue_cas.run,
        ),
        Experiment(
            "table3",
            "Accelerator speed-up, size, tapeout time/cost @5nm",
            table3_accelerators.run,
        ),
        Experiment(
            "table4",
            "Zen-2 die NTT/NUT/area/tapeout @14nm and 7nm",
            table4_zen2_dies.run,
        ),
        Experiment(
            "fig13",
            "Chiplet & mixed-process TTM/cost/CAS comparison",
            fig13_chiplets.run,
        ),
        Experiment(
            "fig14",
            "Two-process manufacturing matrices and headline gains",
            fig14_multiprocess.run,
        ),
        Experiment(
            "interposer",
            "[extension] Interposer node exploration (Sec. 6.5 what-if)",
            interposer_study.run,
        ),
        Experiment(
            "profit",
            "[extension] Profit-optimal node under market windows",
            profit_study_a11.run,
        ),
        Experiment(
            "ramp",
            "[extension] Order timing on a ramping node (yield learning)",
            ramp_timing.run,
        ),
        Experiment(
            "codesign",
            "[extension] Joint node/core/cache search under a cost cap",
            codesign_search.run,
        ),
        Experiment(
            "accel-scaling",
            "[extension] Accelerator speed-up vs block size",
            accelerator_scaling.run,
        ),
        Experiment(
            "robustness",
            "[extension] Headline-finding survival under calibration noise",
            robustness.run,
        ),
        Experiment(
            "mc-disruption",
            "[extension] Monte Carlo disruption robustness: A11 vs Zen-2",
            mc_disruption.run,
        ),
    )
}


def experiment_keys() -> Tuple[str, ...]:
    """All experiment ids in registry order."""
    return tuple(EXPERIMENTS)


def get(key: str) -> Experiment:
    """Look up one experiment by id."""
    try:
        return EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {key!r} (known: {known})") from None
