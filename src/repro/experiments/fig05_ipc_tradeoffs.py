"""Fig. 5 — normalized IPC/TTM vs IPC/cost over the cache design space.

The paper's point: the two figures of merit peak at *different*
configurations (IPC/TTM at a smaller, balanced pair; IPC/cost at a
larger data cache), and optimizing for IPC/TTM costs little IPC/cost
while the reverse sacrifices substantial IPC/TTM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.sweep import normalized
from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.ariane import CACHE_SWEEP_KB, ariane_manycore
from ..perf.ipc import IPCModel
from ..ttm.model import TTMModel
from .fig04_cache_scatter import (
    DEFAULT_CAPACITY_SHARE,
    DEFAULT_CORES,
    DEFAULT_N_CHIPS,
    DEFAULT_PROCESS,
)


@dataclass(frozen=True)
class TradeoffPoint:
    """One configuration with both normalized figures of merit."""

    icache_kb: int
    dcache_kb: int
    ipc: float
    ttm_weeks: float
    cost_usd: float
    ipc_per_ttm_norm: float
    ipc_per_cost_norm: float


@dataclass(frozen=True)
class Fig05Result:
    """The scatter plus the two optima the paper's arrows mark."""

    process: str
    n_chips: float
    points: Tuple[TradeoffPoint, ...]

    @property
    def best_ipc_per_ttm(self) -> TradeoffPoint:
        """The purple-arrow configuration."""
        return max(self.points, key=lambda p: p.ipc_per_ttm_norm)

    @property
    def best_ipc_per_cost(self) -> TradeoffPoint:
        """The red-arrow configuration."""
        return max(self.points, key=lambda p: p.ipc_per_cost_norm)

    def cross_penalties(self) -> Tuple[float, float]:
        """(IPC/cost loss at the TTM optimum, IPC/TTM loss at the cost
        optimum) — the paper reports 4% and 18%."""
        ttm_opt = self.best_ipc_per_ttm
        cost_opt = self.best_ipc_per_cost
        return (
            1.0 - ttm_opt.ipc_per_cost_norm,
            1.0 - cost_opt.ipc_per_ttm_norm,
        )

    def table(self) -> str:
        """Summary of both optima."""
        rows = []
        for label, p in (
            ("max IPC/TTM", self.best_ipc_per_ttm),
            ("max IPC/cost", self.best_ipc_per_cost),
        ):
            rows.append(
                [
                    label,
                    p.icache_kb,
                    p.dcache_kb,
                    p.ipc,
                    p.ttm_weeks,
                    p.cost_usd / 1e9,
                    p.ipc_per_ttm_norm,
                    p.ipc_per_cost_norm,
                ]
            )
        return format_table(
            [
                "optimum",
                "I$ KB",
                "D$ KB",
                "IPC",
                "TTM wk",
                "cost $B",
                "IPC/TTM (norm)",
                "IPC/cost (norm)",
            ],
            rows,
        )


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    ipc_model: Optional[IPCModel] = None,
    process: str = DEFAULT_PROCESS,
    n_chips: float = DEFAULT_N_CHIPS,
    cores: int = DEFAULT_CORES,
    sizes_kb: Optional[Sequence[int]] = None,
    capacity_share: float = DEFAULT_CAPACITY_SHARE,
) -> Fig05Result:
    """Regenerate Fig. 5's normalized trade-off scatter.

    The cost model sees the *nominal* technology (costs are market-
    independent); only the TTM side feels the capacity allocation.
    """
    ttm_model = (model or TTMModel.nominal()).at_capacity(capacity_share)
    costs = cost_model or CostModel.nominal()
    perf = ipc_model or IPCModel()
    sweep = tuple(sizes_kb) if sizes_kb else CACHE_SWEEP_KB
    raw = []
    for icache_kb in sweep:
        for dcache_kb in sweep:
            design = ariane_manycore(
                process, cores=cores, icache_kb=icache_kb, dcache_kb=dcache_kb
            )
            ipc = perf.ipc(icache_kb, dcache_kb)
            ttm = ttm_model.total_weeks(design, n_chips)
            cost = costs.total_usd(design, n_chips)
            raw.append((icache_kb, dcache_kb, ipc, ttm, cost))
    per_ttm = normalized([ipc / ttm for _, _, ipc, ttm, _ in raw])
    per_cost = normalized([ipc / cost for _, _, ipc, _, cost in raw])
    points = tuple(
        TradeoffPoint(
            icache_kb=i,
            dcache_kb=d,
            ipc=ipc,
            ttm_weeks=ttm,
            cost_usd=cost,
            ipc_per_ttm_norm=per_ttm[index],
            ipc_per_cost_norm=per_cost[index],
        )
        for index, (i, d, ipc, ttm, cost) in enumerate(raw)
    )
    return Fig05Result(process=process, n_chips=n_chips, points=points)
