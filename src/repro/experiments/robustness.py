"""Extension: how robust are the headline findings to calibration error?

Sec. 5 concedes that absolute parameter values cannot be validated and
asks readers to trust *relative* results. This experiment stress-tests
that trust: it resamples the calibrated per-node parameters (density,
tapeout/testing efforts, wafer rates, defect densities) with independent
multiplicative noise and checks, per sample, whether the paper's
qualitative findings still hold:

* the A11's fastest re-release node stays in the mature-node pocket
  (40/28/14 nm) rather than drifting to the extremes;
* 180 nm keeps beating 130/90 nm at 10 M chips (the wafer-rate story);
* the mixed-process Zen 2 stays faster than the all-7 nm chiplet;
* the A11 stays more agile at 7 nm than at 5 nm.

The result is the fraction of perturbed worlds in which each finding
survives — the quantitative version of "the shape holds".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..agility.cas import chip_agility_score
from ..analysis.tables import format_table
from ..design.library.a11 import a11
from ..design.library.zen2 import zen2
from ..errors import InvalidParameterError
from ..market.foundry import Foundry
from ..technology.database import TechnologyDatabase
from ..ttm.model import TTMModel

DEFAULT_SAMPLES = 48
DEFAULT_NOISE = 0.20
DEFAULT_SEED = 20230617
DEFAULT_N_CHIPS = 10e6

#: Per-node fields perturbed in every sample.
PERTURBED_FIELDS: Tuple[str, ...] = (
    "density_mtr_per_mm2",
    "defect_density_per_cm2",
    "wafer_rate_kwpm",
    "fab_latency_weeks",
    "tapeout_effort",
    "testing_effort",
)

#: The "mature-node pocket" the A11 optimum should stay inside.
MATURE_POCKET: Tuple[str, ...] = ("65nm", "40nm", "28nm", "14nm")

_A11_NODES = (
    "250nm", "180nm", "130nm", "90nm", "65nm",
    "40nm", "28nm", "14nm", "7nm", "5nm",
)


@dataclass(frozen=True)
class RobustnessResult:
    """Survival fraction per finding, over the perturbed samples."""

    samples: int
    noise: float
    survival: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "survival", dict(self.survival))

    @property
    def weakest_finding(self) -> str:
        """The finding most sensitive to calibration error."""
        return min(self.survival.items(), key=lambda item: item[1])[0]

    def table(self) -> str:
        """Survival fractions as rows."""
        rows = [
            [finding, f"{fraction:.0%}"]
            for finding, fraction in self.survival.items()
        ]
        return format_table(
            ["finding", f"survives +-{self.noise:.0%} noise"], rows
        )


def _perturbed_database(
    base: TechnologyDatabase, rng: np.random.Generator, noise: float
) -> TechnologyDatabase:
    overrides: Dict[str, Dict[str, float]] = {}
    for node in base.nodes:
        fields: Dict[str, float] = {}
        for name in PERTURBED_FIELDS:
            factor = 1.0 + rng.uniform(-noise, noise)
            fields[name] = getattr(node, name) * factor
        overrides[node.name] = fields
    return base.override(overrides)


def run(
    model: Optional[TTMModel] = None,
    samples: int = DEFAULT_SAMPLES,
    noise: float = DEFAULT_NOISE,
    seed: int = DEFAULT_SEED,
    n_chips: float = DEFAULT_N_CHIPS,
) -> RobustnessResult:
    """Resample the calibration and measure finding survival."""
    if samples < 1:
        raise InvalidParameterError(f"samples must be >= 1, got {samples}")
    if not 0.0 < noise < 1.0:
        raise InvalidParameterError(f"noise must be in (0, 1), got {noise}")
    base = (model or TTMModel.nominal()).foundry.technology
    rng = np.random.default_rng(seed)
    hits = {
        "A11 optimum stays in the mature pocket": 0,
        "180nm beats 130nm and 90nm": 0,
        "mixed Zen 2 beats all-7nm chiplet": 0,
        "A11 more agile at 7nm than 5nm": 0,
    }
    for _ in range(samples):
        technology = _perturbed_database(base, rng, noise)
        sampled_model = TTMModel(foundry=Foundry.nominal(technology))
        ttm = {
            process: sampled_model.total_weeks(a11(process), n_chips)
            for process in _A11_NODES
        }
        fastest = min(ttm, key=ttm.get)  # type: ignore[arg-type]
        if fastest in MATURE_POCKET:
            hits["A11 optimum stays in the mature pocket"] += 1
        if ttm["180nm"] < ttm["130nm"] and ttm["180nm"] < ttm["90nm"]:
            hits["180nm beats 130nm and 90nm"] += 1
        mixed = sampled_model.total_weeks(zen2(), 25e6)
        single = sampled_model.total_weeks(zen2("7nm", "7nm"), 25e6)
        if mixed < single:
            hits["mixed Zen 2 beats all-7nm chiplet"] += 1
        cas_7 = chip_agility_score(sampled_model, a11("7nm"), n_chips).cas
        cas_5 = chip_agility_score(sampled_model, a11("5nm"), n_chips).cas
        if cas_7 > cas_5:
            hits["A11 more agile at 7nm than 5nm"] += 1
    return RobustnessResult(
        samples=samples,
        noise=noise,
        survival={
            finding: count / samples for finding, count in hits.items()
        },
    )
