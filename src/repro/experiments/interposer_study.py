"""Extension: which node should the interposer be fabricated on?

Sec. 6.5 closes with a what-if: "Fabricating the interposer at the
higher-wafer-production-rate 40 nm process decreases time-to-market for
100 million final chips from 51 weeks to 45 weeks and increases max CAS
by 126% with only a $77 M increase in chip creation costs." This
experiment sweeps the interposer's node for the Zen-2-with-interposer
design and reports TTM (nominal and under a capacity crunch, where the
interposer line binds), chip-creation cost, and CAS under the crunch.

Under our calibration the interposer line only becomes the bottleneck
below ~42% of max capacity (the paper's parameters bind earlier), so the
TTM/CAS gains surface in the crunch column — same mechanism, shifted
operating point. See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..agility.cas import chip_agility_score
from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.zen2 import zen2
from ..ttm.model import TTMModel

DEFAULT_N_CHIPS = 100e6
DEFAULT_CRUNCH_CAPACITY = 0.3
DEFAULT_INTERPOSER_NODES: Tuple[str, ...] = (
    "250nm",
    "180nm",
    "130nm",
    "90nm",
    "65nm",
    "40nm",
)


@dataclass(frozen=True)
class InterposerOption:
    """Metrics for one candidate interposer node."""

    process: str
    ttm_weeks: float
    crunch_ttm_weeks: float
    cost_usd: float
    crunch_cas: float


@dataclass(frozen=True)
class InterposerStudyResult:
    """The sweep over interposer nodes."""

    n_chips: float
    crunch_capacity: float
    options: Tuple[InterposerOption, ...]

    def option(self, process: str) -> InterposerOption:
        """Look up one candidate node."""
        for candidate in self.options:
            if candidate.process == process:
                return candidate
        raise KeyError(f"no interposer option for {process!r}")

    def best_under_crunch(self) -> InterposerOption:
        """The node minimizing TTM when capacity is scarce."""
        return min(self.options, key=lambda option: option.crunch_ttm_weeks)

    def table(self) -> str:
        """The sweep as rows."""
        rows = [
            [
                option.process,
                option.ttm_weeks,
                option.crunch_ttm_weeks,
                option.cost_usd / 1e9,
                option.crunch_cas,
            ]
            for option in self.options
        ]
        return format_table(
            [
                "interposer node",
                "TTM wk (100%)",
                f"TTM wk ({self.crunch_capacity:.0%})",
                "cost $B",
                f"CAS ({self.crunch_capacity:.0%})",
            ],
            rows,
        )


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    n_chips: float = DEFAULT_N_CHIPS,
    crunch_capacity: float = DEFAULT_CRUNCH_CAPACITY,
    interposer_nodes: Sequence[str] = DEFAULT_INTERPOSER_NODES,
) -> InterposerStudyResult:
    """Sweep the interposer node for the Zen-2-with-interposer design."""
    base = model or TTMModel.nominal()
    costs = cost_model or CostModel.nominal()
    crunch = base.at_capacity(crunch_capacity)
    options = []
    for process in interposer_nodes:
        design = zen2(
            interposer=True,
            interposer_process=process,
            name=f"Zen 2 w/ {process} interposer",
        )
        options.append(
            InterposerOption(
                process=process,
                ttm_weeks=base.total_weeks(design, n_chips),
                crunch_ttm_weeks=crunch.total_weeks(design, n_chips),
                cost_usd=costs.total_usd(design, n_chips),
                crunch_cas=chip_agility_score(
                    crunch, design, n_chips
                ).normalized,
            )
        )
    return InterposerStudyResult(
        n_chips=n_chips,
        crunch_capacity=crunch_capacity,
        options=tuple(options),
    )
