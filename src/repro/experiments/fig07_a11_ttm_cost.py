"""Fig. 7 — A11 re-release: TTM phases and cost per node (Sec. 6.2).

For 10 M final chips, each node gets a stacked TTM breakdown (tapeout /
fabrication / packaging) and a chip-creation cost, plus the +-10% / +-25%
input-variance confidence intervals drawn as error bars in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.a11 import A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS, a11
from ..sensitivity.ttm_factors import ttm_factor_function, ttm_factors
from ..sensitivity.uncertainty import UncertaintyResult, uncertainty_bands
from ..ttm.model import TTMModel

DEFAULT_PROCESSES: Tuple[str, ...] = (
    "250nm",
    "180nm",
    "130nm",
    "90nm",
    "65nm",
    "40nm",
    "28nm",
    "14nm",
    "7nm",
    "5nm",
)
DEFAULT_N_CHIPS = 10e6


@dataclass(frozen=True)
class NodeReport:
    """One bar of the figure."""

    process: str
    tapeout_weeks: float
    fabrication_weeks: float
    packaging_weeks: float
    total_weeks: float
    cost_usd: float
    bands: Mapping[float, UncertaintyResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "bands", dict(self.bands))


@dataclass(frozen=True)
class Fig07Result:
    """All node bars, in roadmap order."""

    n_chips: float
    nodes: Tuple[NodeReport, ...]

    @property
    def fastest(self) -> NodeReport:
        """The minimum-TTM node (28 nm in the paper)."""
        return min(self.nodes, key=lambda node: node.total_weeks)

    def node(self, process: str) -> NodeReport:
        """Look up one node's bar."""
        for report in self.nodes:
            if report.process == process:
                return report
        raise KeyError(f"no report for node {process!r}")

    def table(self) -> str:
        """The figure as rows."""
        rows = []
        for report in self.nodes:
            ci10 = report.bands.get(0.10)
            rows.append(
                [
                    report.process,
                    report.tapeout_weeks,
                    report.fabrication_weeks,
                    report.packaging_weeks,
                    report.total_weeks,
                    report.cost_usd / 1e9,
                    f"[{ci10.lower:.1f}, {ci10.upper:.1f}]" if ci10 else "-",
                ]
            )
        return format_table(
            [
                "node",
                "tapeout wk",
                "fab wk",
                "package wk",
                "TOTAL wk",
                "cost $B",
                "95% CI (+-10%)",
            ],
            rows,
        )


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    processes: Sequence[str] = DEFAULT_PROCESSES,
    n_chips: float = DEFAULT_N_CHIPS,
    with_bands: bool = True,
    band_samples: int = 256,
) -> Fig07Result:
    """Regenerate Fig. 7's per-node TTM breakdowns and costs.

    ``band_samples`` trades CI fidelity for runtime (the paper uses 1024;
    256 keeps the full figure under a second while CIs stay within a few
    percent).
    """
    ttm_model = model or TTMModel.nominal()
    costs = cost_model or CostModel.nominal()
    reports = []
    for process in processes:
        design = a11(process)
        result = ttm_model.time_to_market(design, n_chips)
        bands: Mapping[float, UncertaintyResult] = {}
        if with_bands:
            function = ttm_factor_function(
                process, n_chips, ttm_model.foundry.technology
            )
            factors = ttm_factors(
                process,
                A11_TOTAL_TRANSISTORS,
                A11_UNIQUE_TRANSISTORS,
                ttm_model.foundry.technology,
            )
            bands = uncertainty_bands(
                function, factors, samples=band_samples
            )
        reports.append(
            NodeReport(
                process=process,
                tapeout_weeks=result.tapeout_weeks,
                fabrication_weeks=result.fabrication_weeks,
                packaging_weeks=result.packaging_weeks,
                total_weeks=result.total_weeks,
                cost_usd=costs.total_usd(design, n_chips),
                bands=bands,
            )
        )
    return Fig07Result(n_chips=n_chips, nodes=tuple(reports))


def headline_band(result: Fig07Result) -> Tuple[float, float]:
    """(7 nm, 5 nm) TTM increase over the fastest node, as fractions.

    The paper's abstract quotes 73%-116% for re-releasing on an advanced
    node instead of the best legacy node.
    """
    best = result.fastest.total_weeks
    return (
        result.node("7nm").total_weeks / best - 1.0,
        result.node("5nm").total_weeks / best - 1.0,
    )
