"""[extension] Monte Carlo disruption robustness: A11 vs Zen-2 chiplets.

The paper's chiplet study (Fig. 13) and agility argument (Sec. 6) are
evaluated at point market conditions. This experiment re-asks the
question under *uncertain* conditions: starting from the 2021-shortage
scenario, random advanced-node capacity shocks (drought/EUV style), a
rarer single-fab shutdown at 7 nm, and demand spikes are layered on, and
joint +-10% supply uncertainty (demand, queues, D0, wafer rates) is
sampled on top. Each design's TTM/CAS/cost distributions — evaluated
entirely through the batch kernels with common random numbers across
designs — show whether the chiplet decomposition's agility advantage
survives tail events, not just nominal conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library import COMPUTE_PROCESS, a11, zen2, zen2_monolithic
from ..market import scenarios
from ..montecarlo.disruption import DisruptionModel, EventEnsemble
from ..montecarlo.results import StudyResult
from ..montecarlo.spec import SampledParameter, SamplingSpec
from ..montecarlo.study import compare_designs
from ..sensitivity.distributions import DEFAULT_VARIATION, Factor
from ..ttm.model import TTMModel

#: Final chips ordered per design (Fig. 13's volume scale).
DEFAULT_N_CHIPS = 1e7

#: Samples drawn per design.
DEFAULT_N_SAMPLES = 4000

#: Study seed (fixed so the experiment is a reproducible artifact).
DEFAULT_SEED = 2023

#: A11 process node compared against the Zen-2 designs.
A11_PROCESS = "7nm"

#: Weeks after the scenario start when the orders are placed.
ORDER_WEEK = 8.0


def supply_spec(
    n_chips: float = DEFAULT_N_CHIPS, variation: float = DEFAULT_VARIATION
) -> SamplingSpec:
    """Joint demand/queue/D0/wafer-rate uncertainty (no capacity column).

    Capacity is *not* sampled here — the disruption ensembles own it.
    """
    return SamplingSpec(
        parameters=(
            SampledParameter("n_chips", Factor("n_chips", n_chips, variation)),
            SampledParameter(
                "queue_weeks", Factor("queue_weeks", 2.0, variation)
            ),
            SampledParameter("d0_scale", Factor("D0_scale", 1.0, variation)),
            SampledParameter(
                "wafer_rate_scale",
                Factor("wafer_rate_scale", 1.0, variation),
            ),
        ),
        n_chips=n_chips,
    )


def disruption_model(order_week: float = ORDER_WEEK) -> DisruptionModel:
    """Shortage base + advanced-node shocks, a 7 nm shutdown, demand spikes."""
    return DisruptionModel(
        base=scenarios.shortage_2021(),
        ensembles=(
            EventEnsemble(
                "capacity_shock",
                probability=0.35,
                start_week=Factor("start", 6.0, 0.8),
                duration_weeks=Factor("duration", 16.0, 0.5),
                severity=Factor("severity", 0.45, 0.5),
                nodes=scenarios.ADVANCED_NODES,
            ),
            EventEnsemble(
                "fab_shutdown",
                probability=0.08,
                start_week=Factor("start", 7.0, 0.6),
                duration_weeks=Factor("duration", 6.0, 0.5),
                severity=Factor("severity", 1.0, 0.0),
                nodes=("7nm",),
            ),
            EventEnsemble(
                "demand_spike",
                probability=0.25,
                start_week=Factor("start", 4.0, 0.9),
                duration_weeks=Factor("duration", 26.0, 0.5),
                severity=Factor("severity", 0.35, 0.5),
            ),
        ),
        order_week=order_week,
    )


@dataclass(frozen=True)
class MCDisruptionResult:
    """Per-design Monte Carlo summaries under the disruption ensemble."""

    n_samples: int
    seed: int
    order_week: float
    studies: Mapping[str, StudyResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "studies", dict(self.studies))

    def table(self) -> str:
        """One row per (design, metric): band + tail risk."""
        headers = [
            "design", "metric", "p5", "p50", "p95", "CVaR", "tail",
        ]
        rows = []
        for name, study in self.studies.items():
            for metric, summary in study.summaries.items():
                rows.append(
                    [
                        name,
                        metric,
                        summary.percentiles[5.0],
                        summary.percentiles[50.0],
                        summary.percentiles[95.0],
                        summary.cvar,
                        summary.tail,
                    ]
                )
        return format_table(headers, rows)


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    n_chips: float = DEFAULT_N_CHIPS,
    n_samples: int = DEFAULT_N_SAMPLES,
    seed: int = DEFAULT_SEED,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> MCDisruptionResult:
    """Compare A11@7nm, Zen-2 chiplet, and Zen-2 monolithic robustness.

    All designs see identical supply-chain draws (common random
    numbers), so distribution differences are attributable to the
    designs themselves.
    """
    disruptions = disruption_model()
    if model is None:
        nominal = TTMModel.nominal()
        model = nominal.with_foundry(
            nominal.foundry.with_conditions(disruptions.base)
        )
    designs: Tuple = (
        a11(A11_PROCESS),
        zen2(),
        zen2_monolithic(COMPUTE_PROCESS),
    )
    studies = compare_designs(
        model,
        designs,
        supply_spec(n_chips),
        n_samples,
        seed,
        cost_model=cost_model or CostModel.nominal(),
        disruptions=disruptions,
        executor=executor,
        max_workers=max_workers,
    )
    return MCDisruptionResult(
        n_samples=n_samples,
        seed=seed,
        order_week=disruptions.order_week,
        studies=studies,
    )
