"""Extension: accelerator speed-up vs problem size.

Table 3 fixes the block size at 2048 elements. The cycle models make
sharper statements as the block size sweeps:

* the *streaming* architectures saturate toward their asymptotic
  advantage (the pipeline-fill overhead amortizes away);
* the *iterative sorter* degrades with block size — its pass count grows
  as log^2(n) against the core's n*log(n) software sort, so its edge is
  ~32/(log2(n)+1) and keeps shrinking;
* the *iterative DFT* is size-independent: both it and the software FFT
  do Theta(n log n) butterfly work, so the ratio pins at
  (cycles/op) / (II/2).

For routines run on ever-larger blocks, that asymmetry is exactly the
paper's Sec. 6.4 caution about which specialization is worth its tapeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..design.library.accelerators import ACCELERATORS
from ..errors import InvalidParameterError
from ..perf.accel.scalar import ScalarCoreModel
from ..perf.accel.speedup import evaluate_speedup

DEFAULT_BLOCK_SIZES: Tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class ScalingResult:
    """Speed-up series per accelerator over the block-size sweep."""

    block_sizes: Tuple[int, ...]
    series: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "series", dict(self.series))

    def speedup(self, key: str, block_size: int) -> float:
        """One (accelerator, size) cell."""
        index = self.block_sizes.index(block_size)
        return self.series[key][index]

    def trend(self, key: str) -> str:
        """"growing", "shrinking" or "flat" across the sweep."""
        values = self.series[key]
        first, last = values[0], values[-1]
        if last > first * 1.02:
            return "growing"
        if last < first * 0.98:
            return "shrinking"
        return "flat"

    def table(self) -> str:
        """Speed-ups per block size, one accelerator per column."""
        headers = ["block size"] + list(self.series) + [""]
        rows = []
        for i, size in enumerate(self.block_sizes):
            rows.append(
                [size]
                + [f"{self.series[key][i]:.2f}x" for key in self.series]
                + [""]
            )
        trend_row = ["trend"] + [self.trend(key) for key in self.series] + [""]
        return format_table(headers, rows + [trend_row])


def run(
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    core: Optional[ScalarCoreModel] = None,
) -> ScalingResult:
    """Sweep the block size for all four Table 3 accelerators."""
    if not block_sizes:
        raise InvalidParameterError("need at least one block size")
    baseline = core or ScalarCoreModel()
    series = {}
    for spec in ACCELERATORS:
        series[spec.key] = tuple(
            evaluate_speedup(spec, block_size=size, core=baseline).speedup
            for size in block_sizes
        )
    return ScalingResult(block_sizes=tuple(block_sizes), series=series)
