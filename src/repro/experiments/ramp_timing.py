"""Extension: when should you order on a freshly ramped node?

The paper freezes defect density at a snapshot; its background (Sec. 2.2)
notes yields improve with a node's time in production. This experiment
adds the time axis: a GPU-class 600 mm^2 design wants the new 5 nm node,
whose D0 starts high and learns downward. Ordering at month t pays
``t`` months of waiting plus TTM evaluated at D0(t); the delivery-optimal
entry is an interior point — day-one orders buy wafers at the worst
yield of the node's life, while waiting too long just burns calendar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.generic import monolithic_design
from ..errors import InvalidParameterError
from ..market.foundry import Foundry
from ..technology.learning import (
    YieldLearningCurve,
    delivery_week,
    technology_at_maturity,
)
from ..ttm.model import TTMModel

DEFAULT_PROCESS = "5nm"
DEFAULT_N_CHIPS = 10e6

#: Leading-edge ramp: risk-production D0 ~0.4/cm^2 maturing toward ~0.07
#: with a ~6-month learning constant (the N7/N5 trajectories reported by
#: AnandTech [27] close most of their gap within the first year).
DEFAULT_CURVE = YieldLearningCurve(
    initial_d0=0.4, mature_d0=0.07, time_constant_months=6.0
)

#: GPU-class reticle-buster: ~600 mm^2 at 5 nm density. Most of the die
#: is replicated shader arrays and reused IP, so the unique fraction is
#: small — the study's timing tension lives in fabrication and testing.
GPU_CLASS_TRANSISTORS = 100e9
GPU_CLASS_NUT = 5.0e8

DEFAULT_MONTHS: Tuple[float, ...] = (0, 1, 2, 3, 4, 6, 9, 12, 18, 24, 36)


@dataclass(frozen=True)
class RampPoint:
    """Metrics for one candidate entry month."""

    entry_month: float
    d0: float
    die_yield: float
    ttm_weeks: float
    delivery_week: float
    cost_usd: float


@dataclass(frozen=True)
class RampTimingResult:
    """The wait-vs-yield trade-off curve."""

    process: str
    n_chips: float
    points: Tuple[RampPoint, ...]

    @property
    def best(self) -> RampPoint:
        """The delivery-optimal entry month."""
        return min(self.points, key=lambda point: point.delivery_week)

    def point(self, entry_month: float) -> RampPoint:
        """Look up one candidate month."""
        for candidate in self.points:
            if candidate.entry_month == entry_month:
                return candidate
        raise KeyError(f"no ramp point for month {entry_month!r}")

    def table(self) -> str:
        """The trade-off as rows."""
        rows = [
            [
                point.entry_month,
                point.d0,
                point.die_yield,
                point.ttm_weeks,
                point.delivery_week,
                point.cost_usd / 1e9,
            ]
            for point in self.points
        ]
        return format_table(
            [
                "entry month",
                "D0 /cm^2",
                "die yield",
                "TTM wk",
                "delivery wk",
                "cost $B",
            ],
            rows,
        )


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    process: str = DEFAULT_PROCESS,
    n_chips: float = DEFAULT_N_CHIPS,
    curve: YieldLearningCurve = DEFAULT_CURVE,
    months: Sequence[float] = DEFAULT_MONTHS,
) -> RampTimingResult:
    """Sweep candidate entry months on a ramping node."""
    if not months:
        raise InvalidParameterError("need at least one candidate month")
    base = model or TTMModel.nominal()
    base_costs = cost_model or CostModel.nominal()
    design = monolithic_design(
        "gpu-class", process, ntt=GPU_CLASS_TRANSISTORS, nut=GPU_CLASS_NUT
    )
    points = []
    for month in months:
        technology = technology_at_maturity(
            base.foundry.technology, process, curve, month
        )
        model_t = base.with_foundry(
            Foundry(technology=technology, conditions=base.foundry.conditions)
        )
        costs_t = CostModel(
            technology=technology,
            engineer_week_cost_usd=base_costs.engineer_week_cost_usd,
            package_base_usd=base_costs.package_base_usd,
            die_handling_usd=base_costs.die_handling_usd,
            package_area_usd_per_mm2=base_costs.package_area_usd_per_mm2,
            test_usd_per_transistor=base_costs.test_usd_per_transistor,
        )
        ttm = model_t.total_weeks(design, n_chips)
        node = technology[process]
        points.append(
            RampPoint(
                entry_month=float(month),
                d0=node.defect_density_per_cm2,
                die_yield=design.dies[0].yield_on(node),
                ttm_weeks=ttm,
                delivery_week=delivery_week(float(month), lambda _m: ttm),
                cost_usd=costs_t.total_usd(design, n_chips),
            )
        )
    return RampTimingResult(
        process=process, n_chips=n_chips, points=tuple(points)
    )
