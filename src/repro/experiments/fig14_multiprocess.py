"""Fig. 14 — two-process manufacturing matrices (Sec. 7).

For a Raven-inspired multicore at one billion final chips, sweep every
(primary, secondary) node pair and, per pair, the production split that
maximizes CAS. Report TTM (panel a), chip creation cost (panel b) and the
CAS-optimal split (panel c), plus the Sec. 7 headline comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.library.raven import raven_multicore
from ..multiprocess.optimizer import (
    PairResult,
    SplitStudy,
    headline_comparison,
    run_split_study,
)
from ..ttm.model import TTMModel

DEFAULT_N_CHIPS = 1e9

#: Split granularity: every 2% (the paper's Fig. 14c values are even).
DEFAULT_SPLIT_GRID: Tuple[float, ...] = tuple(
    s / 100.0 for s in range(2, 101, 2)
)


@dataclass(frozen=True)
class Fig14Result:
    """The three matrices plus headline numbers."""

    n_chips: float
    processes: Tuple[str, ...]
    study: SplitStudy
    headline: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "headline", dict(self.headline))

    def pair(self, primary: str, secondary: str) -> PairResult:
        """One matrix cell (primary must be the later-roadmap node)."""
        return self.study.pairs[(primary, secondary)]

    def matrix(self, metric: str) -> Dict[Tuple[str, str], float]:
        """One panel: metric in {"ttm", "cost", "split"}."""
        extract = {
            "ttm": lambda result: result.best.ttm_weeks,
            "cost": lambda result: result.best.cost_usd,
            "split": lambda result: result.best.split,
        }[metric]
        return {key: extract(result) for key, result in self.study.pairs.items()}

    def table(self) -> str:
        """Fastest / cheapest / most agile combinations + headlines."""
        rows = []
        for label, result in (
            ("fastest", self.study.fastest()),
            ("cheapest", self.study.cheapest()),
            ("most agile", self.study.most_agile()),
        ):
            rows.append(
                [
                    label,
                    result.primary,
                    result.secondary,
                    result.best.split,
                    result.best.ttm_weeks,
                    result.best.cost_usd / 1e9,
                    result.best.cas_normalized,
                ]
            )
        table = format_table(
            [
                "pick",
                "primary",
                "secondary",
                "split",
                "TTM wk",
                "cost $B",
                "CAS",
            ],
            rows,
        )
        lines = [table, ""]
        for key, value in self.headline.items():
            lines.append(f"{key}: {value * 100:+.1f}%")
        return "\n".join(lines)


def run(
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    n_chips: float = DEFAULT_N_CHIPS,
    processes: Optional[Sequence[str]] = None,
    split_grid: Sequence[float] = DEFAULT_SPLIT_GRID,
    engine: str = "batch",
    refine: bool = False,
) -> Fig14Result:
    """Regenerate Fig. 14's matrices and the Sec. 7 headline numbers.

    The default batch engine evaluates the whole study as one vectorized
    (pair x split) tensor; ``engine="scalar"`` runs the per-plan oracle.
    ``refine=True`` sharpens each pair's optimal split to ~0.1%
    resolution with a second vectorized grid (off by default so the
    figure reproduces the paper's 2% panel values exactly).
    """
    ttm_model = model or TTMModel.nominal()
    costs = cost_model or CostModel.nominal()
    if processes is None:
        processes = [
            node.name
            for node in ttm_model.foundry.technology.production_nodes()
        ]
    study = run_split_study(
        raven_multicore,
        processes,
        ttm_model,
        costs,
        n_chips,
        split_grid=split_grid,
        engine=engine,
        refine=refine,
    )
    return Fig14Result(
        n_chips=n_chips,
        processes=tuple(processes),
        study=study,
        headline=headline_comparison(study),
    )
