"""Fig. 11 — queue time amplifies capacity loss (TTM view, Sec. 6.3).

A11 at 7 nm, 10 M chips, with quoted lead times of 0/1/2/4 weeks. The
quote pins a wafer backlog at full rate; as capacity drops, both the
backlog and the design's own wafers drain slower, so queued curves
steepen — the longer the quoted queue, the steeper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..analysis.sweep import capacity_fractions
from ..analysis.tables import format_table
from ..design.library.a11 import a11
from ..engine.batch import ttm_over_capacity
from ..engine.parallel import parallel_map
from ..market.conditions import MarketConditions
from ..ttm.model import TTMModel
from .fig07_a11_ttm_cost import DEFAULT_N_CHIPS

DEFAULT_PROCESS = "7nm"
DEFAULT_QUEUES: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class Fig11Result:
    """TTM series per quoted queue time."""

    process: str
    n_chips: float
    fractions: Tuple[float, ...]
    series: Mapping[float, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "series", dict(self.series))

    def at_full_capacity(self) -> Mapping[float, float]:
        """{queue weeks: TTM} at max production rate."""
        return {queue: values[-1] for queue, values in self.series.items()}

    def table(self) -> str:
        """The curves as rows per capacity point."""
        headers = ["capacity %"] + [f"queue {q:g} wk" for q in self.series]
        rows = []
        for i, fraction in enumerate(self.fractions):
            rows.append(
                [round(fraction * 100)]
                + [self.series[queue][i] for queue in self.series]
            )
        return format_table(headers, rows)


def queue_model(
    base: TTMModel, process: str, queue_weeks: float
) -> TTMModel:
    """The base model with a lead time quoted on one node."""
    conditions = MarketConditions.nominal().with_queue(process, queue_weeks)
    return base.with_foundry(base.foundry.with_conditions(conditions))


def run(
    model: Optional[TTMModel] = None,
    process: str = DEFAULT_PROCESS,
    n_chips: float = DEFAULT_N_CHIPS,
    queues: Sequence[float] = DEFAULT_QUEUES,
    fractions: Optional[Sequence[float]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> Fig11Result:
    """Regenerate Fig. 11's TTM-vs-capacity curves per queue time.

    Each queue's curve is one batched TTM call; ``executor`` fans the
    per-queue work out through :func:`repro.engine.parallel.parallel_map`.
    """
    base = model or TTMModel.nominal()
    sweep = tuple(fractions) if fractions else capacity_fractions(0.25, 1.0, 16)
    design = a11(process)

    def queue_curve(queue_weeks: float) -> Tuple[float, ...]:
        queued = queue_model(base, process, queue_weeks)
        return tuple(ttm_over_capacity(queued, design, n_chips, sweep))

    curves = parallel_map(
        queue_curve, queues, executor=executor, max_workers=max_workers
    )
    series = dict(zip(queues, curves))
    return Fig11Result(
        process=process, n_chips=n_chips, fractions=sweep, series=series
    )
