"""NRE-amortization crossovers: at what volume does a node win on cost?

The Moonwalk lineage's central question: an advanced node charges more
NRE (masks, tapeout) but less silicon per chip; a legacy node is cheap to
enter but pays for every wafer. Their total-cost curves cross at some
volume, below which the legacy node is the economical choice. This module
finds that crossover by bisection on the (monotone) cost difference.

The same machinery answers the TTM flavor — Fig. 10's "the fastest node
shifts with volume" — via :func:`ttm_crossover_volume`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .model import CostModel

#: A factory mapping a node name to the ported design (Sec. 7 convention).
DesignFactory = Callable[[str], object]


def _crossover(
    difference: Callable[[float], float],
    low: float,
    high: float,
    iterations: int = 80,
) -> Optional[float]:
    """Root of a monotone-ish sign-changing difference, or None."""
    f_low = difference(low)
    f_high = difference(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if (f_low > 0.0) == (f_high > 0.0):
        return None
    for _ in range(iterations):
        mid = (low * high) ** 0.5  # geometric: volumes span decades
        if (difference(mid) > 0.0) == (f_low > 0.0):
            low = mid
        else:
            high = mid
    return (low * high) ** 0.5


def cost_crossover_volume(
    design_factory: DesignFactory,
    cheap_entry_node: str,
    cheap_silicon_node: str,
    cost_model: CostModel,
    min_chips: float = 1e3,
    max_chips: float = 1e10,
) -> Optional[float]:
    """The volume where total costs of the two nodes are equal.

    Below the crossover, ``cheap_entry_node`` (low NRE) wins; above it,
    ``cheap_silicon_node`` (low marginal cost) wins. Returns ``None`` if
    one node dominates across the whole range — which the caller should
    treat as "there is no volume argument for the other node".
    """
    _validate_range(min_chips, max_chips)

    def difference(n_chips: float) -> float:
        entry = cost_model.total_usd(
            design_factory(cheap_entry_node), n_chips  # type: ignore[arg-type]
        )
        silicon = cost_model.total_usd(
            design_factory(cheap_silicon_node), n_chips  # type: ignore[arg-type]
        )
        return entry - silicon

    return _crossover(difference, min_chips, max_chips)


def ttm_crossover_volume(
    design_factory: DesignFactory,
    quick_start_node: str,
    high_throughput_node: str,
    model: TTMModel,
    min_chips: float = 1e3,
    max_chips: float = 1e10,
) -> Optional[float]:
    """The volume where the two nodes' TTM curves cross (Fig. 10's walk).

    ``quick_start_node`` wins small runs (little tapeout, short latency);
    ``high_throughput_node`` catches up as wafer throughput dominates.
    """
    _validate_range(min_chips, max_chips)

    def difference(n_chips: float) -> float:
        quick = model.total_weeks(
            design_factory(quick_start_node), n_chips  # type: ignore[arg-type]
        )
        throughput = model.total_weeks(
            design_factory(high_throughput_node), n_chips  # type: ignore[arg-type]
        )
        return quick - throughput

    return _crossover(difference, min_chips, max_chips)


def _validate_range(min_chips: float, max_chips: float) -> None:
    if not 0.0 < min_chips < max_chips:
        raise InvalidParameterError(
            f"need 0 < min < max chips, got {min_chips} and {max_chips}"
        )
