"""Top-level chip-creation cost model.

Chip creation cost = NRE (tapeout engineering + fixed bring-up + masks)
plus recurring manufacturing (wafers + testing + packaging), per the
paper's Moonwalk-derived methodology (Sec. 5). Costs are independent of
market conditions: a slow supply chain delays chips, it does not change
what the foundry bills (price dynamics during shortages are out of scope
for the paper and for this model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..technology.database import TechnologyDatabase
from ..technology.yield_model import DEFAULT_ALPHA
from .manufacturing import (
    DIE_HANDLING_COST_USD,
    PACKAGE_AREA_COST_USD_PER_MM2,
    PACKAGE_BASE_COST_USD,
    TEST_COST_USD_PER_TRANSISTOR,
    manufacturing_cost,
    wafer_demand,
)
from .nre import ENGINEER_WEEK_COST_USD, design_nre


@dataclass(frozen=True)
class CostResult:
    """Complete chip-creation cost breakdown in USD."""

    design: str
    n_chips: float
    engineering_usd: float
    fixed_usd: float
    mask_usd: float
    wafer_usd: float
    testing_usd: float
    packaging_usd: float
    wafers_by_process: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "wafers_by_process", dict(self.wafers_by_process))

    @property
    def nre_usd(self) -> float:
        """One-time costs: engineering + fixed bring-up + masks."""
        return self.engineering_usd + self.fixed_usd + self.mask_usd

    @property
    def manufacturing_usd(self) -> float:
        """Recurring costs: wafers + testing + packaging."""
        return self.wafer_usd + self.testing_usd + self.packaging_usd

    @property
    def total_usd(self) -> float:
        """Total chip-creation cost."""
        return self.nre_usd + self.manufacturing_usd

    @property
    def usd_per_chip(self) -> float:
        """Total cost amortized over the production run."""
        return self.total_usd / self.n_chips

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline numbers."""
        return {
            "engineering_usd": self.engineering_usd,
            "fixed_usd": self.fixed_usd,
            "mask_usd": self.mask_usd,
            "wafer_usd": self.wafer_usd,
            "testing_usd": self.testing_usd,
            "packaging_usd": self.packaging_usd,
            "nre_usd": self.nre_usd,
            "manufacturing_usd": self.manufacturing_usd,
            "total_usd": self.total_usd,
        }


@dataclass(frozen=True)
class CostModel:
    """Evaluates chip-creation cost for designs on a technology database."""

    technology: TechnologyDatabase
    engineer_week_cost_usd: float = ENGINEER_WEEK_COST_USD
    package_base_usd: float = PACKAGE_BASE_COST_USD
    die_handling_usd: float = DIE_HANDLING_COST_USD
    package_area_usd_per_mm2: float = PACKAGE_AREA_COST_USD_PER_MM2
    test_usd_per_transistor: float = TEST_COST_USD_PER_TRANSISTOR
    alpha: float = DEFAULT_ALPHA
    edge_corrected: bool = False

    @classmethod
    def nominal(cls, technology: Optional[TechnologyDatabase] = None) -> "CostModel":
        """A cost model over the default technology database."""
        return cls(technology=technology or TechnologyDatabase.default())

    def chip_creation_cost(self, design: ChipDesign, n_chips: float) -> CostResult:
        """Full cost breakdown for producing ``n_chips`` final chips."""
        if n_chips <= 0.0:
            raise InvalidParameterError(
                f"number of final chips must be positive, got {n_chips}"
            )
        nre = design_nre(design, self.technology, self.engineer_week_cost_usd)
        recurring = manufacturing_cost(
            design,
            self.technology,
            n_chips,
            alpha=self.alpha,
            edge_corrected=self.edge_corrected,
            package_base_usd=self.package_base_usd,
            die_handling_usd=self.die_handling_usd,
            package_area_usd_per_mm2=self.package_area_usd_per_mm2,
            test_usd_per_transistor=self.test_usd_per_transistor,
        )
        demand = wafer_demand(
            design,
            self.technology,
            n_chips,
            alpha=self.alpha,
            edge_corrected=self.edge_corrected,
        )
        return CostResult(
            design=design.name,
            n_chips=n_chips,
            engineering_usd=nre.engineering_usd,
            fixed_usd=nre.fixed_usd,
            mask_usd=nre.mask_usd,
            wafer_usd=recurring.wafer_usd,
            testing_usd=recurring.testing_usd,
            packaging_usd=recurring.packaging_usd,
            wafers_by_process=demand,
        )

    def total_usd(self, design: ChipDesign, n_chips: float) -> float:
        """Shorthand for ``chip_creation_cost(...).total_usd``."""
        return self.chip_creation_cost(design, n_chips).total_usd
