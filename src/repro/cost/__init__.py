"""Chip-creation cost model (Moonwalk-derived, paper Sec. 5)."""

from .crossover import cost_crossover_volume, ttm_crossover_volume
from .manufacturing import (
    DIE_HANDLING_COST_USD,
    ManufacturingBreakdown,
    PACKAGE_AREA_COST_USD_PER_MM2,
    PACKAGE_BASE_COST_USD,
    TEST_COST_USD_PER_TRANSISTOR,
    manufacturing_cost,
    wafer_demand,
)
from .model import CostModel, CostResult
from .nre import (
    ENGINEER_WEEK_COST_USD,
    NREBreakdown,
    block_tapeout_cost_usd,
    design_nre,
    nre_by_process,
)

__all__ = [
    "CostModel",
    "CostResult",
    "DIE_HANDLING_COST_USD",
    "ENGINEER_WEEK_COST_USD",
    "ManufacturingBreakdown",
    "NREBreakdown",
    "PACKAGE_AREA_COST_USD_PER_MM2",
    "PACKAGE_BASE_COST_USD",
    "TEST_COST_USD_PER_TRANSISTOR",
    "block_tapeout_cost_usd",
    "cost_crossover_volume",
    "design_nre",
    "manufacturing_cost",
    "nre_by_process",
    "ttm_crossover_volume",
    "wafer_demand",
]
