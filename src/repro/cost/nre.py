"""Non-recurring engineering costs (Moonwalk-derived, paper Sec. 5).

The paper adopts Moonwalk's [56] NRE modeling, augmented with newer nodes
and updated mask costs [50]. For our purposes NRE decomposes into:

* **tapeout engineering** — the Eq. 2 effort priced per engineer-week.
  The rate is calibrated from Table 3: the cost delta between the
  streaming and iterative sorting accelerators at 5 nm ($2.2 M over
  ~104 engineer-weeks of extra effort) implies ~$21 K per engineer-week
  (fully loaded, EDA seats included);
* **fixed per-tapeout bring-up** — sign-off, licenses, shuttle overhead;
  the ~$3 M intercept of Table 3's C_tapeout column at 5 nm, exponential
  across the roadmap;
* **photomask sets** — one per node the design tapes out on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..technology.database import TechnologyDatabase
from ..technology.node import ProcessNode

#: Fully loaded engineer-week cost calibrated from Table 3 (USD).
ENGINEER_WEEK_COST_USD = 21_000.0


@dataclass(frozen=True)
class NREBreakdown:
    """NRE components in USD."""

    engineering_usd: float
    fixed_usd: float
    mask_usd: float

    @property
    def total_usd(self) -> float:
        """All NRE in USD."""
        return self.engineering_usd + self.fixed_usd + self.mask_usd


def block_tapeout_cost_usd(
    unique_transistors: float,
    node: ProcessNode,
    engineer_week_cost_usd: float = ENGINEER_WEEK_COST_USD,
) -> float:
    """C_tapeout of adding one block to an existing chip (Table 3).

    Engineering effort priced per engineer-week plus the node's fixed
    bring-up cost. No mask-set charge: the block rides the host chip's
    masks.
    """
    if unique_transistors < 0.0:
        raise InvalidParameterError(
            f"unique transistors must be >= 0, got {unique_transistors}"
        )
    effort_weeks = unique_transistors * node.tapeout_effort
    return effort_weeks * engineer_week_cost_usd + node.tapeout_fixed_cost_usd


def design_nre(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineer_week_cost_usd: float = ENGINEER_WEEK_COST_USD,
) -> NREBreakdown:
    """Full-design NRE: engineering + fixed + one mask set per node."""
    engineering = 0.0
    fixed = 0.0
    masks = 0.0
    for process, nut in design.nut_by_process().items():
        node = technology[process]
        engineering += nut * node.tapeout_effort * engineer_week_cost_usd
        fixed += node.tapeout_fixed_cost_usd
        masks += node.mask_set_cost_usd
    return NREBreakdown(
        engineering_usd=engineering, fixed_usd=fixed, mask_usd=masks
    )


def nre_by_process(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineer_week_cost_usd: float = ENGINEER_WEEK_COST_USD,
) -> Dict[str, float]:
    """Total NRE attributed to each node (for split-cost reporting)."""
    totals: Dict[str, float] = {}
    for process, nut in design.nut_by_process().items():
        node = technology[process]
        totals[process] = (
            nut * node.tapeout_effort * engineer_week_cost_usd
            + node.tapeout_fixed_cost_usd
            + node.mask_set_cost_usd
        )
    return totals
