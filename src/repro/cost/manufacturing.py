"""Recurring manufacturing costs: wafers, testing, packaging.

Wafer spend dominates at legacy nodes (low density -> huge dies -> many
wafers) while advanced nodes trade fewer wafers against much higher cost
per wafer — the tension behind Fig. 7's cost curve. Testing and packaging
costs follow the same drivers as their Eq. 7 time terms: transistors
tested (with yield overhead) and die area assembled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..technology.database import TechnologyDatabase
from ..technology.wafer import wafers_required
from ..technology.yield_model import DEFAULT_ALPHA

#: Per-final-chip packaging base cost (USD): substrate, assembly line,
#: final test insertion. This node-independent floor dominates per-chip
#: cost for small dies, which is why Fig. 14b's cost matrix is tight
#: (~8% spread) even though wafer spend varies by an order of magnitude.
PACKAGE_BASE_COST_USD = 6.0

#: Handling/attach cost per die placed in the package (USD). Chiplets pay
#: this once per die — the cost-side counterpart of Eq. 7's alignment
#: effort — but it is small enough that their yield advantage wins.
DIE_HANDLING_COST_USD = 1.0

#: Assembly cost per mm^2 of die area (USD).
PACKAGE_AREA_COST_USD_PER_MM2 = 1.0e-3

#: Test cost per transistor tested (USD) — aggregate tester amortization.
TEST_COST_USD_PER_TRANSISTOR = 1.0e-11


@dataclass(frozen=True)
class ManufacturingBreakdown:
    """Recurring cost components in USD."""

    wafer_usd: float
    testing_usd: float
    packaging_usd: float

    @property
    def total_usd(self) -> float:
        """All recurring manufacturing cost in USD."""
        return self.wafer_usd + self.testing_usd + self.packaging_usd


def wafer_demand(
    design: ChipDesign,
    technology: TechnologyDatabase,
    n_chips: float,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
) -> Dict[str, float]:
    """Wafers ordered per node (market-independent, unlike Eq. 4/5 times)."""
    if n_chips < 0.0:
        raise InvalidParameterError(f"chip count must be >= 0, got {n_chips}")
    demand: Dict[str, float] = {}
    for die in design.dies:
        node = technology[die.process]
        wafers = wafers_required(
            n_chips * die.count,
            die.area_on(node),
            die.yield_on(node, alpha=alpha),
            wafer_diameter_mm=node.wafer_diameter_mm,
            edge_corrected=edge_corrected,
        )
        demand[die.process] = demand.get(die.process, 0.0) + wafers
    return demand


def manufacturing_cost(
    design: ChipDesign,
    technology: TechnologyDatabase,
    n_chips: float,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    package_base_usd: float = PACKAGE_BASE_COST_USD,
    die_handling_usd: float = DIE_HANDLING_COST_USD,
    package_area_usd_per_mm2: float = PACKAGE_AREA_COST_USD_PER_MM2,
    test_usd_per_transistor: float = TEST_COST_USD_PER_TRANSISTOR,
) -> ManufacturingBreakdown:
    """Recurring cost of manufacturing ``n_chips`` final chips.

    Packaging cost is one base fee per final chip plus a handling fee and
    an area charge per die placed; testing bills every die that flows
    through the testers (yield overhead included).
    """
    demand = wafer_demand(
        design, technology, n_chips, alpha=alpha, edge_corrected=edge_corrected
    )
    wafer_usd = sum(
        wafers * technology[process].wafer_cost_usd
        for process, wafers in demand.items()
    )
    testing_usd = 0.0
    packaging_usd = n_chips * package_base_usd
    for die in design.dies:
        node = technology[die.process]
        die_yield = die.yield_on(node, alpha=alpha)
        dies_tested = n_chips * die.count / die_yield
        testing_usd += dies_tested * die.ntt * test_usd_per_transistor
        packaging_usd += n_chips * die.count * (
            die_handling_usd + die.area_on(node) * package_area_usd_per_mm2
        )
    return ManufacturingBreakdown(
        wafer_usd=wafer_usd,
        testing_usd=testing_usd,
        packaging_usd=packaging_usd,
    )
