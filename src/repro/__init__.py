"""Supply chain aware computer architecture modeling (ISCA '23 repro).

Public API for the time-to-market model, Chip Agility Score, and chip
creation cost model from Ning, Tziantzioulis & Wentzlaff, *Supply Chain
Aware Computer Architecture*, ISCA 2023.

Quickstart::

    from repro import TTMModel, CostModel, chip_agility_score
    from repro.design.library import a11

    model = TTMModel.nominal()
    design = a11("28nm")
    result = model.time_to_market(design, n_chips=10e6)
    print(result.total_weeks)
    print(chip_agility_score(model, design, 10e6).normalized)
"""

from .agility import CASResult, cas_curve, chip_agility_score, ttm_curve
from .cost import CostModel, CostResult
from .design import Block, ChipDesign, Die, ip_block
from .errors import (
    CalibrationError,
    InvalidDesignError,
    InvalidParameterError,
    NodeUnavailableError,
    ReproError,
    UnknownNodeError,
)
from .market import Foundry, MarketConditions
from .technology import ProcessNode, TechnologyDatabase
from .ttm import TTMModel, TTMResult

__version__ = "1.0.0"

__all__ = [
    "Block",
    "CASResult",
    "CalibrationError",
    "ChipDesign",
    "CostModel",
    "CostResult",
    "Die",
    "Foundry",
    "InvalidDesignError",
    "InvalidParameterError",
    "MarketConditions",
    "NodeUnavailableError",
    "ProcessNode",
    "ReproError",
    "TTMModel",
    "TTMResult",
    "TechnologyDatabase",
    "UnknownNodeError",
    "__version__",
    "cas_curve",
    "chip_agility_score",
    "ip_block",
    "ttm_curve",
]
