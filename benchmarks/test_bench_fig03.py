"""Benchmark: regenerate Fig. 3 (Chip A/B TTM and CAS curves)."""

from repro.experiments import fig03_chip_ab


def test_bench_fig03(benchmark, model):
    result = benchmark(fig03_chip_ab.run, model)
    # Chip B is the agile one: higher CAS at every capacity point.
    for a, b in zip(result.cas["Chip A"], result.cas["Chip B"]):
        assert b > a
