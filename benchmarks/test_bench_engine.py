"""Benchmark: batched engine kernels vs the scalar evaluation paths.

Each benchmark times the batched hot path and asserts (a) numerical
equivalence with the scalar path and (b) a modest speedup floor (the
headline numbers live in ``scripts/bench_engine.py`` -> BENCH_engine.json;
the floors here are deliberately loose so CI machines don't flake).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.agility.cas import chip_agility_score
from repro.analysis.sweep import capacity_fractions, chip_quantities
from repro.design.library.a11 import (
    A11_TOTAL_TRANSISTORS,
    A11_UNIQUE_TRANSISTORS,
    a11,
)
from repro.design.library.ariane import ariane_manycore
from repro.design.library.raven import raven_multicore
from repro.engine.batch import batch_ttm, cas_over_capacity
from repro.engine.batch_split import batch_split
from repro.engine.portfolio import portfolio_ttm
from repro.engine.sobol_adapter import ttm_factor_batch_function
from repro.market.conditions import MarketConditions
from repro.multiprocess.optimizer import run_split_study
from repro.sensitivity.sobol import sobol_indices
from repro.sensitivity.ttm_factors import ttm_factor_function, ttm_factors

N_CHIPS = 1e7
SMOKE_SPEEDUP_FLOOR = 3.0


def _best_of(repeats, call):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_batch_cas_sweep(benchmark, model):
    design = a11("7nm")
    fractions = capacity_fractions(0.05, 1.0, 20)
    quantities = np.asarray(chip_quantities()).reshape(-1, 1)

    batched = benchmark(
        cas_over_capacity, model, design, quantities, fractions
    )
    assert batched.shape == (len(chip_quantities()), len(fractions))
    for i, n in enumerate(chip_quantities()):
        for j, fraction in enumerate(fractions):
            scalar = chip_agility_score(
                model.at_capacity(fraction), design, n
            ).normalized
            assert batched[i, j] == pytest.approx(scalar, rel=1e-9)


def test_bench_vectorized_sobol(benchmark, model):
    factors = ttm_factors(
        "7nm", A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS
    )
    function = ttm_factor_batch_function("7nm", N_CHIPS)

    result = benchmark(
        sobol_indices, function, factors, 128, vectorized=True
    )
    assert result.evaluations == 128 * (len(factors) + 2)
    scalar = sobol_indices(
        ttm_factor_function("7nm", N_CHIPS), factors, base_samples=128
    )
    for name, value in scalar.total_effect.items():
        assert result.total_effect[name] == pytest.approx(
            value, rel=1e-9, abs=1e-12
        )


def test_engine_speedup_smoke(model):
    """Batched sweeps must beat scalar loops by a comfortable margin."""
    design = a11("7nm")
    fractions = capacity_fractions(0.05, 1.0, 20)
    quantities = np.asarray(chip_quantities()).reshape(-1, 1)

    def scalar_sweep():
        return [
            chip_agility_score(
                model.at_capacity(fraction), design, float(n)
            ).normalized
            for n in chip_quantities()
            for fraction in fractions
        ]

    def batched_sweep():
        return cas_over_capacity(model, design, quantities, fractions)

    batched_sweep()  # warm the invariant cache before timing
    scalar_time = _best_of(3, scalar_sweep)
    batched_time = _best_of(3, batched_sweep)
    assert scalar_time / batched_time >= SMOKE_SPEEDUP_FLOOR


def test_batch_ttm_quantity_row_matches_scalar(model):
    design = a11("28nm")
    totals = batch_ttm(model, design, chip_quantities()).total_weeks
    for n, weeks in zip(chip_quantities(), totals):
        assert weeks == pytest.approx(
            model.total_weeks(design, n), rel=1e-9
        )


#: A reduced Fig. 14 study: 4 nodes x a 5% grid keeps the scalar oracle
#: affordable inside the benchmark suite.
SPLIT_NODES = ("65nm", "40nm", "28nm", "14nm")
SPLIT_GRID = tuple(s / 20 for s in range(1, 21))
SPLIT_PAIRS = tuple(
    (primary, secondary)
    for i, secondary in enumerate(SPLIT_NODES)
    for primary in SPLIT_NODES[i:]
)


def test_bench_batch_split_tensor(benchmark, model, cost_model):
    result = benchmark(
        batch_split,
        raven_multicore,
        SPLIT_PAIRS,
        model,
        cost_model,
        N_CHIPS,
        SPLIT_GRID,
    )
    assert result.ttm_weeks.shape == (len(SPLIT_PAIRS), len(SPLIT_GRID))
    oracle = run_split_study(
        raven_multicore,
        SPLIT_NODES,
        model,
        cost_model,
        N_CHIPS,
        split_grid=SPLIT_GRID,
        engine="scalar",
    )
    for index, key in enumerate(SPLIT_PAIRS):
        best = result.best_evaluation(index)
        expected = oracle.pairs[key].best
        assert best.split == expected.split
        assert best.cas == pytest.approx(expected.cas, rel=1e-9)
        assert best.ttm_weeks == pytest.approx(expected.ttm_weeks, rel=1e-9)


#: A reduced portfolio_mc workload: 16 designs x 512 shared samples
#: keeps the per-design oracle (and the scalar smoke loop) affordable.
def _portfolio_workload(n_designs=16, n_samples=512, seed=20230613):
    designs = [
        ariane_manycore(process, cores=cores)
        for process in ("40nm", "28nm", "14nm", "7nm")
        for cores in (4, 8, 16, 32)
    ][:n_designs]
    rng = np.random.default_rng(seed)
    capacity = rng.uniform(0.2, 1.0, n_samples)
    queue_weeks = rng.uniform(0.0, 20.0, n_samples)
    demand = rng.uniform(1e6, 5e7, n_samples)
    return designs, capacity, queue_weeks, demand


def test_bench_portfolio_ttm_tensor(benchmark, model):
    designs, capacity, queue_weeks, demand = _portfolio_workload()

    result = benchmark(
        portfolio_ttm,
        model,
        designs,
        demand,
        capacity,
        queue_weeks,
    )
    assert result.total_weeks.shape == (len(designs), len(demand))
    for i, design in enumerate(designs):
        oracle = batch_ttm(
            model, design, demand, capacity=capacity, queue_weeks=queue_weeks
        ).total_weeks
        assert float(np.max(np.abs(result.total_weeks[i] - oracle))) <= 1e-9


def test_portfolio_speedup_smoke(model):
    """The fused portfolio pass must beat the scalar design loop."""
    designs, capacity, queue_weeks, demand = _portfolio_workload(
        n_designs=8, n_samples=64
    )

    def scalar_loop():
        stressed = [
            model.with_foundry(
                model.foundry.with_conditions(
                    MarketConditions.nominal()
                    .with_global_capacity(float(capacity[j]))
                    .with_global_queue(float(queue_weeks[j]))
                )
            )
            for j in range(len(demand))
        ]
        return [
            [
                sample_model.total_weeks(design, float(demand[j]))
                for j, sample_model in enumerate(stressed)
            ]
            for design in designs
        ]

    def fused():
        return portfolio_ttm(
            model, designs, demand, capacity=capacity, queue_weeks=queue_weeks
        )

    fused()  # warm the invariant cache before timing
    scalar_time = _best_of(3, scalar_loop)
    fused_time = _best_of(3, fused)
    assert scalar_time / fused_time >= SMOKE_SPEEDUP_FLOOR


def test_split_engine_speedup_smoke(model, cost_model):
    """The batched split study must beat the scalar loop comfortably."""

    def scalar_study():
        return run_split_study(
            raven_multicore,
            SPLIT_NODES,
            model,
            cost_model,
            N_CHIPS,
            split_grid=SPLIT_GRID,
            engine="scalar",
        )

    def batched_study():
        return batch_split(
            raven_multicore,
            SPLIT_PAIRS,
            model,
            cost_model,
            N_CHIPS,
            SPLIT_GRID,
        )

    batched_study()  # warm the invariant cache before timing
    scalar_time = _best_of(2, scalar_study)
    batched_time = _best_of(3, batched_study)
    assert scalar_time / batched_time >= SMOKE_SPEEDUP_FLOOR
