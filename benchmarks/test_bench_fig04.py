"""Benchmark: regenerate Fig. 4 (IPC vs TTM cache scatter, 121 points)."""

from repro.experiments import fig04_cache_scatter


def test_bench_fig04(benchmark, model):
    result = benchmark(fig04_cache_scatter.run, model)
    assert len(result.points) == 121
    # The defining tension: max-IPC config is not the min-TTM config.
    best_ipc = max(result.points, key=lambda p: p.ipc)
    fastest = min(result.points, key=lambda p: p.ttm_weeks)
    assert best_ipc.ttm_weeks > fastest.ttm_weeks
