"""Ablation benchmarks for the modeling choices DESIGN.md calls out.

Each benchmark toggles one assumption of the default model and asserts
the direction of the effect, quantifying how much the choice matters:

* negative-binomial vs Poisson yield (alpha = 3 vs alpha -> inf);
* plain vs edge-corrected dies-per-wafer;
* pipelined vs strict-sequential multi-die scheduling;
* serial vs block-parallel tapeout staffing;
* Eq. 6 vs core-salvage yield for a manycore SKU.
"""

import pytest

from repro import TTMModel
from repro.design.library import (
    a11,
    ariane_manycore,
    ariane_manycore_salvage,
    zen2,
)
from repro.technology.yield_model import negative_binomial_yield, poisson_yield

N_CHIPS = 10e6


def test_bench_ablation_yield_model(benchmark, model):
    """Clustered defects (alpha = 3) are worth real wafers on big dies."""

    def evaluate():
        node = model.foundry.technology["250nm"]
        design = a11("250nm")
        area = design.dies[0].area_on(node)
        return (
            negative_binomial_yield(area, node.defect_density_per_cm2),
            poisson_yield(area, node.defect_density_per_cm2),
        )

    clustered, poisson = benchmark(evaluate)
    assert clustered > poisson
    assert (clustered - poisson) / poisson > 0.05


def test_bench_ablation_edge_dies(benchmark):
    """The edge-die correction strictly lengthens fabrication."""
    plain = TTMModel.nominal()
    corrected = TTMModel.nominal(edge_corrected=True)

    def evaluate():
        design = a11("28nm")
        return (
            plain.total_weeks(design, N_CHIPS),
            corrected.total_weeks(design, N_CHIPS),
        )

    base, edge = benchmark(evaluate)
    assert edge > base


def test_bench_ablation_schedule(benchmark):
    """Pipelined scheduling beats the strict Eq. 1 sum for chiplets."""
    pipelined = TTMModel.nominal()
    sequential = TTMModel.nominal(schedule="sequential")

    def evaluate():
        design = zen2()
        return (
            pipelined.total_weeks(design, N_CHIPS),
            sequential.total_weeks(design, N_CHIPS),
        )

    fast, slow = benchmark(evaluate)
    assert fast < slow


def test_bench_ablation_block_parallel(benchmark):
    """Parallel block staffing shortens tapeout for block-rich dies."""
    serial = TTMModel.nominal()
    parallel = TTMModel.nominal(block_parallel=True)

    def evaluate():
        design = a11("5nm")
        return (
            serial.time_to_market(design, N_CHIPS).tapeout_weeks,
            parallel.time_to_market(design, N_CHIPS).tapeout_weeks,
        )

    serial_weeks, parallel_weeks = benchmark(evaluate)
    assert parallel_weeks < serial_weeks


def test_bench_ablation_salvage(benchmark, model):
    """Selling 14-of-16-core SKUs cuts wafer demand on a large die."""

    def evaluate():
        base = ariane_manycore("7nm", cores=16, icache_kb=512, dcache_kb=1024)
        salvaged = ariane_manycore_salvage(
            "7nm", cores=16, required_cores=14, icache_kb=512, dcache_kb=1024
        )
        return (
            sum(model.wafer_demand(base, 1e8).values()),
            sum(model.wafer_demand(salvaged, 1e8).values()),
        )

    base_wafers, salvage_wafers = benchmark(evaluate)
    assert salvage_wafers < base_wafers


def test_bench_ablation_alpha(benchmark, model):
    """Less clustering (higher alpha) means lower yield, more wafers."""

    def evaluate():
        loose = TTMModel.nominal(alpha=1.0)
        tight = TTMModel.nominal(alpha=10.0)
        design = a11("28nm")
        return (
            sum(loose.wafer_demand(design, N_CHIPS).values()),
            sum(tight.wafer_demand(design, N_CHIPS).values()),
        )

    clustered_wafers, spread_wafers = benchmark(evaluate)
    assert clustered_wafers < spread_wafers
