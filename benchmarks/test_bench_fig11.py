"""Benchmark: regenerate Fig. 11 (queue-time TTM curves @7 nm)."""

from repro.experiments import fig11_queue_ttm


def test_bench_fig11(benchmark, model):
    result = benchmark(fig11_queue_ttm.run, model)
    at_full = result.at_full_capacity()
    # Longer quotes mean longer TTM, and the 4-week quote costs exactly
    # 4 weeks at full rate.
    assert at_full[0.0] < at_full[1.0] < at_full[2.0] < at_full[4.0]
    assert abs((at_full[4.0] - at_full[0.0]) - 4.0) < 0.05
