"""Benchmarks for the extension experiments and substrates."""

from repro.design.library import raven_multicore
from repro.experiments import interposer_study, profit_study_a11
from repro.market.dynamics import DemandScript, lead_time_trace
from repro.multiprocess import balance_allocation, evaluate_allocation


def test_bench_interposer_study(benchmark, model, cost_model):
    result = benchmark(interposer_study.run, model, cost_model)
    # The paper's what-if: 40 nm beats 65 nm when capacity is scarce.
    assert (
        result.option("40nm").crunch_ttm_weeks
        < result.option("65nm").crunch_ttm_weeks
    )


def test_bench_profit_study(benchmark, model, cost_model):
    result = benchmark(profit_study_a11.run, model, cost_model)
    assert result.race.most_profitable.process == "28nm"


def test_bench_kway_allocation(benchmark, model, cost_model):
    def evaluate():
        shares = balance_allocation(
            raven_multicore,
            ["180nm", "65nm", "40nm", "28nm", "14nm"],
            model,
            1e9,
        )
        return evaluate_allocation(
            raven_multicore, shares, model, cost_model, 1e9
        )

    result = benchmark(evaluate)
    # The balanced multi-way plan beats the best single node.
    assert result.ttm_weeks < model.total_weeks(raven_multicore("28nm"), 1e9)


def test_bench_dynamic_queue(benchmark):
    script = (
        DemandScript.steady(156, 55_000.0)
        .with_demand_surge(20, 40, 1.3)
        .with_capacity_outage(90, 10, 0.5)
    )

    trace = benchmark(lead_time_trace, 58_000.0, 18, script)
    # The surge and the outage both show up as lead-time spikes.
    assert max(trace) > trace[0] + 1.0
