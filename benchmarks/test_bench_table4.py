"""Benchmark: regenerate Table 4 (Zen-2 die data)."""

from repro.experiments import table4_zen2_dies


def test_bench_table4(benchmark):
    result = benchmark(table4_zen2_dies.run)
    # The published tapeout anchors: 3.6/10.4 (compute), 4.0/11.5 (io).
    assert abs(result.row("compute", "14nm").tapeout_weeks - 3.6) < 0.1
    assert abs(result.row("compute", "7nm").tapeout_weeks - 10.4) < 0.1
    assert abs(result.row("io", "14nm").tapeout_weeks - 4.0) < 0.1
    assert abs(result.row("io", "7nm").tapeout_weeks - 11.5) < 0.1
