"""Benchmark: regenerate Fig. 13 (chiplet/mixed-process comparison)."""

from repro.experiments import fig13_chiplets


def test_bench_fig13(benchmark, model, cost_model):
    result = benchmark(
        fig13_chiplets.run, model, cost_model, (10e6, 25e6)
    )
    # Mixed-process Zen 2: fastest of the chiplet family and most agile.
    assert result.ttm["Zen 2"][-1] < result.ttm["7nm chiplet"][-1]
    full_cas = result.cas_at_full_capacity()
    assert full_cas["Zen 2"] > full_cas["7nm chiplet"]
    assert full_cas["7nm chiplet"] > full_cas["7nm monolithic"]
