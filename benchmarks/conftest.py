"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures via the
experiment modules and asserts its headline property, so `pytest
benchmarks/ --benchmark-only` doubles as an end-to-end reproduction run.
"""

from __future__ import annotations

import pytest

from repro import CostModel, TTMModel


@pytest.fixture(scope="session")
def model() -> TTMModel:
    """Nominal TTM model shared across benchmarks."""
    return TTMModel.nominal()


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    """Nominal cost model shared across benchmarks."""
    return CostModel.nominal()
