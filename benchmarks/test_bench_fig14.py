"""Benchmark: regenerate Fig. 14 (two-process manufacturing matrices).

The full 55-pair x 50-split sweep is the heaviest artifact; the benchmark
runs it end to end with the standard grid.
"""

from repro.experiments import fig14_multiprocess

GRID = tuple(s / 25 for s in range(1, 26))


def test_bench_fig14(benchmark, model, cost_model):
    result = benchmark(
        fig14_multiprocess.run, model, cost_model, 1e9, None, GRID
    )
    fastest = result.study.fastest()
    # Sec. 7's headline: 28 nm + 40 nm is the fastest combination, and
    # multi-process manufacturing beats every single-process baseline.
    assert {fastest.primary, fastest.secondary} == {"28nm", "40nm"}
    singles = result.study.single_process_results()
    assert fastest.best.ttm_weeks < min(
        r.best.ttm_weeks for r in singles.values()
    )
    assert result.headline["agility_gain"] > 0.2
