"""Benchmark: regenerate Fig. 12 (queue-time CAS curves @7 nm)."""

from repro.experiments import fig12_queue_cas


def test_bench_fig12(benchmark, model):
    result = benchmark(fig12_queue_cas.run, model)
    peaks = result.max_cas()
    # Any quoted backlog erodes agility; more queue, less CAS.
    assert peaks[0.0] > peaks[1.0] > peaks[2.0] > peaks[4.0]
    # Paper: 1 quoted week cut max CAS by ~37%; ours is >= that.
    assert result.one_week_drop() > 0.3
