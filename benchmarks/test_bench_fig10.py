"""Benchmark: regenerate Fig. 10 (A11 TTM matrix, 60 cells)."""

from repro.experiments import fig10_a11_matrix


def test_bench_fig10(benchmark, model):
    result = benchmark(fig10_a11_matrix.run, model)
    assert len(result.ttm) == 60
    # Volume shifts the fastest node from legacy toward 28 nm.
    assert result.fastest_for(1e7) == "28nm"
    # 180 nm stays ahead of 130/90 nm at every volume (wafer rate wins).
    for n in result.quantities:
        assert result.ttm[("180nm", n)] < result.ttm[("130nm", n)]
