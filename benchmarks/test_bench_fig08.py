"""Benchmark: regenerate Fig. 8 (Sobol sensitivity heatmap, 10 nodes)."""

from repro.experiments import fig08_a11_sensitivity


def test_bench_fig08(benchmark, model):
    result = benchmark(fig08_a11_sensitivity.run, model)
    # The paper's pattern: NTT rules legacy, latency rules the middle,
    # NUT rises at 5 nm.
    assert result.dominant_factor("250nm") == "NTT"
    assert result.dominant_factor("28nm") == "Lfab"
    assert result.total_effect("NUT", "5nm") > result.total_effect(
        "NUT", "28nm"
    )
