"""Benchmark: regenerate Fig. 9 (A11 CAS curves on advanced nodes)."""

from repro.experiments import fig09_a11_cas


def test_bench_fig09(benchmark, model):
    result = benchmark(fig09_a11_cas.run, model)
    ranking = result.ranking_at_full_capacity()
    # 7 nm most agile; 14 nm above 5 nm; 40 nm least agile.
    assert ranking[0] == "7nm"
    assert ranking[-1] == "40nm"
    full = result.at_full_capacity()
    assert full["14nm"] > full["5nm"]
