"""Benchmark: regenerate Fig. 5 (IPC/TTM vs IPC/cost optima)."""

from repro.experiments import fig05_ipc_tradeoffs


def test_bench_fig05(benchmark, model, cost_model):
    result = benchmark(fig05_ipc_tradeoffs.run, model, cost_model)
    ttm_opt = result.best_ipc_per_ttm
    cost_opt = result.best_ipc_per_cost
    # The two figures of merit pick different cache configurations.
    assert (ttm_opt.icache_kb, ttm_opt.dcache_kb) != (
        cost_opt.icache_kb,
        cost_opt.dcache_kb,
    )
