"""Benchmark: regenerate Fig. 7 (A11 TTM phases + cost, with CI bands)."""

from repro.experiments import fig07_a11_ttm_cost


def test_bench_fig07(benchmark, model, cost_model):
    result = benchmark(fig07_a11_ttm_cost.run, model, cost_model)
    # 28 nm is the fastest node to re-release the A11 on.
    assert result.fastest.process == "28nm"
    gain_7nm, gain_5nm = fig07_a11_ttm_cost.headline_band(result)
    # Paper: +73% (7 nm) and +116% (5 nm) over the best legacy node.
    assert gain_5nm > gain_7nm > 0.3
