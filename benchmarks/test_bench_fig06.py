"""Benchmark: regenerate Fig. 6 (optimal cache matrix, 60 cells)."""

from repro.experiments import fig06_cache_matrix


def test_bench_fig06(benchmark, model):
    result = benchmark(fig06_cache_matrix.run, model)
    assert len(result.cells) == 60
    # Mass production shrinks the optimal caches on every node.
    for process in result.processes:
        small = result.cell(process, 1e3)
        mass = result.cell(process, 1e8)
        assert (
            mass.icache_kb + mass.dcache_kb
            <= small.icache_kb + small.dcache_kb
        )
