"""Benchmark: regenerate Table 3 (accelerator speed-up / tapeout cost)."""

from repro.experiments import table3_accelerators


def test_bench_table3(benchmark):
    result = benchmark(table3_accelerators.run)
    # Streaming variants out-run but out-cost their iterative siblings.
    for kind in ("sorting", "dft"):
        stream = result.row(f"{kind}-stream")
        iterative = result.row(f"{kind}-iterative")
        assert stream.speedup > iterative.speedup
        assert stream.tapeout_cost_usd > iterative.tapeout_cost_usd
        assert stream.tapeout_weeks > iterative.tapeout_weeks
