#!/usr/bin/env python
"""Smoke-test a running (or in-process) repro.serve evaluation server.

CI boots ``ttm-cas serve`` in the background and points this script at
it with ``--connect HOST:PORT``; with no argument the script boots its
own in-process server, so the same checks run anywhere. The pass bar is
the service's headline contract, end to end over real HTTP:

1. ``/healthz`` answers;
2. a concurrent burst of identical ``/evaluate`` requests coalesces
   (X-Batch-Size > 1) and every response is byte-identical to a solo
   request's response;
3. ``/mc`` and ``/splits`` answer and are deterministic across repeats;
4. malformed input gets a structured 400, not a hang or a 500;
5. ``/metrics`` exposes the full ``serve_*`` family (optionally written
   to ``--metrics-out`` for the CI artifact);
6. with ``--expect-workers N`` (a sharded ``--workers N`` server): the
   aggregated ``/metrics`` carries at least N distinct ``worker=``
   labels and ``/healthz`` reports N live workers;
7. with ``--assert-trace`` (a ``--trace`` server): one ``/evaluate``
   yields a stitched router -> worker -> batch trace spanning at least
   two processes, fetched from ``GET /debug/trace``;
8. with ``--obs-out FILE``: the live ``GET /debug/obs`` snapshot is
   dumped to FILE for the CI artifact.

Exit code 0 = all checks passed.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
    PYTHONPATH=src python scripts/serve_smoke.py --connect 127.0.0.1:8321
    PYTHONPATH=src python scripts/serve_smoke.py --metrics-out serve.prom
    PYTHONPATH=src python scripts/serve_smoke.py --connect 127.0.0.1:8321 \\
        --expect-workers 2 --assert-trace --obs-out serve-obs.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs.distributed import stitch_trace
from repro.serve import ServeClient, ServerConfig, ServerThread

BURST = 12
SERVE_METRICS = (
    "serve_requests_total",
    "serve_request_seconds",
    "serve_queue_depth",
    "serve_batches_total",
    "serve_batched_requests_total",
    "serve_batch_size",
    "serve_rejected_total",
)


def check(label: str, ok: bool, detail: str = "") -> bool:
    print(f"{'ok' if ok else 'FAILED'}: {label}" + (f" ({detail})" if detail else ""))
    return ok


def check_stitched_trace(client: ServeClient) -> bool:
    """One request -> one stitched cross-process trace (``--trace``)."""
    response = client.post("/evaluate", {"design": "a11", "n_chips": 3e7})
    if not check(
        "traced request answers with ids",
        response.status == 200
        and bool(response.request_id)
        and len(response.trace_id) == 32,
        f"status {response.status}, trace {response.trace_id!r}",
    ):
        return False
    wanted = {"serve.router", "serve.request"}
    stitched, names = [], set()
    # Worker spans land after the response is sent; poll briefly.
    for _ in range(100):
        debug = client.get("/debug/trace")
        if debug.status != 200:
            break
        stitched = stitch_trace(debug.json()["spans"], response.trace_id)
        names = {span["name"] for span in stitched}
        if wanted <= names:
            break
        time.sleep(0.05)
    pids = {span["process_id"] for span in stitched}
    return check(
        "one stitched router->worker trace across processes",
        wanted <= names and len(pids) >= 2,
        f"spans {sorted(names)}, {len(pids)} pid(s)",
    )


def run_checks(
    client: ServeClient,
    metrics_out: str,
    expect_workers: int = 0,
    assert_trace: bool = False,
    obs_out: str = "",
) -> bool:
    ok = True

    health = client.get("/healthz")
    ok &= check(
        "healthz answers",
        health.status == 200 and health.json().get("status") == "ok",
        f"status {health.status}",
    )

    body = {"design": "a11", "n_chips": 2e7}
    solo = client.post("/evaluate", body)
    ok &= check("solo /evaluate answers", solo.status == 200)

    with ThreadPoolExecutor(max_workers=BURST) as pool:
        burst = list(
            pool.map(lambda _: client.post("/evaluate", body), range(BURST))
        )
    ok &= check(
        "burst all answered",
        all(r.status == 200 for r in burst),
        f"statuses {sorted({r.status for r in burst})}",
    )
    ok &= check(
        "burst coalesced",
        max(r.batch_size for r in burst) > 1,
        f"max batch {max(r.batch_size for r in burst)}",
    )
    ok &= check(
        "coalesced == solo, byte for byte",
        all(r.body == solo.body for r in burst),
    )

    mc_body = {"design": "zen2", "samples": 64, "seed": 5}
    mc_a = client.post("/mc", mc_body)
    mc_b = client.post("/mc", mc_body)
    ok &= check(
        "/mc answers deterministically",
        mc_a.status == 200 and mc_a.body == mc_b.body,
        f"status {mc_a.status}",
    )

    splits = client.post(
        "/splits", {"design": "a11", "pairs": [["7nm", "14nm"]]}
    )
    ok &= check("/splits answers", splits.status == 200)

    bad = client.request("POST", "/evaluate", body=b"{nope")
    ok &= check(
        "malformed JSON is a structured 400",
        bad.status == 400 and bad.json()["error"]["code"] == "invalid_json",
        f"status {bad.status}",
    )

    metrics = client.get("/metrics")
    text = metrics.body.decode("utf-8")
    missing = [s for s in SERVE_METRICS if f"# TYPE {s}" not in text]
    ok &= check(
        "metrics expose the serve_* family",
        metrics.status == 200 and not missing,
        f"missing {missing}" if missing else f"{len(text)} bytes",
    )
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {metrics_out}")

    if expect_workers:
        labels = {
            match
            for match in re.findall(r'worker="(\d+)"', text)
        }
        ok &= check(
            f"metrics carry >= {expect_workers} worker labels",
            len(labels) >= expect_workers,
            f"saw {sorted(labels)}",
        )
        fleet = health.json().get("workers", [])
        alive = [entry for entry in fleet if entry.get("alive")]
        ok &= check(
            f"healthz reports {expect_workers} live workers",
            len(alive) >= expect_workers,
            f"fleet {[(e.get('worker'), e.get('status')) for e in fleet]}",
        )

    if assert_trace:
        ok &= check_stitched_trace(client)

    if obs_out:
        obs = client.get("/debug/obs")
        ok &= check(
            "debug/obs snapshot answers",
            obs.status == 200 and "role" in obs.json(),
            f"status {obs.status}",
        )
        if obs.status == 200:
            with open(obs_out, "w", encoding="utf-8") as handle:
                handle.write(obs.body.decode("utf-8"))
                handle.write("\n")
            print(f"wrote {obs_out}")

    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Smoke-test a repro.serve evaluation server."
    )
    parser.add_argument(
        "--connect",
        default="",
        metavar="HOST:PORT",
        help="test a running server (default: boot one in-process)",
    )
    parser.add_argument(
        "--metrics-out",
        default="",
        metavar="FILE",
        help="write the final /metrics scrape to FILE",
    )
    parser.add_argument(
        "--expect-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "assert the server is sharded: >= N worker labels in "
            "/metrics and N live workers in /healthz"
        ),
    )
    parser.add_argument(
        "--assert-trace",
        action="store_true",
        help=(
            "assert one request yields a stitched cross-process trace "
            "(the server must be running with --trace)"
        ),
    )
    parser.add_argument(
        "--obs-out",
        default="",
        metavar="FILE",
        help="dump the GET /debug/obs snapshot to FILE",
    )
    args = parser.parse_args(argv)

    if args.connect:
        host, _, port = args.connect.rpartition(":")
        client = ServeClient(host or "127.0.0.1", int(port))
        ok = run_checks(
            client,
            args.metrics_out,
            args.expect_workers,
            assert_trace=args.assert_trace,
            obs_out=args.obs_out,
        )
    else:
        with ServerThread(
            ServerConfig(
                port=0, batch_window_ms=15.0, trace=args.assert_trace
            )
        ) as server:
            client = ServeClient(server.host, server.port)
            ok = run_checks(
                client,
                args.metrics_out,
                args.expect_workers,
                # In-process single server: router spans don't exist, so
                # the cross-process assertion only makes sense when
                # pointed at a sharded --trace server via --connect.
                assert_trace=False,
                obs_out=args.obs_out,
            )

    print("smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
