#!/usr/bin/env python
"""Regenerate the golden-master snapshots under tests/golden/snapshots/.

Equivalent to ``pytest tests/golden --regen-golden``; provided as a
script so the regeneration path is one obvious command::

    PYTHONPATH=src python scripts/regen_golden.py

Review the resulting JSON diff before committing — the snapshots are the
repository's numeric contract for every paper artifact.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.export import to_jsonable  # noqa: E402
from repro.experiments import registry  # noqa: E402


def main() -> int:
    snapshot_dir = (
        pathlib.Path(__file__).resolve().parents[1]
        / "tests" / "golden" / "snapshots"
    )
    snapshot_dir.mkdir(parents=True, exist_ok=True)
    sys.path.insert(0, str(snapshot_dir.parents[1]))
    from golden.test_golden_master import GOLDEN_KEYS

    for key in GOLDEN_KEYS:
        result = to_jsonable(registry.get(key).runner())
        path = snapshot_dir / f"{key}.json"
        path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path.relative_to(pathlib.Path.cwd())}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
