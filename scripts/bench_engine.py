#!/usr/bin/env python
"""Measure the batched engine's speedups and write BENCH_engine.json.

Workloads (the ISSUEs' acceptance targets):

* ``sobol``     -- the Fig. 8 Sobol workload at 1024 total evaluations
  (N=128, k=6): scalar per-row objective vs the vectorized
  ``ttm_factor_batch_function`` fast path. Target: >= 10x.
* ``sweep``     -- a 20-point capacity sweep x 6 final-chip quantities of
  A11 @ 7 nm CAS: scalar ``chip_agility_score`` loop vs one
  ``cas_over_capacity`` call. Target: >= 5x.
* ``fig14``     -- the full Sec. 7 multi-process study (every production
  node pair x the 1% split grid): the scalar ``run_split_study`` loop
  vs one vectorized ``batch_split`` tensor. Target: >= 20x.
* ``portfolio`` -- a 64-design x 4096-sample Monte-Carlo portfolio
  (shared capacity/queue/demand draws): the per-design per-sample
  scalar loop vs one ``portfolio_ttm`` pass. Target: >= 50x. The
  per-design *batched* loop is also timed (``per_design_batch_seconds``)
  for context, and the fused tensor is checked cell-for-cell against
  that per-design ``batch_ttm`` oracle.
* ``sustained`` -- a steady request stream (32 requests x 16 designs x
  512 samples, fresh supply draws per request): the per-design
  ``batch_ttm`` loop vs the fused ``portfolio_ttm`` stream reusing one
  compiled portfolio. Measures the per-call overhead the fused path
  amortizes at serving-style batch sizes. Target: >= 2x over the
  *batched* per-design loop (not the scalar model).
* ``scenario_sweep`` -- the fused scenario cube: 50 graded stress
  scenarios x 32 designs x 2048 samples through one
  ``scenario_evaluate`` pass vs the looped per-scenario
  ``portfolio_ttm`` + ``portfolio_cas`` + ``portfolio_cost`` oracle
  over ``apply_scenario``-transformed draws. The cube is pinned
  bit-for-bit against the loop (``max_abs_error`` must be exactly 0).
  Target: >= 5x.
* ``serve``     -- 96 concurrent HTTP round-trips through the
  ``repro.serve`` evaluation service (16 client threads, mixed
  designs): coalescing disabled vs the 10 ms coalescing window.
  Also reports client-observed p50/p95 latency and the coalesce
  ratio; the error metric is the fraction of coalesced responses
  not byte-identical to uncoalesced ones (must be exactly 0).
  Target: >= 1.5x.
* ``accuracy``  -- max error of the batched results against the scalar
  or per-design oracle over every workload (must be <= 1e-9).

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [output.json]
    PYTHONPATH=src python scripts/bench_engine.py --check      # CI gate
    PYTHONPATH=src python scripts/bench_engine.py --profile 25
    PYTHONPATH=src python scripts/bench_engine.py --backend compiled \\
        BENCH_engine.compiled.json

``--backend`` selects the engine backend (``numpy``, ``compiled``, or
``compiled:float32``) for the batched hot paths before any measurement;
the scalar baselines are backend-independent. The active backend label
is recorded in the report's ``config`` block.

``--compare-backends`` A/Bs the NumPy and compiled backends on the
tentpole hot paths (``fig14_split_sweep``, ``portfolio_mc``, and the
``scenario_cube``) in the same process: float64 results must be
bit-identical, and with Numba installed the compiled backend must clear
``COMPILED_SPEEDUP_FLOOR`` (5x) on the per-call paths. The
``scenario_cube`` leg gates equality only — its NumPy baseline already
amortizes the pow/supply work across scenarios, so the compiled margin
is structurally thinner there and the ratio is reported, not enforced.
Without Numba the kernels run as plain Python loops, so only the
equality half gates and the timing half is reported, not enforced.
Cross-machine wall times are too noisy to gate on; this same-process
ratio is how CI's numba leg proves the compiled-backend speedup.

``--check`` re-measures every workload and compares its speedup against
the recorded baseline in the output JSON with a generous slack factor
(default 3x), failing only on order-of-magnitude regressions; the
baseline file is left untouched. ``--profile`` additionally runs each
workload's batched hot path under cProfile and prints the top-N entries
so future hot-path hunts don't start from scratch.

Both modes also run the **observability overhead guard**: the per-call
cost of the default (no-tracer) ``repro.obs`` hook is measured in a
tight micro loop, multiplied by the exact number of hooks the
``portfolio_mc`` and ``fig14_split_sweep`` hot paths fire (read from
the kernel-invocation counter), and divided by each workload's CPU
time; the resulting overhead ratio must stay <= 2%
(``OVERHEAD_CEILING``). Both factors of the product are individually
stable, so the guard gates reliably where a direct A/B timing of the
noisy ~10 ms workloads cannot.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time

import numpy as np

from repro.agility.cas import chip_agility_score
from repro.analysis.sweep import capacity_fractions, chip_quantities
from repro.design.library.a11 import (
    A11_TOTAL_TRANSISTORS,
    A11_UNIQUE_TRANSISTORS,
    a11,
)
from repro.cost.model import CostModel
from repro.design.library.ariane import ariane_manycore
from repro.design.library.raven import raven_multicore
from repro.engine.batch import batch_ttm, cas_over_capacity
from repro.engine.batch_split import batch_split
from repro.engine.compiled import (
    backend_label,
    numba_available,
    parse_backend_spec,
    set_backend,
    use_backend,
)
from repro.engine.invariants import clear_invariant_cache
from repro.engine.portfolio import portfolio_cas, portfolio_cost, portfolio_ttm
from repro.engine.scenario import apply_scenario, scenario_evaluate
from repro.engine.sobol_adapter import ttm_factor_batch_function
from repro.design.block import Block
from repro.design.chip import ChipDesign
from repro.design.die import Die
from repro.market.conditions import MarketConditions
from repro.montecarlo.stress import graded_stress_scenarios
from repro.multiprocess.optimizer import run_split_study
from repro.sensitivity.sobol import sobol_indices
from repro.sensitivity.ttm_factors import ttm_factor_function, ttm_factors
from repro.ttm.model import TTMModel

PROCESS = "7nm"
N_CHIPS = 1e7
BASE_SAMPLES = 128  # 128 * (6 + 2) = 1024 evaluations
REPEATS = 5

#: The portfolio Monte-Carlo workload shape (the ISSUE's 64 x 4096).
PORTFOLIO_DESIGNS = 64
PORTFOLIO_SAMPLES = 4096
PORTFOLIO_SEED = 20230613

#: The fused scenario-cube workload: 50 stress scenarios (baseline +
#: 7 families x 7 graded intensities) x 32 multi-die chiplet candidates
#: x 2048 correlated supply samples, one (K, D, S) pass vs the looped
#: per-scenario portfolio oracle.
SCENARIO_DESIGNS = 32
SCENARIO_SAMPLES = 2048
SCENARIO_SEED = 20230915
#: Fine severity scan for the supply-side families (capacity, queue,
#: wafer rate) and the library's canonical quarter steps for the
#: demand/defect families: 1 baseline + 3 x 11 + 4 x 4 = 50 scenarios.
SCENARIO_INTENSITIES = tuple((i + 1) / 11 for i in range(11))
SCENARIO_DEMAND_INTENSITIES = (0.25, 0.5, 0.75, 1.0)
SCENARIO_NODES = ("65nm", "40nm", "28nm", "14nm", "7nm", "5nm")

#: The sustained-throughput stream: many smallish requests against one
#: compiled portfolio (serving-style, overhead-bound sizes).
SUSTAINED_DESIGNS = 16
SUSTAINED_SAMPLES = 512
SUSTAINED_REQUESTS = 32
SUSTAINED_SEED = 20230807

#: The serve_roundtrip workload: concurrent HTTP requests against an
#: in-process evaluation server, coalesced vs uncoalesced.
SERVE_REQUESTS = 96
SERVE_THREADS = 16
SERVE_WINDOW_MS = 10.0
SERVE_REPEATS = 3

#: The serve_scaling workload: burst throughput through the sharded
#: server at 1, 2, and 4 workers (see bench_serve_scaling for the
#: single-core aggregation mode).
SCALING_WORKERS = (1, 2, 4)
SCALING_REQUESTS = 96
SCALING_SHARD_REQUESTS = 48
SCALING_THREADS = 16
SCALING_WINDOW_MS = 5.0
SCALING_REPEATS = 3

#: Error ceiling every workload must satisfy (scalar/oracle agreement).
ERROR_CEILING = 1e-9

#: Default slack factor for ``--check`` (regression = worse than
#: baseline_speedup / slack).
CHECK_SLACK = 3.0

#: Instrumented / disabled wall-time ratio the obs hooks must stay under.
OVERHEAD_CEILING = 1.02

#: Iterations for the per-hook cost micro-measurement.
OVERHEAD_PROBE_ITERATIONS = 200_000

#: Workload timing repeats for the overhead guard denominator.
OVERHEAD_REPEATS = 5

#: Compiled-over-NumPy speedup the tentpole hot paths must clear when
#: Numba is installed (``--compare-backends``).
COMPILED_SPEEDUP_FLOOR = 5.0


def best_of(repeats: int, call) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def bench_sobol(model: TTMModel) -> dict:
    factors = ttm_factors(
        PROCESS, A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS
    )
    scalar_fn = ttm_factor_function(PROCESS, N_CHIPS)
    batch_fn = ttm_factor_batch_function(PROCESS, N_CHIPS)

    scalar = sobol_indices(scalar_fn, factors, base_samples=BASE_SAMPLES)
    batched = sobol_indices(
        batch_fn, factors, base_samples=BASE_SAMPLES, vectorized=True
    )
    error = max(
        abs(batched.raw_total_effect[name] - value)
        / max(abs(value), 1e-300)
        for name, value in scalar.raw_total_effect.items()
    )
    scalar_time = best_of(
        REPEATS,
        lambda: sobol_indices(scalar_fn, factors, base_samples=BASE_SAMPLES),
    )
    batch_time = best_of(
        REPEATS,
        lambda: sobol_indices(
            batch_fn, factors, base_samples=BASE_SAMPLES, vectorized=True
        ),
    )
    return {
        "evaluations": scalar.evaluations,
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "speedup": scalar_time / batch_time,
        "max_relative_error": error,
        "target_speedup": 10.0,
    }


def bench_sweep(model: TTMModel) -> dict:
    design = a11(PROCESS)
    fractions = capacity_fractions(0.05, 1.0, 20)
    quantities = chip_quantities()
    grid = np.asarray(quantities).reshape(-1, 1)

    def scalar_sweep():
        return [
            [
                chip_agility_score(
                    model.at_capacity(fraction), design, n
                ).normalized
                for fraction in fractions
            ]
            for n in quantities
        ]

    def batched_sweep():
        return cas_over_capacity(model, design, grid, fractions)

    scalar = np.asarray(scalar_sweep())
    batched = np.asarray(batched_sweep())
    error = float(np.max(np.abs(batched - scalar) / np.abs(scalar)))

    clear_invariant_cache()
    cold_time = best_of(1, batched_sweep)  # includes invariant derivation
    scalar_time = best_of(REPEATS, scalar_sweep)
    batch_time = best_of(REPEATS, batched_sweep)
    return {
        "points": int(grid.size * len(fractions)),
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "batched_cold_seconds": cold_time,
        "speedup": scalar_time / batch_time,
        "max_relative_error": error,
        "target_speedup": 5.0,
    }


def bench_split_sweep(model: TTMModel) -> dict:
    cost_model = CostModel.nominal()
    processes = [
        node.name for node in model.foundry.technology.production_nodes()
    ]
    grid = tuple(s / 100.0 for s in range(1, 101))
    n_chips = 1e9
    # Tensor rows in the unordered-pair order run_split_study uses.
    pairs = [
        (primary, secondary)
        for i, secondary in enumerate(processes)
        for primary in processes[i:]
    ]

    def scalar_study():
        return run_split_study(
            raven_multicore,
            processes,
            model,
            cost_model,
            n_chips,
            split_grid=grid,
            engine="scalar",
        )

    def batched_study():
        return batch_split(
            raven_multicore, pairs, model, cost_model, n_chips, split_grid=grid
        )

    scalar = scalar_study()
    batched = batched_study()
    error = 0.0
    for index, key in enumerate(pairs):
        oracle = scalar.pairs[key].best
        best = batched.best_evaluation(index)
        for attr in ("split", "ttm_weeks", "cost_usd", "cas"):
            expected = getattr(oracle, attr)
            error = max(
                error,
                abs(getattr(best, attr) - expected)
                / max(abs(expected), 1e-300),
            )

    clear_invariant_cache()
    cold_time = best_of(1, batched_study)  # includes the design ports
    scalar_time = best_of(1, scalar_study)  # ~2 s/run; one timing pass
    batch_time = best_of(REPEATS, batched_study)
    return {
        "pairs": len(pairs),
        "splits": len(grid),
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "batched_cold_seconds": cold_time,
        "speedup": scalar_time / batch_time,
        "max_relative_error": error,
        "target_speedup": 20.0,
    }


def portfolio_workload(
    n_designs: int = PORTFOLIO_DESIGNS,
    n_samples: int = PORTFOLIO_SAMPLES,
    seed: int = PORTFOLIO_SEED,
):
    """The (designs, capacity, queue, demand) tuple of the MC workload.

    64 Ariane many-core candidates (4 nodes x 4 core counts x 4 L1
    sizes) under shared supply draws — one capacity fraction, queue
    quote, and demand per sample, common across designs (CRN).
    """
    processes = ("40nm", "28nm", "14nm", "7nm")
    cores = (4, 8, 16, 32)
    caches = (16, 32, 64, 128)
    designs = [
        ariane_manycore(process, cores=n_cores, icache_kb=icache)
        for process in processes
        for n_cores in cores
        for icache in caches
    ][:n_designs]
    rng = np.random.default_rng(seed)
    capacity = rng.uniform(0.2, 1.0, n_samples)
    queue_weeks = rng.uniform(0.0, 20.0, n_samples)
    demand = rng.uniform(1e6, 5e7, n_samples)
    return designs, capacity, queue_weeks, demand


def bench_portfolio_mc(model: TTMModel) -> dict:
    designs, capacity, queue_weeks, demand = portfolio_workload()
    n_samples = len(demand)

    def fused():
        return portfolio_ttm(
            model, designs, demand, capacity=capacity, queue_weeks=queue_weeks
        )

    def per_design_batch_loop():
        return [
            batch_ttm(
                model,
                design,
                demand,
                capacity=capacity,
                queue_weeks=queue_weeks,
            ).total_weeks
            for design in designs
        ]

    # The status-quo path at the multi-design call sites: a Python loop
    # over designs, each sample evaluated through the scalar model. The
    # per-sample stressed models are hoisted out of the design loop,
    # which is *generous* to the baseline (the real call sites rebuild
    # them per design), so the reported speedup is conservative.
    def scalar_loop():
        stressed = [
            model.with_foundry(
                model.foundry.with_conditions(
                    MarketConditions.nominal()
                    .with_global_capacity(float(capacity[j]))
                    .with_global_queue(float(queue_weeks[j]))
                )
            )
            for j in range(n_samples)
        ]
        return [
            [
                sample_model.total_weeks(design, float(demand[j]))
                for j, sample_model in enumerate(stressed)
            ]
            for design in designs
        ]

    fused_matrix = fused().total_weeks
    oracle_rows = per_design_batch_loop()
    error = float(
        max(
            np.max(np.abs(fused_matrix[i] - row))
            for i, row in enumerate(oracle_rows)
        )
    )

    clear_invariant_cache()
    cold_time = best_of(1, fused)  # includes the 64-design compile
    scalar_time = best_of(1, scalar_loop)  # ~260k scalar evals; one pass
    loop_time = best_of(REPEATS, per_design_batch_loop)
    batch_time = best_of(REPEATS, fused)
    return {
        "designs": len(designs),
        "samples": n_samples,
        "scalar_seconds": scalar_time,
        "per_design_batch_seconds": loop_time,
        "batched_seconds": batch_time,
        "batched_cold_seconds": cold_time,
        "speedup": scalar_time / batch_time,
        "max_abs_error": error,
        "target_speedup": 50.0,
    }


def scenario_portfolio_workload(
    n_designs: int = SCENARIO_DESIGNS,
    n_samples: int = SCENARIO_SAMPLES,
    seed: int = SCENARIO_SEED,
):
    """Chiplet candidates + shared supply draws for the scenario cube.

    Each candidate spans 3-6 production nodes (heterogeneous multi-die
    packages), so the per-node ``capacity_scale`` scenarios exercise the
    node-mapping path, not just the global multipliers. Draws are CRN:
    one capacity/queue/defect/wafer-rate/demand vector shared by every
    (scenario, design) cell.
    """
    designs = []
    for i in range(n_designs):
        nodes = SCENARIO_NODES[i % 3 : i % 3 + 3 + (i % 4)]
        dies = tuple(
            Die(
                name=f"sc{i}-die{j}",
                process=node,
                blocks=(
                    Block(
                        name=f"sc{i}-b{j}",
                        transistors=(2e9 + i * 1e8) / len(nodes),
                        instances=4,
                        unique_transistors=(2e8 + i * 5e6) / len(nodes),
                    ),
                ),
                count=1 + (j % 2),
                area_mm2=80.0 + 5.0 * j,
            )
            for j, node in enumerate(nodes)
        )
        designs.append(ChipDesign(name=f"chiplet-{i:02d}", dies=dies))
    rng = np.random.default_rng(seed)
    demand = rng.uniform(1e6, 5e7, n_samples)
    capacity = rng.uniform(0.2, 1.0, n_samples)
    queue_weeks = rng.uniform(0.0, 20.0, n_samples)
    d0_scale = rng.uniform(0.8, 1.2, n_samples)
    wafer_rate_scale = rng.uniform(0.85, 1.15, n_samples)
    return designs, demand, capacity, queue_weeks, d0_scale, wafer_rate_scale


def bench_scenario_sweep(model: TTMModel) -> dict:
    """Fused (scenarios x designs x samples) cube vs the looped oracle.

    The baseline is the strongest competitor, not a strawman: one
    *batched* ``portfolio_ttm`` + ``portfolio_cas`` + ``portfolio_cost``
    pass per scenario over ``apply_scenario``-transformed draws. The
    fused ``scenario_evaluate`` wins by sharing work *across* scenarios
    (one supply resolve + baseline pass per demand group, cached yield
    powers, prefix/suffix LOO-max scans), and the cube is pinned
    bit-for-bit against the loop: ``max_abs_error`` must be exactly 0.
    """
    (
        designs,
        demand,
        capacity,
        queue_weeks,
        d0_scale,
        wafer_rate_scale,
    ) = scenario_portfolio_workload()
    cost_model = CostModel.nominal()
    scenario_set = graded_stress_scenarios(
        SCENARIO_INTENSITIES, demand_intensities=SCENARIO_DEMAND_INTENSITIES
    )
    nodes = tuple(
        dict.fromkeys(p for design in designs for p in design.processes)
    )
    n_designs, n_samples = len(designs), demand.size
    shape = (scenario_set.n_scenarios, n_designs, n_samples)

    def looped():
        ttm = np.empty(shape)
        cas = np.empty(shape)
        cost = np.empty(shape)
        for k in range(scenario_set.n_scenarios):
            kw = apply_scenario(
                scenario_set,
                k,
                nodes=nodes,
                conditions=model.foundry.conditions,
                n_chips=demand,
                capacity=capacity,
                queue_weeks=queue_weeks,
                d0_scale=d0_scale,
                wafer_rate_scale=wafer_rate_scale,
            )
            supply = {
                key: kw[key]
                for key in (
                    "capacity",
                    "queue_weeks",
                    "d0_scale",
                    "wafer_rate_scale",
                )
            }
            ttm[k] = np.broadcast_to(
                portfolio_ttm(
                    model, designs, kw["n_chips"], **supply
                ).total_weeks,
                shape[1:],
            )
            cas[k] = np.broadcast_to(
                portfolio_cas(
                    model, designs, kw["n_chips"], **supply
                ).cas,
                shape[1:],
            )
            cost[k] = np.broadcast_to(
                portfolio_cost(
                    cost_model,
                    designs,
                    kw["n_chips"],
                    d0_scale=kw["d0_scale"],
                    engineers=model.engineers,
                ).total_usd,
                shape[1:],
            )
        return ttm, cas, cost

    def fused():
        return scenario_evaluate(
            model,
            cost_model,
            designs,
            demand,
            scenario_set,
            capacity=capacity,
            queue_weeks=queue_weeks,
            d0_scale=d0_scale,
            wafer_rate_scale=wafer_rate_scale,
        )

    oracle_ttm, oracle_cas, oracle_cost = looped()
    cube = fused()
    error = float(
        max(
            np.max(np.abs(cube.ttm.total_weeks - oracle_ttm)),
            np.max(np.abs(cube.cas.cas - oracle_cas)),
            np.max(np.abs(cube.cost.total_usd - oracle_cost)),
        )
    )

    scalar_time = best_of(2, looped)
    batch_time = best_of(REPEATS, fused)
    return {
        "scenarios": scenario_set.n_scenarios,
        "designs": n_designs,
        "samples": n_samples,
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "speedup": scalar_time / batch_time,
        "max_abs_error": error,
        "target_speedup": 5.0,
    }


def bench_sustained_throughput(model: TTMModel) -> dict:
    """A steady request stream against one compiled portfolio.

    Unlike ``portfolio_mc`` (one huge fused pass, where the per-design
    batched loop is already near-optimal), this workload is
    overhead-bound: 32 independent requests of 16 designs x 512 samples
    each. The fused path pays one compiled-portfolio lookup and one
    broadcasted kernel per request; the per-design loop pays 16
    ``batch_ttm`` dispatches (invariant lookup, validation, result
    assembly) per request. The speedup is therefore the engine's
    *sustained* per-call efficiency, not its asymptotic FLOP rate, and
    the target is deliberately modest.
    """
    designs, _, _, _ = portfolio_workload(n_designs=SUSTAINED_DESIGNS)
    rng = np.random.default_rng(SUSTAINED_SEED)
    requests = [
        (
            rng.uniform(0.2, 1.0, SUSTAINED_SAMPLES),
            rng.uniform(0.0, 20.0, SUSTAINED_SAMPLES),
            rng.uniform(1e6, 5e7, SUSTAINED_SAMPLES),
        )
        for _ in range(SUSTAINED_REQUESTS)
    ]

    def fused_stream():
        return [
            portfolio_ttm(
                model,
                designs,
                demand,
                capacity=capacity,
                queue_weeks=queue_weeks,
            ).total_weeks
            for capacity, queue_weeks, demand in requests
        ]

    def per_design_stream():
        return [
            [
                batch_ttm(
                    model,
                    design,
                    demand,
                    capacity=capacity,
                    queue_weeks=queue_weeks,
                ).total_weeks
                for design in designs
            ]
            for capacity, queue_weeks, demand in requests
        ]

    fused_matrices = fused_stream()
    oracle_rows = per_design_stream()
    error = float(
        max(
            np.max(np.abs(matrix[i] - row))
            for matrix, rows in zip(fused_matrices, oracle_rows)
            for i, row in enumerate(rows)
        )
    )

    clear_invariant_cache()
    cold_time = best_of(1, fused_stream)  # includes the portfolio compile
    loop_time = best_of(REPEATS, per_design_stream)
    batch_time = best_of(REPEATS, fused_stream)
    return {
        "designs": len(designs),
        "samples": SUSTAINED_SAMPLES,
        "requests": SUSTAINED_REQUESTS,
        "scalar_seconds": loop_time,  # baseline = per-design batch loop
        "batched_seconds": batch_time,
        "batched_cold_seconds": cold_time,
        "speedup": loop_time / batch_time,
        "max_abs_error": error,
        "target_speedup": 2.0,
    }


def bench_serve_roundtrip(model: TTMModel) -> dict:
    """HTTP round-trips through repro.serve, coalesced vs uncoalesced.

    Boots two in-process servers: a baseline with coalescing disabled
    (window 0, max batch 1 — every request is its own engine dispatch)
    and the coalescing server (10 ms window). The same 96-request
    mixed-design burst is driven through both with 16 client threads
    over real sockets; the reported speedup is wall time of the burst,
    so it prices the whole service (HTTP parse, batcher, engine,
    canonical JSON) rather than the engine alone. ``max_abs_error`` is
    the fraction of coalesced responses that are NOT byte-identical to
    the uncoalesced ones — the determinism contract makes it exactly
    0.0. Also reports client-observed p50/p95 latency on the coalesced
    server and the measured coalesce ratio (requests per fused batch).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import ServeClient, ServerConfig, ServerThread

    bodies = [
        {"design": "a11"},
        {"design": "zen2"},
        {"design": "raven"},
        {"design": {"library": "a11", "process": "28nm"}},
    ]
    stream = [bodies[i % len(bodies)] for i in range(SERVE_REQUESTS)]

    def drive(client):
        latencies = []

        def call(body):
            start = time.perf_counter()
            response = client.post("/evaluate", body)
            latencies.append(time.perf_counter() - start)
            assert response.status == 200, response.body
            return response.body

        with ThreadPoolExecutor(max_workers=SERVE_THREADS) as pool:
            responses = list(pool.map(call, stream))
        return responses, latencies

    def timed_burst(client):
        best, responses, latencies = float("inf"), None, None
        for _ in range(SERVE_REPEATS):
            start = time.perf_counter()
            responses, latencies = drive(client)
            best = min(best, time.perf_counter() - start)
        return best, responses, latencies

    with ServerThread(
        ServerConfig(port=0, batch_window_ms=0.0, max_batch=1)
    ) as solo:
        client = ServeClient(solo.host, solo.port)
        drive(client)  # warm the invariant caches and thread pools
        solo_seconds, solo_bodies, _ = timed_burst(client)

    with ServerThread(
        ServerConfig(
            port=0, batch_window_ms=SERVE_WINDOW_MS, max_batch=SERVE_THREADS
        )
    ) as fused:
        client = ServeClient(fused.host, fused.port)
        drive(client)
        fused_seconds, fused_bodies, latencies = timed_burst(client)
        stats = fused.server.batcher.stats()

    mismatches = sum(
        1 for a, b in zip(solo_bodies, fused_bodies) if a != b
    )
    ordered = sorted(latencies)
    return {
        "requests": SERVE_REQUESTS,
        "client_threads": SERVE_THREADS,
        "batch_window_ms": SERVE_WINDOW_MS,
        "scalar_seconds": solo_seconds,  # baseline = coalescing off
        "batched_seconds": fused_seconds,
        "speedup": solo_seconds / fused_seconds,
        "p50_ms": ordered[len(ordered) // 2] * 1e3,
        "p95_ms": ordered[int(len(ordered) * 0.95)] * 1e3,
        "coalesce_ratio": stats["batched_requests"] / stats["batches"],
        "max_abs_error": mismatches / float(SERVE_REQUESTS),
        "target_speedup": 1.5,
    }


def bench_serve_scaling(model: TTMModel) -> dict:
    """Burst throughput through the sharded server at 1/2/4 workers.

    The baseline is today's single-process server; the 2- and 4-worker
    points boot the full prefork shard (parent router + spawned worker
    processes + shm-published warm caches) and drive the same
    mixed-group burst through the public port. Two measurement modes,
    recorded in the entry:

    * ``direct`` — when the machine has at least as many cores as
      workers, the burst is timed end to end and the throughput is
      what the wall clock says.
    * ``per_shard_aggregate`` — on smaller machines N workers
      timeshare the cores and a direct burst measures scheduler churn,
      not sharding. Instead the burst is filtered to the group keys
      that rendezvous-route to ONE worker (computed with the real
      router hash), that shard's rate is measured in isolation, and
      the reported throughput is N x the shard rate — the standard
      single-shard extrapolation, honest because workers share
      nothing on the request path (separate processes, read-only shm).

    Whatever the mode, the byte-identity and shm-hygiene checks always
    run directly: every response routed through the 4-worker shard
    must equal the single-process response byte for byte
    (``max_abs_error`` is the mismatch fraction), and stopping each
    shard must leave /dev/shm exactly as it was (``leaked_segments``).
    """
    import glob
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import (
        ServeClient,
        ServerConfig,
        ServerThread,
        ShardConfig,
        ShardThread,
        rendezvous_worker,
        routing_key,
    )

    # Eight bodies across four knob shapes: four distinct routing keys,
    # so a shard always has cross-worker traffic, while designs inside
    # a shape still coalesce.
    bodies = [
        {"design": "a11"},
        {"design": "zen2"},
        {"design": "a11", "queue_weeks": 2.0},
        {"design": "raven", "queue_weeks": 3.0},
        {"design": "a11", "d0_scale": 1.1},
        {"design": "zen2", "d0_scale": 0.9},
        {"design": "a11", "wafer_rate_scale": 1.0},
        {"design": "raven", "wafer_rate_scale": 1.2},
    ]
    worker_config = ServerConfig(
        port=0, batch_window_ms=SCALING_WINDOW_MS, max_batch=SCALING_THREADS
    )

    def drive(client, stream):
        def call(body):
            response = client.post("/evaluate", body)
            assert response.status == 200, response.body
            return response.body

        with ThreadPoolExecutor(max_workers=SCALING_THREADS) as pool:
            return list(pool.map(call, stream))

    def best_rate(client, stream):
        best = float("inf")
        for _ in range(SCALING_REPEATS):
            start = time.perf_counter()
            drive(client, stream)
            best = min(best, time.perf_counter() - start)
        return len(stream) / best

    full_stream = [
        bodies[i % len(bodies)] for i in range(SCALING_REQUESTS)
    ]
    cores = os.cpu_count() or 1
    segments_before = set(glob.glob("/dev/shm/repro_shm_*"))

    with ServerThread(worker_config) as solo:
        client = ServeClient(solo.host, solo.port)
        drive(client, full_stream)  # warm caches and thread pools
        solo_bodies = {
            json.dumps(body, sort_keys=True): client.post(
                "/evaluate", body
            ).body
            for body in bodies
        }
        throughput = {1: best_rate(client, full_stream)}

    mode = (
        "direct"
        if cores >= max(SCALING_WORKERS)
        else "per_shard_aggregate"
    )
    mismatches = 0
    for count in SCALING_WORKERS[1:]:
        with ShardThread(
            ShardConfig(workers=count, server=worker_config)
        ) as shard:
            client = ServeClient(shard.host, shard.port)
            # Byte-identity is always checked on the full mixed burst,
            # routed for real across all workers.
            routed = drive(client, full_stream)
            if count == max(SCALING_WORKERS):
                mismatches = sum(
                    1
                    for body, payload in zip(full_stream, routed)
                    if payload
                    != solo_bodies[json.dumps(body, sort_keys=True)]
                )
            if mode == "direct":
                throughput[count] = best_rate(client, full_stream)
            else:
                slots = list(range(count))
                target = rendezvous_worker(
                    routing_key(
                        "evaluate", json.dumps(bodies[0]).encode()
                    ),
                    slots,
                )
                shard_bodies = [
                    body
                    for body in bodies
                    if rendezvous_worker(
                        routing_key(
                            "evaluate", json.dumps(body).encode()
                        ),
                        slots,
                    )
                    == target
                ]
                shard_stream = [
                    shard_bodies[i % len(shard_bodies)]
                    for i in range(SCALING_SHARD_REQUESTS)
                ]
                throughput[count] = count * best_rate(
                    client, shard_stream
                )
    leaked = (
        set(glob.glob("/dev/shm/repro_shm_*")) - segments_before
    )

    top = max(SCALING_WORKERS)
    return {
        "requests": SCALING_REQUESTS,
        "client_threads": SCALING_THREADS,
        "batch_window_ms": SCALING_WINDOW_MS,
        "mode": mode,
        "cpu_count": cores,
        "throughput_rps": {
            str(count): throughput[count] for count in SCALING_WORKERS
        },
        "scalar_seconds": SCALING_REQUESTS / throughput[1],
        "batched_seconds": SCALING_REQUESTS / throughput[top],
        "speedup": throughput[top] / throughput[1],
        "max_abs_error": mismatches / float(SCALING_REQUESTS),
        "leaked_segments": len(leaked),
        "target_speedup": 1.8,
    }


WORKLOADS = {
    "sobol_1024_evals": bench_sobol,
    "cas_sweep_20x6": bench_sweep,
    "fig14_split_sweep": bench_split_sweep,
    "portfolio_mc": bench_portfolio_mc,
    "scenario_sweep": bench_scenario_sweep,
    "sustained_throughput": bench_sustained_throughput,
    "serve_roundtrip": bench_serve_roundtrip,
    "serve_scaling": bench_serve_scaling,
}


def measure_hook_cost_ns() -> float:
    """Per-call CPU cost of the ``observed_kernel`` no-tracer fast path.

    Drives a decorated trivial function in a tight loop with the hooks
    live and again under ``repro.obs.instrument.disabled()``; the
    difference, per iteration, is the cost one instrumented kernel call
    adds. Over 200k iterations of CPU time this resolves to tens of
    nanoseconds, where a direct A/B timing of a ~10 ms workload swings
    by +-10% run to run on shared hardware.
    """
    from repro.obs.instrument import disabled, observed_kernel

    payload = np.zeros(4)

    @observed_kernel("obs_overhead_probe", lambda r: r.size)
    def probe():
        return payload

    def loop_seconds() -> float:
        start = time.process_time()
        for _ in range(OVERHEAD_PROBE_ITERATIONS):
            probe()
        return time.process_time() - start

    probe()  # warm the wrapper (first call pays attribute resolution)
    instrumented = loop_seconds()
    with disabled():
        bare = loop_seconds()
    return max(instrumented - bare, 0.0) / OVERHEAD_PROBE_ITERATIONS * 1e9


def bench_obs_overhead(model: TTMModel) -> dict:
    """Deterministic overhead bound for the default obs hooks.

    The CPU a workload spends on instrumentation is (hooks fired) x
    (cost per hook). Both factors are measured where they are stable:
    the per-hook cost in a 200k-iteration micro loop
    (:func:`measure_hook_cost_ns`) and the hook count exactly, from the
    kernel-invocation counter's delta across one workload run (the
    invariant-cache counters fire in both modes, so they cancel and are
    excluded). Dividing by the workload's best-of CPU time yields the
    ratio the ceiling gates. A direct instrumented-vs-disabled timing
    of the full workloads was tried first and rejected: their intrinsic
    run-to-run CPU variance (~+-10% for these ~10 ms paths) cannot
    resolve a 2% ceiling, while this product of two stable measurements
    can.
    """
    from repro.obs.instrument import KERNEL_INVOCATIONS

    designs, capacity, queue_weeks, demand = portfolio_workload()
    cost_model = CostModel.nominal()
    processes = [
        node.name for node in model.foundry.technology.production_nodes()
    ]
    pairs = [
        (primary, secondary)
        for i, secondary in enumerate(processes)
        for primary in processes[i:]
    ]
    split_grid = tuple(s / 100.0 for s in range(1, 101))
    hot_paths = {
        "portfolio_mc": lambda: portfolio_ttm(
            model, designs, demand, capacity=capacity, queue_weeks=queue_weeks
        ),
        "fig14_split_sweep": lambda: batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            1e9,
            split_grid=split_grid,
        ),
    }
    hook_ns = measure_hook_cost_ns()

    def invocation_total() -> float:
        return sum(KERNEL_INVOCATIONS.series().values())

    out = {}
    for name, call in hot_paths.items():
        call()  # warm the invariant cache; measure the steady state
        before = invocation_total()
        call()
        hooks_fired = invocation_total() - before
        workload_seconds = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            start = time.process_time()
            call()
            workload_seconds = min(
                workload_seconds, time.process_time() - start
            )
        overhead_seconds = hooks_fired * hook_ns / 1e9
        out[name] = {
            "hook_cost_ns": hook_ns,
            "hooks_fired": hooks_fired,
            "workload_cpu_seconds": workload_seconds,
            "overhead_ratio": 1.0 + overhead_seconds / workload_seconds,
            "ceiling": OVERHEAD_CEILING,
        }
    return out


def compare_backends(model: TTMModel) -> bool:
    """Same-process NumPy-vs-compiled A/B on the tentpole hot paths.

    Gates two things: float64 bit-equality (always) and the
    :data:`COMPILED_SPEEDUP_FLOOR` wall-time ratio (only when Numba is
    installed — without it the compiled kernels are plain Python loops
    and the ratio is informational).
    """
    designs, capacity, queue_weeks, demand = portfolio_workload()
    cost_model = CostModel.nominal()
    processes = [
        node.name for node in model.foundry.technology.production_nodes()
    ]
    pairs = [
        (primary, secondary)
        for i, secondary in enumerate(processes)
        for primary in processes[i:]
    ]
    split_grid = tuple(s / 100.0 for s in range(1, 101))
    (
        scen_designs,
        scen_demand,
        scen_capacity,
        scen_queue,
        scen_d0,
        scen_wafer_rate,
    ) = scenario_portfolio_workload(n_designs=12, n_samples=256)
    scenario_set = graded_stress_scenarios((0.5, 1.0), (1.0,))
    hot_paths = {
        "fig14_split_sweep": lambda: batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            1e9,
            split_grid=split_grid,
        ),
        "portfolio_mc": lambda: portfolio_ttm(
            model, designs, demand, capacity=capacity, queue_weeks=queue_weeks
        ),
        "scenario_cube": lambda: scenario_evaluate(
            model,
            cost_model,
            scen_designs,
            scen_demand,
            scenario_set,
            capacity=scen_capacity,
            queue_weeks=scen_queue,
            d0_scale=scen_d0,
            wafer_rate_scale=scen_wafer_rate,
        ),
    }
    comparable = {
        "fig14_split_sweep": lambda r: (
            r.ttm_weeks,
            r.cost_usd,
            r.cas,
            r.line_weeks_primary,
        ),
        "portfolio_mc": lambda r: (
            r.total_weeks,
            r.fabrication_weeks,
            r.packaging_weeks,
        ),
        "scenario_cube": lambda r: (
            r.ttm.total_weeks,
            r.ttm.fabrication_weeks,
            r.cas.cas,
            r.cost.total_usd,
        ),
    }
    # The scenario cube's NumPy path already shares the pow/supply work
    # across scenarios, so the compiled kernels have structurally less
    # redundancy to remove there: the leg gates bit-equality only and
    # its ratio is informational.
    timing_gated = {"fig14_split_sweep", "portfolio_mc"}
    gate_timing = numba_available()
    ok = True
    for name, call in hot_paths.items():
        with use_backend("numpy"):
            reference = call()
            numpy_time = best_of(REPEATS, call)
        with use_backend("compiled"):
            call()  # warm-up: pays any JIT compile outside the timing
            compiled = call()
            compiled_time = best_of(REPEATS, call)
        equal = all(
            np.array_equal(lhs, rhs, equal_nan=True)
            for lhs, rhs in zip(
                comparable[name](reference), comparable[name](compiled)
            )
        )
        ratio = numpy_time / compiled_time
        gated = gate_timing and name in timing_gated
        met = equal and (not gated or ratio >= COMPILED_SPEEDUP_FLOOR)
        ok = ok and met
        if gated:
            floor = f"floor {COMPILED_SPEEDUP_FLOOR:.0f}x"
        elif gate_timing:
            floor = "floor waived: equality-only leg"
        else:
            floor = "floor waived: no numba, pure-Python kernels"
        print(
            f"compiled vs numpy {name}: {ratio:.1f}x ({floor}), "
            f"float64 {'bit-equal' if equal else 'MISMATCH'} "
            f"[{'ok' if met else 'FAILED'}]"
        )
    return ok


def check_overhead(report: dict) -> bool:
    """Gate: default instrumentation must cost <= 2% on the hot paths."""
    ok = True
    for name, work in report.get("obs_overhead", {}).items():
        met = work["overhead_ratio"] <= work["ceiling"]
        ok = ok and met
        print(
            f"obs overhead {name}: {(work['overhead_ratio'] - 1) * 100:+.2f}% "
            f"(ceiling {(work['ceiling'] - 1) * 100:.0f}%) "
            f"[{'ok' if met else 'EXCEEDED'}]"
        )
    return ok


def workload_error(work: dict) -> float:
    """The workload's oracle-agreement error, whichever metric it uses."""
    if "max_abs_error" in work:
        return work["max_abs_error"]
    return work["max_relative_error"]


def measure(model: TTMModel) -> dict:
    return {
        "workloads": {
            name: bench(model) for name, bench in WORKLOADS.items()
        },
        "obs_overhead": bench_obs_overhead(model),
        "config": {
            "process": PROCESS,
            "n_chips": N_CHIPS,
            "base_samples": BASE_SAMPLES,
            "repeats": REPEATS,
            "portfolio_designs": PORTFOLIO_DESIGNS,
            "portfolio_samples": PORTFOLIO_SAMPLES,
            "sustained_designs": SUSTAINED_DESIGNS,
            "sustained_samples": SUSTAINED_SAMPLES,
            "sustained_requests": SUSTAINED_REQUESTS,
            "serve_requests": SERVE_REQUESTS,
            "serve_threads": SERVE_THREADS,
            "serve_window_ms": SERVE_WINDOW_MS,
            "scaling_workers": list(SCALING_WORKERS),
            "scaling_requests": SCALING_REQUESTS,
            "scenario_designs": SCENARIO_DESIGNS,
            "scenario_samples": SCENARIO_SAMPLES,
            "scenario_seed": SCENARIO_SEED,
            "backend": backend_label(),
        },
    }


def report_targets(report: dict) -> bool:
    ok = True
    for name, work in report["workloads"].items():
        error = workload_error(work)
        met = (
            work["speedup"] >= work["target_speedup"]
            and error <= ERROR_CEILING
        )
        ok = ok and met
        print(
            f"{name}: {work['speedup']:.1f}x "
            f"(target {work['target_speedup']:.0f}x), "
            f"max err {error:.2e} "
            f"[{'ok' if met else 'MISSED'}]"
        )
    return ok


def check_against_baseline(report: dict, baseline: dict, slack: float) -> bool:
    """Regression gate: measured speedups vs the recorded baseline.

    A workload regresses when its measured speedup drops below
    ``baseline_speedup / slack`` (order-of-magnitude changes only; raw
    wall times are too machine-dependent to gate on) or its oracle
    error exceeds the ceiling. Workloads absent from the baseline are
    held to their design targets instead.
    """
    ok = True
    recorded = baseline.get("workloads", {})
    for name, work in report["workloads"].items():
        error = workload_error(work)
        if name in recorded:
            floor = recorded[name]["speedup"] / slack
            label = f"floor {floor:.1f}x = baseline/{slack:g}"
        else:
            floor = work["target_speedup"]
            label = f"floor {floor:.0f}x = target (no baseline entry)"
        met = work["speedup"] >= floor and error <= ERROR_CEILING
        ok = ok and met
        print(
            f"{name}: {work['speedup']:.1f}x ({label}), "
            f"max err {error:.2e} "
            f"[{'ok' if met else 'REGRESSED'}]"
        )
    return ok


def profile_workloads(model: TTMModel, top_n: int) -> None:
    """cProfile the batched hot path of every workload, print top-N."""
    designs, capacity, queue_weeks, demand = portfolio_workload()
    factors = ttm_factors(
        PROCESS, A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS
    )
    batch_fn = ttm_factor_batch_function(PROCESS, N_CHIPS)
    a11_design = a11(PROCESS)
    fractions = capacity_fractions(0.05, 1.0, 20)
    grid = np.asarray(chip_quantities()).reshape(-1, 1)
    cost_model = CostModel.nominal()
    processes = [
        node.name for node in model.foundry.technology.production_nodes()
    ]
    pairs = [
        (primary, secondary)
        for i, secondary in enumerate(processes)
        for primary in processes[i:]
    ]
    split_grid = tuple(s / 100.0 for s in range(1, 101))
    hot_paths = {
        "sobol_1024_evals": lambda: sobol_indices(
            batch_fn, factors, base_samples=BASE_SAMPLES, vectorized=True
        ),
        "cas_sweep_20x6": lambda: cas_over_capacity(
            model, a11_design, grid, fractions
        ),
        "fig14_split_sweep": lambda: batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            1e9,
            split_grid=split_grid,
        ),
        "portfolio_mc": lambda: portfolio_ttm(
            model, designs, demand, capacity=capacity, queue_weeks=queue_weeks
        ),
    }
    for name, call in hot_paths.items():
        call()  # warm caches so the profile shows the steady state
        profiler = cProfile.Profile()
        profiler.enable()
        call()
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top_n)
        print(f"--- profile: {name} (top {top_n} by cumulative) ---")
        print(stream.getvalue())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Measure batched-engine speedups; write or check "
            "BENCH_engine.json."
        )
    )
    parser.add_argument(
        "output",
        nargs="?",
        default="BENCH_engine.json",
        help="report path (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "compare measured speedups against the recorded baseline "
            "in OUTPUT (with --slack) instead of rewriting it"
        ),
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=CHECK_SLACK,
        help=(
            "allowed speedup degradation factor for --check "
            f"(default: {CHECK_SLACK:g}x)"
        ),
    )
    parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=20,
        default=None,
        metavar="N",
        help="cProfile each workload's batched hot path, print top N",
    )
    parser.add_argument(
        "--backend",
        default="",
        metavar="SPEC",
        help=(
            "engine backend for the batched paths: numpy, compiled, or "
            "compiled:float32 (default: the active backend)"
        ),
    )
    parser.add_argument(
        "--compare-backends",
        action="store_true",
        help=(
            "A/B the NumPy and compiled backends on the tentpole hot "
            "paths (bit-equality always gates; the 5x floor gates only "
            "with numba installed) instead of the full measurement"
        ),
    )
    options = parser.parse_args(argv)

    if options.backend:
        set_backend(*parse_backend_spec(options.backend))
    model = TTMModel.nominal()
    if options.compare_backends:
        return 0 if compare_backends(model) else 1
    if options.profile is not None:
        profile_workloads(model, options.profile)

    report = measure(model)
    if options.check:
        try:
            with open(options.output) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"no baseline at {options.output}; checking targets only")
            baseline = {}
        ok = check_against_baseline(report, baseline, options.slack)
        ok = check_overhead(report) and ok
        return 0 if ok else 1

    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    ok = report_targets(report)
    ok = check_overhead(report) and ok
    print(f"wrote {options.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
