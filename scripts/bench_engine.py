#!/usr/bin/env python
"""Measure the batched engine's speedups and write BENCH_engine.json.

Workloads (the ISSUE's acceptance targets):

* ``sobol``   -- the Fig. 8 Sobol workload at 1024 total evaluations
  (N=128, k=6): scalar per-row objective vs the vectorized
  ``ttm_factor_batch_function`` fast path. Target: >= 10x.
* ``sweep``   -- a 20-point capacity sweep x 6 final-chip quantities of
  A11 @ 7 nm CAS: scalar ``chip_agility_score`` loop vs one
  ``cas_over_capacity`` call. Target: >= 5x.
* ``fig14``   -- the full Sec. 7 multi-process study (every production
  node pair x the 1% split grid): the scalar ``run_split_study`` loop
  vs one vectorized ``batch_split`` tensor. Target: >= 20x.
* ``accuracy``-- max relative error of the batched results against the
  scalar paths over every workload (must be <= 1e-9).

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.agility.cas import chip_agility_score
from repro.analysis.sweep import capacity_fractions, chip_quantities
from repro.design.library.a11 import (
    A11_TOTAL_TRANSISTORS,
    A11_UNIQUE_TRANSISTORS,
    a11,
)
from repro.cost.model import CostModel
from repro.design.library.raven import raven_multicore
from repro.engine.batch import cas_over_capacity
from repro.engine.batch_split import batch_split
from repro.engine.invariants import clear_invariant_cache
from repro.engine.sobol_adapter import ttm_factor_batch_function
from repro.multiprocess.optimizer import run_split_study
from repro.sensitivity.sobol import sobol_indices
from repro.sensitivity.ttm_factors import ttm_factor_function, ttm_factors
from repro.ttm.model import TTMModel

PROCESS = "7nm"
N_CHIPS = 1e7
BASE_SAMPLES = 128  # 128 * (6 + 2) = 1024 evaluations
REPEATS = 5


def best_of(repeats: int, call) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def bench_sobol(model: TTMModel) -> dict:
    factors = ttm_factors(
        PROCESS, A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS
    )
    scalar_fn = ttm_factor_function(PROCESS, N_CHIPS)
    batch_fn = ttm_factor_batch_function(PROCESS, N_CHIPS)

    scalar = sobol_indices(scalar_fn, factors, base_samples=BASE_SAMPLES)
    batched = sobol_indices(
        batch_fn, factors, base_samples=BASE_SAMPLES, vectorized=True
    )
    error = max(
        abs(batched.raw_total_effect[name] - value)
        / max(abs(value), 1e-300)
        for name, value in scalar.raw_total_effect.items()
    )
    scalar_time = best_of(
        REPEATS,
        lambda: sobol_indices(scalar_fn, factors, base_samples=BASE_SAMPLES),
    )
    batch_time = best_of(
        REPEATS,
        lambda: sobol_indices(
            batch_fn, factors, base_samples=BASE_SAMPLES, vectorized=True
        ),
    )
    return {
        "evaluations": scalar.evaluations,
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "speedup": scalar_time / batch_time,
        "max_relative_error": error,
        "target_speedup": 10.0,
    }


def bench_sweep(model: TTMModel) -> dict:
    design = a11(PROCESS)
    fractions = capacity_fractions(0.05, 1.0, 20)
    quantities = chip_quantities()
    grid = np.asarray(quantities).reshape(-1, 1)

    def scalar_sweep():
        return [
            [
                chip_agility_score(
                    model.at_capacity(fraction), design, n
                ).normalized
                for fraction in fractions
            ]
            for n in quantities
        ]

    def batched_sweep():
        return cas_over_capacity(model, design, grid, fractions)

    scalar = np.asarray(scalar_sweep())
    batched = np.asarray(batched_sweep())
    error = float(np.max(np.abs(batched - scalar) / np.abs(scalar)))

    clear_invariant_cache()
    cold_time = best_of(1, batched_sweep)  # includes invariant derivation
    scalar_time = best_of(REPEATS, scalar_sweep)
    batch_time = best_of(REPEATS, batched_sweep)
    return {
        "points": int(grid.size * len(fractions)),
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "batched_cold_seconds": cold_time,
        "speedup": scalar_time / batch_time,
        "max_relative_error": error,
        "target_speedup": 5.0,
    }


def bench_split_sweep(model: TTMModel) -> dict:
    cost_model = CostModel.nominal()
    processes = [
        node.name for node in model.foundry.technology.production_nodes()
    ]
    grid = tuple(s / 100.0 for s in range(1, 101))
    n_chips = 1e9
    # Tensor rows in the unordered-pair order run_split_study uses.
    pairs = [
        (primary, secondary)
        for i, secondary in enumerate(processes)
        for primary in processes[i:]
    ]

    def scalar_study():
        return run_split_study(
            raven_multicore,
            processes,
            model,
            cost_model,
            n_chips,
            split_grid=grid,
            engine="scalar",
        )

    def batched_study():
        return batch_split(
            raven_multicore, pairs, model, cost_model, n_chips, split_grid=grid
        )

    scalar = scalar_study()
    batched = batched_study()
    error = 0.0
    for index, key in enumerate(pairs):
        oracle = scalar.pairs[key].best
        best = batched.best_evaluation(index)
        for attr in ("split", "ttm_weeks", "cost_usd", "cas"):
            expected = getattr(oracle, attr)
            error = max(
                error,
                abs(getattr(best, attr) - expected)
                / max(abs(expected), 1e-300),
            )

    clear_invariant_cache()
    cold_time = best_of(1, batched_study)  # includes the design ports
    scalar_time = best_of(1, scalar_study)  # ~2 s/run; one timing pass
    batch_time = best_of(REPEATS, batched_study)
    return {
        "pairs": len(pairs),
        "splits": len(grid),
        "scalar_seconds": scalar_time,
        "batched_seconds": batch_time,
        "batched_cold_seconds": cold_time,
        "speedup": scalar_time / batch_time,
        "max_relative_error": error,
        "target_speedup": 20.0,
    }


def main(argv) -> int:
    output_path = argv[1] if len(argv) > 1 else "BENCH_engine.json"
    model = TTMModel.nominal()
    report = {
        "workloads": {
            "sobol_1024_evals": bench_sobol(model),
            "cas_sweep_20x6": bench_sweep(model),
            "fig14_split_sweep": bench_split_sweep(model),
        },
        "config": {
            "process": PROCESS,
            "n_chips": N_CHIPS,
            "base_samples": BASE_SAMPLES,
            "repeats": REPEATS,
        },
    }
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    ok = True
    for name, work in report["workloads"].items():
        met = (
            work["speedup"] >= work["target_speedup"]
            and work["max_relative_error"] <= 1e-9
        )
        ok = ok and met
        print(
            f"{name}: {work['speedup']:.1f}x "
            f"(target {work['target_speedup']:.0f}x), "
            f"max rel err {work['max_relative_error']:.2e} "
            f"[{'ok' if met else 'MISSED'}]"
        )
    print(f"wrote {output_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
