"""Tests for the Chip Agility Score (Eq. 8)."""

import pytest

from repro.agility.cas import cas_curve, chip_agility_score, ttm_curve
from repro.design.library.a11 import a11
from repro.design.library.generic import monolithic_design
from repro.design.library.zen2 import zen2, zen2_monolithic
from repro.errors import InvalidParameterError
from repro.market.conditions import MarketConditions
from repro.ttm.model import TTMModel


class TestAnalyticAgreement:
    def test_single_node_matches_closed_form(self, model):
        """For one node with no queue, |dTTM/dmu| = N_W / mu^2 exactly."""
        design = a11("7nm")
        n_chips = 10e6
        result = chip_agility_score(model, design, n_chips)
        wafers = model.wafer_demand(design, n_chips)["7nm"]
        rate = model.foundry.wafer_rate_per_week("7nm")
        assert result.cas == pytest.approx(rate**2 / wafers, rel=1e-3)

    def test_queue_adds_backlog_sensitivity(self, model, db):
        """With a quote, |dTTM/dmu| = (N_ahead + N_W) / mu^2."""
        design = a11("7nm")
        n_chips = 10e6
        conditions = MarketConditions.nominal().with_queue("7nm", 1.0)
        queued = model.with_foundry(model.foundry.with_conditions(conditions))
        result = chip_agility_score(queued, design, n_chips)
        rate = db["7nm"].max_wafer_rate_per_week
        wafers = model.wafer_demand(design, n_chips)["7nm"]
        expected = rate**2 / (wafers + 1.0 * rate)
        assert result.cas == pytest.approx(expected, rel=1e-3)

    def test_queue_strictly_reduces_cas(self, model):
        design = a11("7nm")
        base = chip_agility_score(model, design, 10e6).cas
        conditions = MarketConditions.nominal().with_queue("7nm", 1.0)
        queued = model.with_foundry(model.foundry.with_conditions(conditions))
        assert chip_agility_score(queued, design, 10e6).cas < base


class TestPaperOrdering:
    def test_fig9_ranking_at_full_capacity(self, model):
        """7nm highest; 14nm above 5nm; 40nm lowest (Sec. 6.2)."""
        scores = {
            p: chip_agility_score(model, a11(p), 10e6).cas
            for p in ("40nm", "28nm", "14nm", "7nm", "5nm")
        }
        assert scores["7nm"] == max(scores.values())
        assert scores["14nm"] > scores["5nm"]
        assert scores["40nm"] == min(scores.values())

    def test_chiplets_more_agile_than_monolithic(self, model):
        """Sec. 6.5 / abstract: chiplets beat monolithic equivalents."""
        chiplet = chip_agility_score(model, zen2("7nm", "7nm"), 50e6).cas
        mono = chip_agility_score(model, zen2_monolithic("7nm"), 50e6).cas
        assert chiplet > mono

    def test_mixed_process_most_agile_at_full_capacity(self, model):
        mixed = chip_agility_score(model, zen2(), 50e6).cas
        single = chip_agility_score(model, zen2("7nm", "7nm"), 50e6).cas
        assert mixed > single

    def test_mixed_gain_in_paper_band(self, model):
        """Abstract: mixed-process chiplets 24%-51% more agile."""
        mixed = chip_agility_score(model, zen2(), 50e6).cas
        chiplet = chip_agility_score(model, zen2("7nm", "7nm"), 50e6).cas
        mono = chip_agility_score(model, zen2_monolithic("7nm"), 50e6).cas
        assert 1.1 < mixed / chiplet < 1.6
        assert 1.2 < mixed / mono < 1.8


class TestCurves:
    def test_cas_falls_as_capacity_drops(self, model):
        fractions = (0.25, 0.5, 0.75, 1.0)
        curve = cas_curve(model, a11("7nm"), 10e6, fractions)
        values = [result.cas for _, result in curve]
        assert values == sorted(values)

    def test_ttm_rises_as_capacity_drops(self, model):
        fractions = (0.25, 0.5, 0.75, 1.0)
        curve = ttm_curve(model, a11("7nm"), 10e6, fractions)
        values = [weeks for _, weeks in curve]
        assert values == sorted(values, reverse=True)

    def test_quadratic_capacity_scaling(self, model):
        """CAS ~ (f * mu)^2 / N_W for a single unqueued node."""
        curve = dict(
            (f, r.cas) for f, r in cas_curve(model, a11("7nm"), 10e6, (0.5, 1.0))
        )
        assert curve[1.0] / curve[0.5] == pytest.approx(4.0, rel=0.01)

    def test_zero_fraction_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            cas_curve(model, a11("7nm"), 10e6, (0.0, 1.0))
        with pytest.raises(InvalidParameterError):
            ttm_curve(model, a11("7nm"), 10e6, (0.0, 1.0))


class TestResultType:
    def test_sensitivity_per_node(self, model):
        result = chip_agility_score(model, zen2(), 50e6)
        assert set(result.sensitivity) == {"7nm", "14nm"}
        assert result.dominant_process in {"7nm", "14nm"}

    def test_normalized_unit_scale(self, model):
        result = chip_agility_score(model, a11("7nm"), 10e6)
        assert result.normalized == pytest.approx(result.cas / 1000.0)

    def test_volume_matters(self, model):
        """CAS must be evaluated at a volume: more chips -> less agile."""
        small = chip_agility_score(model, a11("7nm"), 1e6).cas
        large = chip_agility_score(model, a11("7nm"), 100e6).cas
        assert large < small
