"""Tests for the closed-form CAS cross-check."""

import pytest

from repro.agility.analytic import (
    analytic_cas,
    queue_cas_penalty,
    single_node_cas,
)
from repro.agility.cas import chip_agility_score
from repro.design.library.a11 import a11
from repro.design.library.zen2 import zen2
from repro.errors import InvalidParameterError
from repro.market.conditions import MarketConditions


class TestClosedForm:
    def test_formula(self):
        assert single_node_cas(100.0, 500.0) == pytest.approx(20.0)

    def test_backlog_in_denominator(self):
        assert single_node_cas(100.0, 500.0, wafers_ahead=500.0) == (
            pytest.approx(10.0)
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            single_node_cas(0.0, 100.0)
        with pytest.raises(InvalidParameterError):
            single_node_cas(100.0, -1.0)
        with pytest.raises(InvalidParameterError):
            single_node_cas(100.0, 0.0, 0.0)


class TestNumericAgreement:
    @pytest.mark.parametrize("process", ["40nm", "28nm", "14nm", "7nm", "5nm"])
    def test_matches_numeric_cas(self, model, process):
        design = a11(process)
        numeric = chip_agility_score(model, design, 10e6).cas
        closed = analytic_cas(model, design, 10e6)
        assert closed == pytest.approx(numeric, rel=2e-3)

    def test_matches_numeric_under_reduced_capacity(self, model):
        design = a11("7nm")
        swept = model.at_capacity(0.4)
        numeric = chip_agility_score(swept, design, 10e6).cas
        closed = analytic_cas(swept, design, 10e6)
        assert closed == pytest.approx(numeric, rel=2e-3)

    def test_matches_numeric_with_queue(self, model):
        design = a11("7nm")
        conditions = MarketConditions.nominal().with_queue("7nm", 1.0)
        queued = model.with_foundry(model.foundry.with_conditions(conditions))
        numeric = chip_agility_score(queued, design, 10e6).cas
        closed = analytic_cas(queued, design, 10e6)
        assert closed == pytest.approx(numeric, rel=2e-3)

    def test_rejects_multi_node_designs(self, model):
        with pytest.raises(InvalidParameterError):
            analytic_cas(model, zen2(), 10e6)

    def test_explicit_capacity_fraction(self, model):
        design = a11("7nm")
        assert analytic_cas(model, design, 10e6, capacity_fraction=0.5) == (
            pytest.approx(analytic_cas(model.at_capacity(0.5), design, 10e6))
        )


class TestQueuePenalty:
    def test_formula(self):
        assert queue_cas_penalty(1000.0, 1000.0) == pytest.approx(0.5)
        assert queue_cas_penalty(1000.0, 0.0) == 0.0

    def test_explains_fig12_severity(self, model):
        """The measured Fig. 12 one-week drop equals the closed form."""
        design = a11("7nm")
        wafers = model.wafer_demand(design, 10e6)["7nm"]
        rate = model.foundry.technology["7nm"].max_wafer_rate_per_week
        predicted = queue_cas_penalty(wafers, 1.0 * rate)
        base = chip_agility_score(model, design, 10e6).cas
        conditions = MarketConditions.nominal().with_queue("7nm", 1.0)
        queued_model = model.with_foundry(
            model.foundry.with_conditions(conditions)
        )
        measured = 1.0 - chip_agility_score(queued_model, design, 10e6).cas / base
        assert measured == pytest.approx(predicted, rel=1e-2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            queue_cas_penalty(0.0, 10.0)
        with pytest.raises(InvalidParameterError):
            queue_cas_penalty(10.0, -1.0)
