"""Tests for the numeric differentiation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.agility.derivative import central_difference, ttm_rate_sensitivity
from repro.errors import InvalidParameterError


class TestCentralDifference:
    def test_exact_on_linear(self):
        assert central_difference(lambda x: 3.0 * x + 1.0, 5.0, 0.1) == (
            pytest.approx(3.0)
        )

    def test_exact_on_quadratic(self):
        """Central differences are exact for quadratics."""
        assert central_difference(lambda x: x * x, 4.0, 0.5) == pytest.approx(8.0)

    def test_blends_slopes_at_a_kink(self):
        """At a max() kink the estimate is the average of the sides."""
        kinked = lambda x: max(2.0 * x, 10.0)  # noqa: E731
        assert central_difference(kinked, 5.0, 1.0) == pytest.approx(1.0)

    def test_invalid_step_rejected(self):
        with pytest.raises(InvalidParameterError):
            central_difference(lambda x: x, 1.0, 0.0)

    @given(
        slope=st.floats(min_value=-100.0, max_value=100.0),
        at=st.floats(min_value=-10.0, max_value=10.0),
    )
    def test_recovers_arbitrary_slopes(self, slope, at):
        estimate = central_difference(lambda x: slope * x, at, 0.01)
        assert estimate == pytest.approx(slope, abs=1e-6)


class TestRateSensitivity:
    def test_inverse_rate_model(self):
        """TTM = W/mu has |dTTM/dmu| = W/mu^2."""
        wafers = 5000.0
        rate = 100.0
        sensitivity = ttm_rate_sensitivity(lambda mu: wafers / mu, rate)
        assert sensitivity == pytest.approx(wafers / rate**2, rel=1e-4)

    def test_absolute_value_taken(self):
        sensitivity = ttm_rate_sensitivity(lambda mu: -2.0 * mu, 10.0)
        assert sensitivity == pytest.approx(2.0, rel=1e-6)

    def test_flat_function_has_zero_sensitivity(self):
        assert ttm_rate_sensitivity(lambda mu: 42.0, 10.0) == 0.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            ttm_rate_sensitivity(lambda mu: mu, 0.0)

    def test_invalid_step_rejected(self):
        with pytest.raises(InvalidParameterError):
            ttm_rate_sensitivity(lambda mu: mu, 1.0, relative_step=1.5)
