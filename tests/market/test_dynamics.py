"""Tests for the dynamic foundry-queue simulation."""

import pytest

from repro.errors import InvalidParameterError
from repro.market.dynamics import (
    DemandScript,
    FoundryQueue,
    lead_time_trace,
    order_completion_week,
    simulate,
    summarize,
)


def _queue(capacity=1000.0, latency=12):
    return FoundryQueue(capacity_per_week=capacity, fab_latency_weeks=latency)


class TestQueueMechanics:
    def test_underloaded_line_has_no_backlog(self):
        queue = _queue()
        states = simulate(queue, DemandScript.steady(20, 800.0))
        assert all(state.backlog_wafers == 0.0 for state in states)
        assert all(state.started_wafers == 800.0 for state in states)

    def test_latency_delays_first_completion(self):
        queue = _queue(latency=5)
        states = simulate(queue, DemandScript.steady(10, 500.0))
        assert all(s.completed_wafers == 0.0 for s in states[:5])
        assert states[5].completed_wafers == 500.0

    def test_overloaded_line_grows_backlog_linearly(self):
        queue = _queue(capacity=1000.0)
        states = simulate(queue, DemandScript.steady(10, 1300.0))
        assert states[-1].backlog_wafers == pytest.approx(10 * 300.0)

    def test_wafer_conservation(self):
        queue = _queue()
        script = (
            DemandScript.steady(80, 900.0)
            .with_demand_surge(20, 15, 2.0)
            .with_capacity_outage(50, 8, 0.4)
        )
        simulate(queue, script)
        assert queue.conservation_error(sum(script.demand)) < 1e-6

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            FoundryQueue(capacity_per_week=0.0, fab_latency_weeks=12)
        with pytest.raises(InvalidParameterError):
            FoundryQueue(capacity_per_week=10.0, fab_latency_weeks=0)
        with pytest.raises(InvalidParameterError):
            _queue().step(-1.0)


class TestScripts:
    def test_steady(self):
        script = DemandScript.steady(5, 100.0)
        assert script.demand == (100.0,) * 5
        assert script.capacity_fraction == (1.0,) * 5

    def test_surge_window(self):
        script = DemandScript.steady(10, 100.0).with_demand_surge(3, 2, 2.0)
        assert script.demand[2] == 100.0
        assert script.demand[3] == 200.0
        assert script.demand[4] == 200.0
        assert script.demand[5] == 100.0

    def test_outage_window(self):
        script = DemandScript.steady(10, 100.0).with_capacity_outage(4, 3, 0.5)
        assert script.capacity_fraction[3] == 1.0
        assert script.capacity_fraction[4] == 0.5
        assert script.capacity_fraction[6] == 0.5
        assert script.capacity_fraction[7] == 1.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DemandScript(demand=())
        with pytest.raises(InvalidParameterError):
            DemandScript(demand=(1.0,), capacity_fraction=(1.0, 1.0))


class TestEq4Agreement:
    """The static Eq. 4 abstraction must match the explicit queue."""

    def test_steady_state_lead_time_matches_eq4(self):
        # Demand 1300/wk into a 1000/wk line for 10 weeks leaves a
        # 3000-wafer backlog; Eq. 4 quotes 3000/1000 = 3 weeks.
        states = simulate(_queue(), DemandScript.steady(10, 1300.0))
        assert states[-1].quoted_lead_time_weeks == pytest.approx(3.0)

    def test_lead_time_trace_shapes_like_a_shortage(self):
        script = DemandScript.steady(60, 950.0).with_demand_surge(10, 20, 1.4)
        trace = lead_time_trace(1000.0, 12, script)
        assert max(trace) > trace[0]
        # After the surge the backlog drains and quotes recover.
        assert trace[-1] < max(trace)

    def test_probe_order_completion(self):
        queue = _queue(latency=12)
        script = DemandScript.steady(40, 1200.0)
        states = simulate(queue, script)
        # Order 500 wafers at week index 10 (backlog 2000 there).
        done = order_completion_week(states, 10, 500.0, 1000.0, 12)
        # Backlog + order = 2500 started over subsequent weeks; each week
        # only 1000 - 1200 new... the line is saturated so starts = 1000:
        # wait ~2.5 weeks of starts wouldn't clear with new FIFO arrivals,
        # but our drain model charges only the backlog ahead + the order:
        # ceil(2500/1000) = 3 weeks -> completes week 14+12.
        assert done is not None
        assert done >= states[10].week + 12

    def test_probe_order_validation(self):
        states = simulate(_queue(), DemandScript.steady(5, 100.0))
        with pytest.raises(InvalidParameterError):
            order_completion_week(states, 99, 10.0, 1000.0, 12)
        with pytest.raises(InvalidParameterError):
            order_completion_week(states, 1, 0.0, 1000.0, 12)

    def test_unfinished_order_returns_none(self):
        states = simulate(_queue(), DemandScript.steady(5, 2000.0))
        assert order_completion_week(states, 4, 1e9, 1000.0, 12) is None


class TestSummarize:
    def test_headline_fields(self):
        states = simulate(_queue(), DemandScript.steady(20, 1100.0))
        summary = summarize(states)
        assert summary["weeks"] == 20.0
        assert summary["peak_backlog_wafers"] == pytest.approx(2000.0)
        assert 0.9 < summary["utilization"] <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            summarize([])


class TestTTMIntegration:
    def test_simulated_quote_feeds_the_static_model(self, model):
        """End-to-end: a simulated shortage's quote becomes the static
        model's queue_weeks and lengthens TTM accordingly."""
        from repro.design.library.a11 import a11

        rate = model.foundry.technology["7nm"].max_wafer_rate_per_week
        script = DemandScript.steady(30, rate * 1.1)
        trace = lead_time_trace(rate, 18, script)
        quote = trace[-1]
        assert quote > 1.0

        conditions = model.foundry.conditions.with_queue("7nm", quote)
        queued = model.with_foundry(model.foundry.with_conditions(conditions))
        base_weeks = model.total_weeks(a11("7nm"), 10e6)
        assert queued.total_weeks(a11("7nm"), 10e6) == pytest.approx(
            base_weeks + quote, rel=0.01
        )
