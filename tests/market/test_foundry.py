"""Tests for the Foundry supply-side view."""

import pytest

from repro.errors import InvalidParameterError, NodeUnavailableError
from repro.market.conditions import MarketConditions
from repro.market.foundry import Foundry


class TestRates:
    def test_full_capacity_rate_matches_node(self, foundry, db):
        assert foundry.wafer_rate_per_week("7nm") == pytest.approx(
            db["7nm"].max_wafer_rate_per_week
        )

    def test_capacity_fraction_scales_rate(self, db):
        throttled = Foundry(
            technology=db,
            conditions=MarketConditions(capacity_fraction={"7nm": 0.5}),
        )
        assert throttled.wafer_rate_per_week("7nm") == pytest.approx(
            0.5 * db["7nm"].max_wafer_rate_per_week
        )

    def test_out_of_production_node_rejected(self, foundry):
        with pytest.raises(NodeUnavailableError):
            foundry.wafer_rate_per_week("20nm")

    def test_zero_capacity_rejected(self, db):
        halted = Foundry(
            technology=db,
            conditions=MarketConditions(capacity_fraction={"7nm": 0.0}),
        )
        with pytest.raises(InvalidParameterError):
            halted.wafer_rate_per_week("7nm")


class TestQueues:
    def test_no_queue_by_default(self, foundry):
        assert foundry.wafers_ahead("7nm") == 0.0
        assert foundry.queue_weeks("7nm") == 0.0

    def test_backlog_pinned_at_full_rate(self, db):
        """A 2-week quote means 2 weeks' worth of wafers at *max* rate."""
        queued = Foundry(
            technology=db,
            conditions=MarketConditions(queue_weeks={"7nm": 2.0}),
        )
        assert queued.wafers_ahead("7nm") == pytest.approx(
            2.0 * db["7nm"].max_wafer_rate_per_week
        )
        assert queued.queue_weeks("7nm") == pytest.approx(2.0)

    def test_queue_time_inflates_when_capacity_drops(self, db):
        """The pinned backlog drains slower at reduced capacity."""
        conditions = MarketConditions(
            queue_weeks={"7nm": 2.0}, capacity_fraction={"7nm": 0.5}
        )
        queued = Foundry(technology=db, conditions=conditions)
        assert queued.queue_weeks("7nm") == pytest.approx(4.0)


class TestDerivation:
    def test_at_capacity_scales_all_nodes(self, foundry, db):
        half = foundry.at_capacity(0.5)
        for name in ("250nm", "28nm", "7nm"):
            assert half.wafer_rate_per_week(name) == pytest.approx(
                0.5 * db[name].max_wafer_rate_per_week
            )

    def test_with_conditions_replaces_state(self, foundry):
        replaced = foundry.with_conditions(
            MarketConditions(capacity_fraction={"7nm": 0.25})
        )
        assert replaced.conditions.capacity_for("7nm") == 0.25
        assert foundry.conditions.capacity_for("7nm") == 1.0

    def test_available_nodes_excludes_idle_and_halted(self, db):
        conditions = MarketConditions(capacity_fraction={"7nm": 0.0})
        foundry = Foundry(technology=db, conditions=conditions)
        available = foundry.available_nodes()
        assert "7nm" not in available
        assert "20nm" not in available
        assert "28nm" in available

    def test_nominal_constructor_default_db(self):
        foundry = Foundry.nominal()
        assert len(foundry.technology) == 12
