"""Tests for the preset market scenarios."""

import pytest

from repro.market import scenarios
from repro.market.scenarios import ADVANCED_NODES, LEGACY_NODES, SCENARIOS


class TestNodeGroups:
    def test_groups_are_disjoint(self):
        assert not set(ADVANCED_NODES) & set(LEGACY_NODES)

    def test_advanced_contains_the_sub14nm_club(self):
        assert {"14nm", "10nm", "7nm", "5nm"} <= set(ADVANCED_NODES)

    def test_legacy_contains_the_mature_nodes(self):
        assert {"250nm", "180nm", "130nm", "90nm", "65nm"} <= set(LEGACY_NODES)


class TestScenarios:
    def test_registry_contains_all_factories(self):
        assert set(SCENARIOS) == {
            "nominal",
            "shortage_2021",
            "advanced_drought",
            "legacy_crunch",
            "fab_fire_28nm",
        }

    def test_nominal(self):
        conditions = scenarios.nominal()
        assert conditions.capacity_for("7nm") == 1.0
        assert conditions.queue_weeks_for("7nm") == 0.0

    def test_shortage_queues_every_node(self):
        conditions = scenarios.shortage_2021(queue_weeks=3.0)
        for node in ("250nm", "28nm", "5nm"):
            assert conditions.queue_weeks_for(node) == 3.0
        assert conditions.capacity_for("7nm") == 1.0

    def test_advanced_drought_throttles_only_advanced(self):
        conditions = scenarios.advanced_drought(capacity=0.6)
        assert conditions.capacity_for("7nm") == 0.6
        assert conditions.capacity_for("65nm") == 1.0

    def test_legacy_crunch_throttles_only_legacy(self):
        conditions = scenarios.legacy_crunch(capacity=0.5)
        assert conditions.capacity_for("180nm") == 0.5
        assert conditions.capacity_for("7nm") == 1.0

    def test_fab_fire_targets_one_node(self):
        conditions = scenarios.fab_fire("28nm", capacity=0.3)
        assert conditions.capacity_for("28nm") == 0.3
        assert conditions.capacity_for("40nm") == 1.0

    def test_by_name_dispatch(self):
        assert scenarios.by_name("nominal").capacity_for("7nm") == 1.0

    def test_by_name_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenarios.by_name("zombie-apocalypse")
