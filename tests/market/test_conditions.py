"""Tests for MarketConditions."""

import pytest

from repro.errors import InvalidParameterError
from repro.market.conditions import MarketConditions


class TestDefaults:
    def test_nominal_is_full_capacity_no_queue(self):
        conditions = MarketConditions.nominal()
        assert conditions.capacity_for("7nm") == 1.0
        assert conditions.queue_weeks_for("7nm") == 0.0

    def test_unlisted_nodes_use_defaults(self):
        conditions = MarketConditions(
            capacity_fraction={"7nm": 0.5}, default_capacity=0.8
        )
        assert conditions.capacity_for("7nm") == 0.5
        assert conditions.capacity_for("28nm") == 0.8


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            MarketConditions(capacity_fraction={"7nm": -0.1})

    def test_negative_queue_rejected(self):
        with pytest.raises(InvalidParameterError):
            MarketConditions(queue_weeks={"7nm": -1.0})

    def test_negative_defaults_rejected(self):
        with pytest.raises(InvalidParameterError):
            MarketConditions(default_capacity=-0.5)
        with pytest.raises(InvalidParameterError):
            MarketConditions(default_queue_weeks=-1.0)


class TestDerivation:
    def test_with_capacity_is_a_copy(self):
        base = MarketConditions.nominal()
        derived = base.with_capacity("7nm", 0.3)
        assert derived.capacity_for("7nm") == 0.3
        assert base.capacity_for("7nm") == 1.0

    def test_with_global_capacity_overrides_everything(self):
        base = MarketConditions(capacity_fraction={"7nm": 0.9})
        derived = base.with_global_capacity(0.4)
        assert derived.capacity_for("7nm") == 0.4
        assert derived.capacity_for("28nm") == 0.4

    def test_with_global_capacity_preserves_queues(self):
        base = MarketConditions(queue_weeks={"7nm": 2.0})
        derived = base.with_global_capacity(0.5)
        assert derived.queue_weeks_for("7nm") == 2.0

    def test_with_queue(self):
        derived = MarketConditions.nominal().with_queue("7nm", 4.0)
        assert derived.queue_weeks_for("7nm") == 4.0
        assert derived.queue_weeks_for("28nm") == 0.0

    def test_with_global_queue(self):
        derived = MarketConditions.nominal().with_global_queue(3.0)
        assert derived.queue_weeks_for("7nm") == 3.0
        assert derived.queue_weeks_for("250nm") == 3.0

    def test_with_global_queue_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            MarketConditions.nominal().with_global_queue(-1.0)

    def test_describe_round_trips_fields(self):
        conditions = MarketConditions(
            capacity_fraction={"7nm": 0.5}, queue_weeks={"7nm": 1.0}
        )
        summary = conditions.describe()
        assert summary["capacity_fraction"] == {"7nm": 0.5}
        assert summary["queue_weeks"] == {"7nm": 1.0}
        assert summary["default_capacity"] == 1.0
