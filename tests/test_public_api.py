"""Smoke tests for the public API surface."""

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README/`__init__` quickstart must work verbatim."""
        from repro import TTMModel, chip_agility_score
        from repro.design.library import a11

        model = TTMModel.nominal()
        design = a11("28nm")
        result = model.time_to_market(design, n_chips=10e6)
        assert 15.0 < result.total_weeks < 40.0
        assert chip_agility_score(model, design, 10e6).normalized > 0.0

    def test_exception_hierarchy(self):
        assert issubclass(repro.UnknownNodeError, repro.ReproError)
        assert issubclass(repro.NodeUnavailableError, repro.ReproError)
        assert issubclass(repro.InvalidDesignError, repro.ReproError)
        assert issubclass(repro.InvalidParameterError, repro.ReproError)
        assert issubclass(repro.CalibrationError, repro.ReproError)

    def test_errors_catchable_as_builtins(self):
        """KeyError/ValueError mixins keep duck-typed callers working."""
        assert issubclass(repro.UnknownNodeError, KeyError)
        assert issubclass(repro.InvalidDesignError, ValueError)

    def test_models_are_immutable(self):
        model = repro.TTMModel.nominal()
        with pytest.raises(AttributeError):
            model.engineers = 50  # type: ignore[misc]
