"""Hypothesis properties of the fused portfolio kernels.

Two structural laws the SoA compiler must preserve on *every* input,
beyond the example-based equivalence suite:

* **permutation equivariance** — row ``i`` of the portfolio tensor
  depends only on design ``i`` and the shared samples, so reordering
  the design tuple reorders the rows bit-for-bit (no cross-design
  leakage through the padded node slots);
* **batch-splitting invariance** — evaluating the sample axis in two
  chunks and concatenating equals the single fused pass bit-for-bit
  (chunked Monte-Carlo studies can never drift from a monolithic one).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.library.a11 import a11
from repro.design.library.zen2 import zen2, zen2_monolithic
from repro.engine.portfolio import portfolio_cas, portfolio_ttm
from repro.ttm.model import TTMModel

MODEL = TTMModel.nominal()

#: Mixed node counts so padded slots participate in every example.
DESIGN_POOL = (
    a11("7nm"),
    a11("28nm"),
    a11("65nm"),
    zen2(),
    zen2_monolithic("7nm"),
)

N_CHIPS = 2e7

permutations = st.permutations(range(len(DESIGN_POOL)))
seeds = st.integers(min_value=0, max_value=2**32 - 1)
sample_counts = st.integers(min_value=2, max_value=24)


def draw_supply(seed, n_samples):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(0.15, 1.0, n_samples),
        rng.uniform(0.0, 30.0, n_samples),
        rng.uniform(1e6, 1e8, n_samples),
    )


class TestPermutationEquivariance:
    @settings(max_examples=20, deadline=None)
    @given(order=permutations, seed=seeds, n_samples=sample_counts)
    def test_ttm_rows_follow_design_order(self, order, seed, n_samples):
        capacity, queue, demand = draw_supply(seed, n_samples)
        base = portfolio_ttm(
            MODEL,
            DESIGN_POOL,
            demand,
            capacity=capacity,
            queue_weeks=queue,
        )
        permuted = portfolio_ttm(
            MODEL,
            [DESIGN_POOL[i] for i in order],
            demand,
            capacity=capacity,
            queue_weeks=queue,
        )
        assert np.array_equal(
            permuted.total_weeks, base.total_weeks[list(order)]
        )
        assert np.array_equal(
            permuted.fabrication_weeks, base.fabrication_weeks[list(order)]
        )
        assert permuted.designs == tuple(
            base.designs[i] for i in order
        )

    @settings(max_examples=10, deadline=None)
    @given(order=permutations, seed=seeds)
    def test_cas_rows_follow_design_order(self, order, seed):
        capacity, _, _ = draw_supply(seed, 6)
        base = portfolio_cas(MODEL, DESIGN_POOL, N_CHIPS, capacity=capacity)
        permuted = portfolio_cas(
            MODEL,
            [DESIGN_POOL[i] for i in order],
            N_CHIPS,
            capacity=capacity,
        )
        assert np.array_equal(permuted.cas, base.cas[list(order)])

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, n_samples=sample_counts)
    def test_subset_rows_match_full_portfolio(self, seed, n_samples):
        capacity, queue, demand = draw_supply(seed, n_samples)
        full = portfolio_ttm(
            MODEL, DESIGN_POOL, demand, capacity=capacity, queue_weeks=queue
        )
        pair = (DESIGN_POOL[1], DESIGN_POOL[3])
        subset = portfolio_ttm(
            MODEL, pair, demand, capacity=capacity, queue_weeks=queue
        )
        assert np.array_equal(subset.total_weeks[0], full.total_weeks[1])
        assert np.array_equal(subset.total_weeks[1], full.total_weeks[3])


class TestBatchSplittingInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        n_samples=st.integers(min_value=4, max_value=24),
        data=st.data(),
    )
    def test_chunked_ttm_concatenates_to_single_pass(
        self, seed, n_samples, data
    ):
        split = data.draw(
            st.integers(min_value=1, max_value=n_samples - 1), label="split"
        )
        capacity, queue, demand = draw_supply(seed, n_samples)
        whole = portfolio_ttm(
            MODEL, DESIGN_POOL, demand, capacity=capacity, queue_weeks=queue
        ).total_weeks
        head = portfolio_ttm(
            MODEL,
            DESIGN_POOL,
            demand[:split],
            capacity=capacity[:split],
            queue_weeks=queue[:split],
        ).total_weeks
        tail = portfolio_ttm(
            MODEL,
            DESIGN_POOL,
            demand[split:],
            capacity=capacity[split:],
            queue_weeks=queue[split:],
        ).total_weeks
        assert np.array_equal(np.concatenate([head, tail], axis=1), whole)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_chunked_cas_concatenates_to_single_pass(self, seed):
        capacity, _, _ = draw_supply(seed, 8)
        whole = portfolio_cas(
            MODEL, DESIGN_POOL, N_CHIPS, capacity=capacity
        ).cas
        head = portfolio_cas(
            MODEL, DESIGN_POOL, N_CHIPS, capacity=capacity[:3]
        ).cas
        tail = portfolio_cas(
            MODEL, DESIGN_POOL, N_CHIPS, capacity=capacity[3:]
        ).cas
        assert np.array_equal(np.concatenate([head, tail], axis=1), whole)
