"""Hypothesis properties of the fused point-evaluation path.

The serving layer's determinism guarantee reduces to two laws of
:func:`repro.engine.fused_point_eval`, checked here on randomized
request mixes with *exact* float equality (the wire contract is
byte-identity of canonical JSON, which is equality of the floats):

* **arrival-order invariance** — permuting a compatible request batch
  permutes the results and changes nothing else;
* **batch-composition invariance** — evaluating a request solo, or
  inside any partition of any superset batch, yields identical numbers.

Together these mean a tenant can never observe who else was coalesced
into their window.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.model import CostModel
from repro.design.library.a11 import a11
from repro.design.library.raven import raven_multicore
from repro.design.library.zen2 import zen2, zen2_monolithic
from repro.engine import PointRequest, fused_point_eval
from repro.ttm.model import TTMModel

MODEL = TTMModel.nominal()
COST = CostModel.nominal(MODEL.foundry.technology)

#: Interned once, as ServeState would — mixed node counts on purpose.
DESIGN_POOL = (
    a11("7nm"),
    a11("28nm"),
    zen2(),
    zen2_monolithic("7nm"),
    raven_multicore(),
)

@st.composite
def compatible_batches(draw):
    """Batches sharing one supply-knob shape, as a coalescing group does.

    The server's group key pins :func:`point_signature`, so a fused
    batch always has one shape: capacity all-absent or all-present (and
    alike scalar/per-node), same for the other knobs. Values still vary
    per request.
    """
    size = draw(st.integers(min_value=1, max_value=8))
    has_capacity = draw(st.booleans())
    has_queue = draw(st.booleans())
    has_scales = draw(st.booleans())
    batch = []
    for _ in range(size):
        batch.append(
            PointRequest(
                design=draw(st.sampled_from(DESIGN_POOL)),
                n_chips=draw(st.floats(min_value=1e5, max_value=1e8)),
                capacity=(
                    draw(st.floats(min_value=0.05, max_value=1.0))
                    if has_capacity
                    else None
                ),
                queue_weeks=(
                    draw(st.floats(min_value=0.0, max_value=30.0))
                    if has_queue
                    else None
                ),
                d0_scale=(
                    draw(st.floats(min_value=0.5, max_value=2.0))
                    if has_scales
                    else None
                ),
                wafer_rate_scale=(
                    draw(st.floats(min_value=0.5, max_value=2.0))
                    if has_scales
                    else None
                ),
            )
        )
    return batch


batches = compatible_batches()


def evaluate(batch):
    return fused_point_eval(MODEL, COST, batch)


@settings(max_examples=25, deadline=None)
@given(batch=batches, data=st.data())
def test_arrival_order_is_unobservable(batch, data):
    order = data.draw(st.permutations(range(len(batch))))
    baseline = evaluate(batch)
    shuffled = evaluate([batch[i] for i in order])
    for position, i in enumerate(order):
        assert shuffled[position] == baseline[i]


@settings(max_examples=25, deadline=None)
@given(batch=batches, data=st.data())
def test_batch_composition_is_unobservable(batch, data):
    cut = data.draw(st.integers(min_value=0, max_value=len(batch)))
    baseline = evaluate(batch)
    left = evaluate(batch[:cut]) if cut else []
    right = evaluate(batch[cut:]) if cut < len(batch) else []
    assert left + right == baseline


@settings(max_examples=25, deadline=None)
@given(batch=batches, index=st.data())
def test_solo_equals_any_coalesced_slot(batch, index):
    i = index.draw(st.integers(min_value=0, max_value=len(batch) - 1))
    fused = evaluate(batch)
    (solo,) = evaluate([batch[i]])
    assert solo == fused[i]


@settings(max_examples=15, deadline=None)
@given(batch=batches)
def test_duplicated_requests_share_one_answer(batch):
    doubled = list(batch) + list(batch)
    results = evaluate(doubled)
    assert results[: len(batch)] == results[len(batch):]
