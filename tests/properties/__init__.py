"""Hypothesis property-based tests for core model invariants."""
