"""Hypothesis properties of the vectorized split engine.

Two Sec. 7 laws that must hold on *every* valid grid, not just the
example points the equivalence suite checks:

* the split TTM is exactly the max of its two line-weeks (an order is
  filled when the slower production line finishes);
* CAS is finite and positive wherever the grid is valid (Eq. 8 is a
  reciprocal of a positive sensitivity under nominal conditions).
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.model import CostModel
from repro.design.library.raven import raven_multicore
from repro.engine.batch_split import batch_split
from repro.ttm.model import TTMModel

#: Nodes old and new enough to stress both ends of the roadmap.
NODES = ("250nm", "130nm", "65nm", "40nm", "28nm", "14nm", "7nm")

MODEL = TTMModel.nominal()
COST_MODEL = CostModel.nominal()

pairs = st.tuples(
    st.sampled_from(NODES), st.sampled_from(NODES)
).filter(lambda pair: pair[0] != pair[1])

# Either the exact single-line split (1.0) or a genuine two-line split
# bounded away from 1.0: a split one ULP below 1.0 routes ~1e-16 of the
# volume to the secondary line, whose TTM then moves less than float
# resolution under rate perturbation — both the scalar and the batch
# engine correctly reject that degenerate point as "zero TTM
# sensitivity", so the strategy must not generate it.
splits = st.one_of(
    st.just(1.0),
    st.floats(
        min_value=0.01,
        max_value=0.99,
        allow_nan=False,
        exclude_min=False,
    ),
)

grids = st.lists(splits, min_size=1, max_size=6, unique=True)

volumes = st.floats(min_value=1e4, max_value=1e9)


class TestSplitGridProperties:
    @settings(max_examples=25, deadline=None)
    @given(pair=pairs, grid=grids, n_chips=volumes)
    def test_ttm_is_max_of_line_weeks(self, pair, grid, n_chips):
        result = batch_split(
            raven_multicore,
            [pair],
            MODEL,
            COST_MODEL,
            n_chips,
            split_grid=grid,
            with_cas=False,
        )
        for j in range(result.n_splits):
            evaluation = result.evaluation(0, j)
            assert evaluation.ttm_weeks == max(
                evaluation.line_weeks.values()
            )
            if result.single_mask[0, j]:
                assert len(evaluation.line_weeks) == 1
            else:
                assert len(evaluation.line_weeks) == 2

    @settings(max_examples=25, deadline=None)
    @given(pair=pairs, grid=grids, n_chips=volumes)
    def test_cas_is_finite_and_positive(self, pair, grid, n_chips):
        result = batch_split(
            raven_multicore,
            [pair],
            MODEL,
            COST_MODEL,
            n_chips,
            split_grid=grid,
        )
        assert np.all(np.isfinite(result.cas))
        assert np.all(result.cas > 0.0)
        assert np.all(np.isfinite(result.ttm_weeks))
        assert np.all(result.ttm_weeks > 0.0)
        assert np.all(result.cost_usd > 0.0)

    @settings(max_examples=15, deadline=None)
    @given(pair=pairs, n_chips=volumes)
    def test_best_evaluation_dominates_its_row(self, pair, n_chips):
        grid = tuple(s / 8.0 for s in range(1, 9))
        result = batch_split(
            raven_multicore,
            [pair],
            MODEL,
            COST_MODEL,
            n_chips,
            split_grid=grid,
        )
        best = result.best_evaluation(0)
        assert math.isfinite(best.cas)
        assert best.cas == max(
            result.evaluation(0, j).cas for j in range(result.n_splits)
        )
