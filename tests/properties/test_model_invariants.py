"""Hypothesis property-based tests for core model invariants.

Each property pins a monotonicity or boundedness law the paper's
equations imply — the kind of contract example-based tests only spot-check:

* Eq. 6 yield lies in (0, 1] and never *increases* with die area or D0;
* gross dies per wafer are non-negative and never increase with area;
* TTM never increases when production capacity grows (more wafers per
  week can only help);
* CAS is finite and positive for every library design on every node it
  supports.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agility.cas import chip_agility_score
from repro.design.library import a11, zen2
from repro.technology.database import TechnologyDatabase
from repro.technology.wafer import dies_per_wafer, dies_per_wafer_simple
from repro.technology.yield_model import negative_binomial_yield
from repro.ttm.model import TTMModel

#: Die areas from tiny IP blocks to full-reticle monsters (mm^2).
areas = st.floats(min_value=0.1, max_value=800.0)

#: Defect densities around the roadmap's range (defects/cm^2).
defect_densities = st.floats(min_value=0.0, max_value=2.0)

#: Clustering parameter near the paper's alpha = 3.
alphas = st.floats(min_value=0.5, max_value=10.0)

#: Relative bumps used for the monotonicity comparisons.
bumps = st.floats(min_value=1.001, max_value=4.0)

#: Nodes that can actually fabricate wafers (20 nm is roadmap-listed but
#: out of production, so TTM/CAS are undefined there by design).
PRODUCTION_NODES = tuple(
    node.name
    for node in TechnologyDatabase.default().nodes
    if node.in_production
)


class TestYieldProperties:
    @given(area=areas, d0=defect_densities, alpha=alphas)
    def test_yield_in_unit_interval(self, area, d0, alpha):
        y = negative_binomial_yield(area, d0, alpha)
        assert 0.0 < y <= 1.0

    @given(area=areas, d0=defect_densities, alpha=alphas, bump=bumps)
    def test_yield_monotone_non_increasing_in_area(self, area, d0, alpha, bump):
        assert negative_binomial_yield(
            area * bump, d0, alpha
        ) <= negative_binomial_yield(area, d0, alpha)

    @given(area=areas, d0=defect_densities, alpha=alphas, bump=bumps)
    def test_yield_monotone_non_increasing_in_d0(self, area, d0, alpha, bump):
        assert negative_binomial_yield(
            area, d0 * bump, alpha
        ) <= negative_binomial_yield(area, d0, alpha)

    @given(area=areas, alpha=alphas)
    def test_zero_defects_yield_everything(self, area, alpha):
        assert negative_binomial_yield(area, 0.0, alpha) == 1.0


class TestDiesPerWaferProperties:
    @given(area=areas)
    def test_non_negative(self, area):
        assert dies_per_wafer_simple(area) >= 0.0
        assert dies_per_wafer(area) >= 0.0

    @given(area=areas, bump=bumps)
    def test_monotone_non_increasing_in_area(self, area, bump):
        assert dies_per_wafer_simple(area * bump) <= dies_per_wafer_simple(area)
        assert dies_per_wafer(area * bump) <= dies_per_wafer(area)

    @given(area=areas)
    def test_edge_correction_never_gains_dies(self, area):
        assert dies_per_wafer(area) <= dies_per_wafer_simple(area)


@pytest.fixture(scope="module")
def nominal_model():
    return TTMModel.nominal(TechnologyDatabase.default())


class TestTTMProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        fraction=st.floats(min_value=0.05, max_value=0.99),
        growth=st.floats(min_value=1.01, max_value=4.0),
        n_chips=st.floats(min_value=1e4, max_value=5e7),
    )
    def test_ttm_non_increasing_as_capacity_grows(
        self, nominal_model, fraction, growth, n_chips
    ):
        design = a11("7nm")
        slow = nominal_model.at_capacity(fraction)
        fast = nominal_model.at_capacity(min(1.0, fraction * growth))
        assert fast.total_weeks(design, n_chips) <= slow.total_weeks(
            design, n_chips
        )


class TestCASProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        node=st.sampled_from(PRODUCTION_NODES),
        n_chips=st.floats(min_value=1e4, max_value=5e7),
    )
    def test_cas_finite_for_a11_on_every_node(
        self, nominal_model, node, n_chips
    ):
        score = chip_agility_score(nominal_model, a11(node), n_chips)
        assert math.isfinite(score.cas)
        assert score.cas > 0.0

    @settings(max_examples=10, deadline=None)
    @given(n_chips=st.floats(min_value=1e4, max_value=5e7))
    def test_cas_finite_for_zen2_chiplets(self, nominal_model, n_chips):
        score = chip_agility_score(nominal_model, zen2(), n_chips)
        assert math.isfinite(score.cas)
        assert score.cas > 0.0
