"""Tests for unit conversions and formatting helpers."""

import math

import pytest

from repro import units


class TestConversions:
    def test_weeks_per_month(self):
        assert units.WEEKS_PER_MONTH == pytest.approx(4.348, abs=0.001)

    def test_kwpm_round_trip(self):
        rate = units.kwpm_to_wafers_per_week(252.0)
        assert units.wafers_per_week_to_kwpm(rate) == pytest.approx(252.0)

    def test_kwpm_magnitude(self):
        # 100 kW/month ~= 23 k wafers/week.
        assert units.kwpm_to_wafers_per_week(100.0) == pytest.approx(
            22_996, rel=0.01
        )

    def test_wafer_area(self):
        assert units.WAFER_AREA_MM2 == pytest.approx(
            math.pi * 150.0**2
        )

    def test_mm2_to_cm2(self):
        assert units.mm2_to_cm2(100.0) == 1.0

    def test_transistors_to_area(self):
        # 4.3 B transistors at 48.9 MTr/mm^2 -> ~88 mm^2 (the A11).
        assert units.transistors_to_area_mm2(4.3e9, 48.9) == pytest.approx(
            87.9, abs=0.1
        )

    def test_transistors_to_area_rejects_zero_density(self):
        with pytest.raises(ValueError):
            units.transistors_to_area_mm2(1e9, 0.0)

    def test_weeks_to_engineer_hours(self):
        assert units.weeks_to_engineer_hours(2.0, 100) == 8000.0


class TestFormatting:
    def test_format_weeks(self):
        assert units.format_weeks(24.83) == "24.8 weeks"

    @pytest.mark.parametrize(
        "amount,expected",
        [
            (12.3456, "$12.35"),
            (4_560.0, "$4.56K"),
            (7_700_000.0, "$7.70M"),
            (2.5e9, "$2.50B"),
            (-4_560.0, "-$4.56K"),
            (0.0, "$0.00"),
        ],
    )
    def test_format_usd(self, amount, expected):
        assert units.format_usd(amount) == expected
