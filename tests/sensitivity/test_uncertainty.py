"""Tests for Monte Carlo uncertainty bands."""

import pytest

from repro.errors import InvalidParameterError
from repro.sensitivity.distributions import Factor
from repro.sensitivity.uncertainty import output_uncertainty, uncertainty_bands


class TestOutputUncertainty:
    def test_identity_recovers_uniform_statistics(self):
        factors = [Factor("x", 100.0, 0.10)]
        result = output_uncertainty(lambda v: v["x"], factors, samples=4096)
        assert result.mean == pytest.approx(100.0, rel=0.01)
        # 95% central interval of U(90, 110) is [90.5, 109.5].
        assert result.lower == pytest.approx(90.5, abs=0.5)
        assert result.upper == pytest.approx(109.5, abs=0.5)

    def test_interval_contains_mean(self):
        factors = [Factor("x", 10.0, 0.25)]
        result = output_uncertainty(lambda v: v["x"] ** 2, factors)
        assert result.lower <= result.mean <= result.upper

    def test_constant_function_zero_width(self):
        factors = [Factor("x", 10.0, 0.25)]
        result = output_uncertainty(lambda v: 7.0, factors)
        assert result.interval_width == pytest.approx(0.0)
        assert result.relative_halfwidth == pytest.approx(0.0)

    def test_reproducible_by_seed(self):
        factors = [Factor("x", 10.0, 0.1)]
        a = output_uncertainty(lambda v: v["x"], factors, seed=5)
        b = output_uncertainty(lambda v: v["x"], factors, seed=5)
        assert a == b

    def test_validation(self):
        factors = [Factor("x", 10.0, 0.1)]
        with pytest.raises(InvalidParameterError):
            output_uncertainty(lambda v: 0.0, factors, samples=1)
        with pytest.raises(InvalidParameterError):
            output_uncertainty(lambda v: 0.0, factors, confidence=1.0)


class TestBands:
    def test_wider_variation_wider_interval(self):
        factors = [Factor("x", 100.0, 0.10)]
        bands = uncertainty_bands(lambda v: v["x"], factors)
        assert set(bands) == {0.10, 0.25}
        assert bands[0.25].interval_width > bands[0.10].interval_width

    def test_bands_share_the_nominal_center(self):
        factors = [Factor("x", 100.0, 0.10)]
        bands = uncertainty_bands(lambda v: v["x"], factors, samples=4096)
        assert bands[0.10].mean == pytest.approx(bands[0.25].mean, rel=0.02)
