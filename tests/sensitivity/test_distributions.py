"""Tests for sensitivity input factors and sampling."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sensitivity.distributions import Factor, factor_names, sample_matrix


class TestFactor:
    def test_bounds(self):
        factor = Factor("D0", nominal=0.1, variation=0.10)
        assert factor.low == pytest.approx(0.09)
        assert factor.high == pytest.approx(0.11)

    def test_scale_maps_unit_interval(self):
        factor = Factor("x", nominal=10.0, variation=0.5)
        assert factor.scale(0.0) == pytest.approx(5.0)
        assert factor.scale(1.0) == pytest.approx(15.0)
        assert factor.scale(0.5) == pytest.approx(10.0)

    def test_with_variation(self):
        factor = Factor("x", nominal=10.0, variation=0.1)
        widened = factor.with_variation(0.25)
        assert widened.low == pytest.approx(7.5)
        assert factor.low == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Factor("", 1.0)
        with pytest.raises(InvalidParameterError):
            Factor("x", -1.0)
        with pytest.raises(InvalidParameterError):
            Factor("x", 1.0, variation=1.0)


class TestSampling:
    def test_matrix_shape_and_ranges(self):
        factors = [Factor("a", 10.0, 0.1), Factor("b", 100.0, 0.25)]
        rng = np.random.default_rng(7)
        matrix = sample_matrix(factors, 500, rng)
        assert matrix.shape == (500, 2)
        assert matrix[:, 0].min() >= 9.0 and matrix[:, 0].max() <= 11.0
        assert matrix[:, 1].min() >= 75.0 and matrix[:, 1].max() <= 125.0

    def test_deterministic_given_seeded_rng(self):
        factors = [Factor("a", 10.0, 0.1)]
        first = sample_matrix(factors, 10, np.random.default_rng(3))
        second = sample_matrix(factors, 10, np.random.default_rng(3))
        assert np.array_equal(first, second)

    def test_zero_variation_is_constant(self):
        factors = [Factor("a", 10.0, 0.0)]
        matrix = sample_matrix(factors, 20, np.random.default_rng(1))
        assert np.allclose(matrix, 10.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sample_matrix([], 10, np.random.default_rng(1))
        with pytest.raises(InvalidParameterError):
            sample_matrix([Factor("a", 1.0)], 0, np.random.default_rng(1))

    def test_factor_names_unique(self):
        assert factor_names([Factor("a", 1.0), Factor("b", 1.0)]) == ("a", "b")
        with pytest.raises(InvalidParameterError):
            factor_names([Factor("a", 1.0), Factor("a", 2.0)])
