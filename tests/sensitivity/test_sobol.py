"""Tests for Sobol index estimation against analytic ground truth."""

import pytest

from repro.errors import InvalidParameterError
from repro.sensitivity.distributions import Factor
from repro.sensitivity.sobol import sobol_indices


class TestAdditiveModel:
    """Y = a*X1 + b*X2 with independent uniforms has closed-form indices:
    S_i = ST_i = a_i^2 Var(X_i) / sum_j a_j^2 Var(X_j)."""

    def _run(self, a=1.0, b=1.0, samples=4096):
        factors = [Factor("x1", 10.0, 0.10), Factor("x2", 10.0, 0.10)]
        function = lambda v: a * v["x1"] + b * v["x2"]  # noqa: E731
        return sobol_indices(function, factors, base_samples=samples)

    def test_symmetric_coefficients_split_evenly(self):
        result = self._run()
        assert result.total_effect["x1"] == pytest.approx(0.5, abs=0.06)
        assert result.total_effect["x2"] == pytest.approx(0.5, abs=0.06)

    def test_additive_first_equals_total(self):
        result = self._run(a=2.0, b=1.0)
        for name in ("x1", "x2"):
            assert result.first_order[name] == pytest.approx(
                result.total_effect[name], abs=0.08
            )

    def test_variance_weighting(self):
        """With a=3, b=1: ST(x1) = 9/10."""
        result = self._run(a=3.0, b=1.0)
        assert result.total_effect["x1"] == pytest.approx(0.9, abs=0.06)
        assert result.total_effect["x2"] == pytest.approx(0.1, abs=0.06)


class TestNonInfluentialFactor:
    def test_dummy_factor_scores_zero(self):
        factors = [Factor("live", 10.0, 0.10), Factor("dummy", 10.0, 0.10)]
        function = lambda v: v["live"] ** 2  # noqa: E731
        result = sobol_indices(function, factors, base_samples=512)
        assert result.total_effect["dummy"] == pytest.approx(0.0, abs=0.02)
        assert result.total_effect["live"] == pytest.approx(1.0, abs=0.05)
        assert result.dominant_factor == "live"


class TestInteractions:
    def test_product_model_total_exceeds_first_order(self):
        """Y = X1 * X2 has interaction variance: ST_i > S_i."""
        factors = [Factor("x1", 1.0, 0.9), Factor("x2", 1.0, 0.9)]
        function = lambda v: v["x1"] * v["x2"]  # noqa: E731
        result = sobol_indices(function, factors, base_samples=2048)
        for name in ("x1", "x2"):
            assert (
                result.raw_total_effect[name]
                > result.raw_first_order[name] + 0.01
            )


class TestMechanics:
    def test_constant_function_all_zero(self):
        factors = [Factor("x", 1.0, 0.1)]
        result = sobol_indices(lambda v: 42.0, factors, base_samples=64)
        assert result.total_effect["x"] == 0.0
        assert result.variance == 0.0

    def test_evaluation_count(self):
        factors = [Factor("a", 1.0, 0.1), Factor("b", 1.0, 0.1)]
        result = sobol_indices(lambda v: v["a"], factors, base_samples=64)
        assert result.evaluations == 64 * (2 + 2)

    def test_reproducible_by_seed(self):
        factors = [Factor("a", 1.0, 0.1)]
        function = lambda v: v["a"] ** 2  # noqa: E731
        first = sobol_indices(function, factors, seed=11)
        second = sobol_indices(function, factors, seed=11)
        assert first.total_effect == second.total_effect

    def test_indices_clipped_to_unit_interval(self):
        factors = [Factor("a", 1.0, 0.1), Factor("b", 1.0, 0.1)]
        result = sobol_indices(
            lambda v: v["a"] + 0.001 * v["b"], factors, base_samples=16
        )
        for value in result.total_effect.values():
            assert 0.0 <= value <= 1.0

    def test_ranked_total_effects(self):
        factors = [Factor("a", 1.0, 0.1), Factor("b", 1.0, 0.01)]
        result = sobol_indices(
            lambda v: v["a"] + v["b"], factors, base_samples=256
        )
        ranked = result.ranked_total_effects()
        assert ranked[0][0] == "a"

    def test_too_few_samples_rejected(self):
        with pytest.raises(InvalidParameterError):
            sobol_indices(lambda v: 0.0, [Factor("a", 1.0)], base_samples=1)
