"""Tests for the TTM factor binding used by Fig. 8."""

import pytest

from repro.errors import InvalidParameterError
from repro.sensitivity.ttm_factors import (
    FACTOR_NAMES,
    ttm_factor_function,
    ttm_factors,
)


class TestFactors:
    def test_six_paper_factors(self, db):
        factors = ttm_factors("28nm", 4.3e9, 5.14e8, db)
        assert tuple(f.name for f in factors) == FACTOR_NAMES

    def test_nominals_match_node(self, db):
        factors = {f.name: f for f in ttm_factors("7nm", 4.3e9, 5.14e8, db)}
        assert factors["D0"].nominal == db["7nm"].defect_density_per_cm2
        assert factors["muW"].nominal == db["7nm"].wafer_rate_kwpm
        assert factors["Lfab"].nominal == db["7nm"].fab_latency_weeks
        assert factors["LOSAT"].nominal == 6.0
        assert factors["NTT"].nominal == 4.3e9

    def test_default_variation_is_ten_percent(self, db):
        for factor in ttm_factors("7nm", 4.3e9, 5.14e8, db):
            assert factor.variation == 0.10


class TestFactorFunction:
    def _nominal_values(self, db, process):
        node = db[process]
        return {
            "NTT": 4.3e9,
            "NUT": 5.14e8,
            "D0": node.defect_density_per_cm2,
            "muW": node.wafer_rate_kwpm,
            "Lfab": node.fab_latency_weeks,
            "LOSAT": 6.0,
        }

    def test_nominal_inputs_match_direct_model(self, db, model):
        from repro.design.library.generic import monolithic_design

        function = ttm_factor_function("28nm", 10e6, db)
        direct = model.total_weeks(
            monolithic_design("sensitivity-design", "28nm", 4.3e9, 5.14e8), 10e6
        )
        assert function(self._nominal_values(db, "28nm")) == pytest.approx(direct)

    def test_missing_factor_rejected(self, db):
        function = ttm_factor_function("28nm", 10e6, db)
        with pytest.raises(InvalidParameterError, match="missing"):
            function({"NTT": 1e9})

    def test_nut_clamped_to_ntt(self, db):
        """Independent sampling can draw NUT > NTT; the binding clamps."""
        function = ttm_factor_function("28nm", 10e6, db)
        values = self._nominal_values(db, "28nm")
        values["NTT"] = 1e8
        values["NUT"] = 5e8  # would violate NUT <= NTT unclamped
        assert function(values) > 0.0

    def test_slower_rate_longer_ttm(self, db):
        function = ttm_factor_function("28nm", 10e6, db)
        nominal = self._nominal_values(db, "28nm")
        slowed = dict(nominal, muW=nominal["muW"] * 0.5)
        assert function(slowed) > function(nominal)

    def test_latency_passthrough(self, db):
        function = ttm_factor_function("28nm", 10e6, db)
        nominal = self._nominal_values(db, "28nm")
        longer = dict(nominal, LOSAT=8.0)
        assert function(longer) == pytest.approx(function(nominal) + 2.0)

    def test_unavailable_node_rejected_eagerly(self, db):
        from repro.errors import NodeUnavailableError

        with pytest.raises(NodeUnavailableError):
            ttm_factor_function("20nm", 10e6, db)
