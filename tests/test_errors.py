"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestUnknownNodeError:
    def test_message_lists_known_nodes(self):
        error = errors.UnknownNodeError("3nm", ("7nm", "5nm"))
        assert "3nm" in str(error)
        assert "7nm" in str(error)
        assert error.name == "3nm"
        assert error.known == ("7nm", "5nm")

    def test_message_without_known_list(self):
        error = errors.UnknownNodeError("3nm")
        assert "3nm" in str(error)

    def test_is_key_error(self):
        with pytest.raises(KeyError):
            raise errors.UnknownNodeError("3nm")


class TestNodeUnavailableError:
    def test_message_explains_capacity(self):
        error = errors.NodeUnavailableError("20nm")
        assert "20nm" in str(error)
        assert "capacity" in str(error)
        assert error.name == "20nm"


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.UnknownNodeError,
            errors.NodeUnavailableError,
            errors.InvalidDesignError,
            errors.InvalidParameterError,
            errors.CalibrationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)

    def test_one_except_clause_catches_everything(self, model):
        from repro.design.library.a11 import a11

        with pytest.raises(errors.ReproError):
            model.total_weeks(a11("28nm"), -1.0)
        with pytest.raises(errors.ReproError):
            model.foundry.technology["not-a-node"]
