"""API-surface integrity: every exported name resolves, everywhere.

Walks the whole package tree and asserts each module's ``__all__`` is
consistent with its attributes — the kind of drift (renamed function,
forgotten export) that otherwise only surfaces for downstream users.
"""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        names.append(module_info.name)
    return names


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_dunder_all_resolves(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    assert len(set(exported)) == len(exported), "duplicate names in __all__"
    assert list(exported) == sorted(exported), "__all__ should be sorted"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_package_count_sanity():
    """The tree should stay many-small-modules shaped."""
    assert len(MODULES) > 50
