"""Cross-stack property tests: invariants of the whole pipeline.

These tests run hypothesis-generated designs through the full
TTM / CAS / cost stack and assert the model-level invariants DESIGN.md
promises, independent of any particular calibration:

* more chips never ship faster, and never cost less in total;
* less capacity never ships faster;
* adding transistors (NTT) never shrinks TTM or cost;
* adding unverified transistors (NUT) never shrinks tapeout;
* CAS is positive, finite, and falls when a queue appears;
* retargeting preserves transistor accounting;
* the pipelined schedule never loses to the sequential one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import TTMModel
from repro.cost.model import CostModel
from repro.agility.cas import chip_agility_score
from repro.design.library.generic import monolithic_design
from repro.market.conditions import MarketConditions

PRODUCTION_NODES = (
    "250nm", "180nm", "130nm", "90nm", "65nm",
    "40nm", "28nm", "14nm", "7nm", "5nm",
)

nodes = st.sampled_from(PRODUCTION_NODES)
ntts = st.floats(min_value=1e6, max_value=2e10)
volumes = st.floats(min_value=1e3, max_value=5e8)
fractions = st.floats(min_value=0.1, max_value=1.0)


def _design(process: str, ntt: float, nut_fraction: float = 0.1):
    return monolithic_design(
        "prop", process, ntt=ntt, nut=ntt * nut_fraction, min_area_mm2=1.0
    )


@pytest.fixture(scope="module")
def cost_model(db):
    return CostModel(technology=db)


class TestVolumeMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_more_chips_never_faster(self, model, process, ntt, n):
        design = _design(process, ntt)
        assert model.total_weeks(design, 2 * n) >= model.total_weeks(
            design, n
        ) - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_more_chips_never_cheaper_in_total(
        self, model, cost_model, process, ntt, n
    ):
        design = _design(process, ntt)
        assert cost_model.total_usd(design, 2 * n) > cost_model.total_usd(
            design, n
        )

    @settings(max_examples=40, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_amortization_never_raises_per_chip_cost(
        self, model, cost_model, process, ntt, n
    ):
        design = _design(process, ntt)
        small = cost_model.chip_creation_cost(design, n).usd_per_chip
        large = cost_model.chip_creation_cost(design, 10 * n).usd_per_chip
        assert large <= small + 1e-9


class TestCapacityMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(process=nodes, ntt=ntts, fraction=fractions)
    def test_less_capacity_never_faster(self, model, process, ntt, fraction):
        design = _design(process, ntt)
        full = model.total_weeks(design, 1e7)
        reduced = model.at_capacity(fraction).total_weeks(design, 1e7)
        assert reduced >= full - 1e-9


class TestSizeMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_more_transistors_never_faster(self, model, process, ntt, n):
        small = _design(process, ntt)
        big = _design(process, ntt * 2)
        assert model.total_weeks(big, n) >= model.total_weeks(small, n) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(process=nodes, ntt=ntts)
    def test_more_unique_transistors_never_less_tapeout(
        self, model, process, ntt
    ):
        lean = monolithic_design("lean", process, ntt=ntt, nut=ntt * 0.05)
        heavy = monolithic_design("heavy", process, ntt=ntt, nut=ntt * 0.5)
        lean_result = model.time_to_market(lean, 1e6)
        heavy_result = model.time_to_market(heavy, 1e6)
        assert heavy_result.tapeout_weeks >= lean_result.tapeout_weeks


class TestCASInvariants:
    @settings(max_examples=25, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_cas_positive_and_finite(self, model, process, ntt, n):
        result = chip_agility_score(model, _design(process, ntt), n)
        assert 0.0 < result.cas < float("inf")

    @settings(max_examples=25, deadline=None)
    @given(process=nodes, ntt=ntts, queue=st.floats(0.25, 4.0))
    def test_any_queue_reduces_cas(self, model, process, ntt, queue):
        design = _design(process, ntt)
        base = chip_agility_score(model, design, 1e7).cas
        conditions = MarketConditions.nominal().with_queue(process, queue)
        queued = model.with_foundry(model.foundry.with_conditions(conditions))
        assert chip_agility_score(queued, design, 1e7).cas < base


class TestStructuralConsistency:
    @settings(max_examples=25, deadline=None)
    @given(source=nodes, target=nodes, ntt=ntts)
    def test_retarget_preserves_accounting(self, source, target, ntt):
        design = _design(source, ntt)
        ported = design.retarget(target)
        assert ported.ntt_per_chip == design.ntt_per_chip
        assert sum(ported.nut_by_process().values()) == pytest.approx(
            sum(design.nut_by_process().values())
        )

    @settings(max_examples=20, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_pipelined_never_loses_to_sequential(
        self, foundry, process, ntt, n
    ):
        design = _design(process, ntt)
        pipelined = TTMModel(foundry=foundry, schedule="pipelined")
        sequential = TTMModel(foundry=foundry, schedule="sequential")
        assert pipelined.total_weeks(design, n) <= sequential.total_weeks(
            design, n
        ) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(process=nodes, ntt=ntts, n=volumes)
    def test_phase_sum_equals_total(self, model, process, ntt, n):
        result = model.time_to_market(_design(process, ntt), n)
        assert result.total_weeks == pytest.approx(
            sum(weeks for _, weeks in result.phase_breakdown())
        )
