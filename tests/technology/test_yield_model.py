"""Tests for the negative-binomial yield model (Eq. 6)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.technology.yield_model import (
    area_for_target_yield,
    negative_binomial_yield,
    poisson_yield,
    seeds_yield,
)


class TestNegativeBinomialYield:
    def test_zero_area_is_perfect(self):
        assert negative_binomial_yield(0.0, 0.1) == 1.0

    def test_zero_defects_is_perfect(self):
        assert negative_binomial_yield(500.0, 0.0) == 1.0

    def test_paper_250nm_example(self):
        """Sec. 6.2: ~1650 mm^2 at D0 = 0.05 yields ~48%."""
        result = negative_binomial_yield(1654.0, 0.05, alpha=3.0)
        assert result == pytest.approx(0.48, abs=0.02)

    def test_textbook_value(self):
        # A = 1 cm^2, D0 = 0.3, alpha = 3 -> (1.1)^-3.
        assert negative_binomial_yield(100.0, 0.3, alpha=3.0) == pytest.approx(
            1.1 ** -3
        )

    def test_monotone_decreasing_in_area(self):
        areas = [10.0, 50.0, 100.0, 400.0, 1000.0]
        yields = [negative_binomial_yield(a, 0.09) for a in areas]
        assert yields == sorted(yields, reverse=True)

    def test_monotone_decreasing_in_defects(self):
        densities = [0.01, 0.05, 0.1, 0.5]
        yields = [negative_binomial_yield(100.0, d) for d in densities]
        assert yields == sorted(yields, reverse=True)

    def test_negative_area_rejected(self):
        with pytest.raises(InvalidParameterError):
            negative_binomial_yield(-1.0, 0.1)

    def test_negative_defect_density_rejected(self):
        with pytest.raises(InvalidParameterError):
            negative_binomial_yield(1.0, -0.1)

    def test_non_positive_alpha_rejected(self):
        with pytest.raises(InvalidParameterError):
            negative_binomial_yield(1.0, 0.1, alpha=0.0)

    @given(
        area=st.floats(min_value=0.0, max_value=5000.0),
        d0=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_always_a_probability(self, area, d0):
        value = negative_binomial_yield(area, d0)
        assert 0.0 < value <= 1.0

    @given(
        area=st.floats(min_value=1.0, max_value=2000.0),
        d0=st.floats(min_value=0.001, max_value=0.5),
    )
    def test_clustering_more_optimistic_than_poisson(self, area, d0):
        """Finite alpha (clustered defects) always beats Poisson."""
        assert negative_binomial_yield(area, d0) >= poisson_yield(area, d0)

    @given(
        area=st.floats(min_value=1.0, max_value=2000.0),
        d0=st.floats(min_value=0.001, max_value=0.5),
    )
    def test_seeds_most_pessimistic_clustered(self, area, d0):
        """alpha = 1 (Seeds) is the most optimistic of the family."""
        assert seeds_yield(area, d0) >= negative_binomial_yield(area, d0)


class TestPoissonYield:
    def test_matches_exponential(self):
        assert poisson_yield(100.0, 0.3) == pytest.approx(math.exp(-0.3))

    def test_large_alpha_converges_to_poisson(self):
        nb = negative_binomial_yield(100.0, 0.3, alpha=1e7)
        assert nb == pytest.approx(poisson_yield(100.0, 0.3), rel=1e-5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            poisson_yield(-1.0, 0.1)
        with pytest.raises(InvalidParameterError):
            poisson_yield(1.0, -0.1)


class TestAreaInversion:
    @given(
        target=st.floats(min_value=0.05, max_value=0.999),
        d0=st.floats(min_value=0.01, max_value=0.5),
    )
    def test_round_trip(self, target, d0):
        area = area_for_target_yield(target, d0)
        assert negative_binomial_yield(area, d0) == pytest.approx(target, rel=1e-9)

    def test_full_yield_needs_zero_area(self):
        assert area_for_target_yield(1.0, 0.1) == pytest.approx(0.0)

    def test_invalid_target_rejected(self):
        with pytest.raises(InvalidParameterError):
            area_for_target_yield(0.0, 0.1)
        with pytest.raises(InvalidParameterError):
            area_for_target_yield(1.5, 0.1)

    def test_zero_defects_not_invertible(self):
        with pytest.raises(InvalidParameterError):
            area_for_target_yield(0.5, 0.0)
