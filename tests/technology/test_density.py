"""Tests for the transistor-density table and curve."""

import pytest

from repro.technology.database import ROADMAP
from repro.technology.density import (
    DENSITY_MTR_PER_MM2,
    density_curve,
    density_for,
    implied_die_area_mm2,
)


class TestDensityTable:
    def test_covers_the_whole_roadmap(self):
        assert set(DENSITY_MTR_PER_MM2) == set(ROADMAP)

    def test_strictly_increasing_along_roadmap(self):
        values = [DENSITY_MTR_PER_MM2[name] for name in ROADMAP]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_a11_area_anchor(self):
        """4.3 B transistors at 10 nm -> ~88 mm^2."""
        assert implied_die_area_mm2(4.3e9, "10nm") == pytest.approx(88.0, rel=0.01)

    def test_250nm_implied_area_matches_paper_example(self):
        """The Sec. 6.2 example requires ~1650 mm^2 at 250 nm."""
        assert implied_die_area_mm2(4.3e9, "250nm") == pytest.approx(1654, rel=0.01)

    def test_wafer_ratio_28_vs_14(self):
        """Paper: the A11 needs ~3.16x more wafers at 28 nm than 14 nm.

        To first order the ratio is the density ratio; ours lands in the
        same band (the paper's exact value folds in yield differences).
        """
        ratio = DENSITY_MTR_PER_MM2["14nm"] / DENSITY_MTR_PER_MM2["28nm"]
        assert 2.0 < ratio < 3.5

    def test_density_for_lookup(self):
        assert density_for("7nm") == DENSITY_MTR_PER_MM2["7nm"]


class TestDensityCurve:
    def test_interpolates_between_roadmap_points(self):
        index_by_name = {name: i for i, name in enumerate(ROADMAP)}
        curve = density_curve(index_by_name)
        for name, index in index_by_name.items():
            assert curve.predict(float(index)) == pytest.approx(
                DENSITY_MTR_PER_MM2[name], rel=1e-9
            )

    def test_hypothetical_12nm_between_14_and_10(self):
        index_by_name = {name: i for i, name in enumerate(ROADMAP)}
        curve = density_curve(index_by_name)
        value = curve.predict(index_by_name["14nm"] + 0.5)
        assert DENSITY_MTR_PER_MM2["14nm"] < value < DENSITY_MTR_PER_MM2["10nm"]

    def test_subset_of_nodes(self):
        curve = density_curve({"28nm": 0, "14nm": 1})
        assert curve.predict(0.0) == pytest.approx(DENSITY_MTR_PER_MM2["28nm"])
