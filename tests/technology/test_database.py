"""Tests for the default technology database and its paper anchors."""

import pytest

from repro.errors import (
    InvalidParameterError,
    NodeUnavailableError,
    UnknownNodeError,
)
from repro.technology.database import (
    ROADMAP,
    TAP_LATENCY_WEEKS,
    TechnologyDatabase,
    WAFER_RATE_KWPM,
)
from repro.technology.node import ProcessNode


class TestRoadmapIntegrity:
    def test_twelve_nodes(self, db):
        assert len(db) == 12
        assert db.names == ROADMAP

    def test_indices_are_roadmap_positions(self, db):
        for index, name in enumerate(ROADMAP):
            assert db[name].index == index

    def test_density_monotone_increasing(self, db):
        densities = [node.density_mtr_per_mm2 for node in db.nodes]
        assert densities == sorted(densities)

    def test_tapeout_effort_monotone_increasing(self, db):
        efforts = [node.tapeout_effort for node in db.nodes]
        assert efforts == sorted(efforts)

    def test_testing_effort_decreases_toward_advanced(self, db):
        efforts = [node.testing_effort for node in db.nodes]
        assert efforts == sorted(efforts, reverse=True)

    def test_mask_costs_monotone_increasing(self, db):
        masks = [node.mask_set_cost_usd for node in db.nodes]
        assert masks == sorted(masks)

    def test_wafer_costs_monotone_increasing(self, db):
        costs = [node.wafer_cost_usd for node in db.nodes]
        assert costs == sorted(costs)


class TestPaperAnchors:
    def test_table2_wafer_rates_verbatim(self, db):
        for name, rate in WAFER_RATE_KWPM.items():
            assert db[name].wafer_rate_kwpm == rate

    def test_20nm_and_10nm_out_of_production(self, db):
        assert not db["20nm"].in_production
        assert not db["10nm"].in_production
        assert len(db.production_nodes()) == 10

    def test_latency_schedule(self, db):
        """12 weeks for legacy nodes, rising from 20 nm to 20 weeks @5nm."""
        for name in ("250nm", "180nm", "130nm", "90nm", "65nm", "40nm", "28nm"):
            assert db[name].fab_latency_weeks == 12.0
        assert db["5nm"].fab_latency_weeks == 20.0
        latencies = [node.fab_latency_weeks for node in db.nodes]
        assert latencies == sorted(latencies)

    def test_tap_latency_is_six_weeks(self):
        assert TAP_LATENCY_WEEKS == 6.0

    def test_table4_tapeout_anchor_14nm(self, db):
        """475 M NUT -> 3.6 weeks with 100 engineers at 14 nm."""
        weeks = 475e6 * db["14nm"].tapeout_effort / 100.0
        assert weeks == pytest.approx(3.6, abs=0.05)

    def test_table4_tapeout_anchor_7nm(self, db):
        """475 M NUT -> 10.4 weeks with 100 engineers at 7 nm."""
        weeks = 475e6 * db["7nm"].tapeout_effort / 100.0
        assert weeks == pytest.approx(10.4, abs=0.1)

    def test_a11_die_area_at_10nm(self, db):
        """4.3 B transistors -> ~88 mm^2 at 10 nm (AnandTech, Sec. 6.2)."""
        area = 4.3e9 / db["10nm"].density_transistors_per_mm2
        assert area == pytest.approx(88.0, rel=0.01)

    def test_defect_density_rises_from_20nm(self, db):
        assert db["28nm"].defect_density_per_cm2 == db["250nm"].defect_density_per_cm2
        assert db["20nm"].defect_density_per_cm2 > db["28nm"].defect_density_per_cm2
        assert db["5nm"].defect_density_per_cm2 >= db["7nm"].defect_density_per_cm2


class TestAccessors:
    def test_unknown_node_raises_with_known_list(self, db):
        with pytest.raises(UnknownNodeError) as excinfo:
            db["3nm"]
        assert "3nm" in str(excinfo.value)
        assert "7nm" in str(excinfo.value)

    def test_require_production_rejects_idle_nodes(self, db):
        with pytest.raises(NodeUnavailableError):
            db.require_production("20nm")
        assert db.require_production("7nm").name == "7nm"

    def test_mapping_protocol(self, db):
        assert "7nm" in db
        assert list(db) == list(ROADMAP)
        assert len(list(db.values())) == 12


class TestDerivation:
    def test_override_changes_only_target(self, db):
        derived = db.override({"7nm": {"defect_density_per_cm2": 0.5}})
        assert derived["7nm"].defect_density_per_cm2 == 0.5
        assert db["7nm"].defect_density_per_cm2 != 0.5
        assert derived["5nm"] == db["5nm"]

    def test_override_unknown_node_rejected(self, db):
        with pytest.raises(UnknownNodeError):
            db.override({"3nm": {"defect_density_per_cm2": 0.5}})

    def test_scale_wafer_rates(self, db):
        derived = db.scale_wafer_rates({"7nm": 0.5})
        assert derived["7nm"].wafer_rate_kwpm == pytest.approx(126.0)

    def test_scale_negative_fraction_rejected(self, db):
        with pytest.raises(InvalidParameterError):
            db.scale_wafer_rates({"7nm": -0.1})

    def test_extra_nodes_appended(self, db):
        extra = db["14nm"].with_overrides(name="12nm", nanometers=12.0)
        derived = db.override({}, extra_nodes=[extra])
        assert "12nm" in derived
        assert len(derived) == 13

    def test_duplicate_names_rejected(self, db):
        with pytest.raises(InvalidParameterError):
            TechnologyDatabase(list(db.nodes) + [db["7nm"]])


class TestProcessNodeValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="test",
            nanometers=10.0,
            index=0,
            density_mtr_per_mm2=50.0,
            defect_density_per_cm2=0.1,
            wafer_rate_kwpm=100.0,
            fab_latency_weeks=12.0,
            tapeout_effort=1e-7,
            testing_effort=1e-17,
            packaging_effort=1e-10,
            wafer_cost_usd=5000.0,
            mask_set_cost_usd=1e6,
            tapeout_fixed_cost_usd=1e5,
        )
        base.update(overrides)
        return base

    def test_valid_node_constructs(self):
        node = ProcessNode(**self._kwargs())
        assert node.in_production
        assert node.density_transistors_per_mm2 == 50e6

    def test_rate_conversion(self):
        node = ProcessNode(**self._kwargs(wafer_rate_kwpm=100.0))
        # 100 kW/month ~= 22,983 wafers/week.
        assert node.max_wafer_rate_per_week == pytest.approx(22983, rel=0.001)

    @pytest.mark.parametrize(
        "field",
        [
            "nanometers",
            "density_mtr_per_mm2",
            "fab_latency_weeks",
            "tapeout_effort",
            "testing_effort",
            "packaging_effort",
            "wafer_cost_usd",
            "mask_set_cost_usd",
        ],
    )
    def test_positive_fields_rejected_at_zero(self, field):
        with pytest.raises(InvalidParameterError):
            ProcessNode(**self._kwargs(**{field: 0.0}))

    def test_negative_defect_density_rejected(self):
        with pytest.raises(InvalidParameterError):
            ProcessNode(**self._kwargs(defect_density_per_cm2=-0.1))

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            ProcessNode(**self._kwargs(name=""))

    def test_with_overrides_is_a_copy(self):
        node = ProcessNode(**self._kwargs())
        derived = node.with_overrides(wafer_rate_kwpm=1.0)
        assert node.wafer_rate_kwpm == 100.0
        assert derived.wafer_rate_kwpm == 1.0
