"""Tests for wafer geometry and wafer-demand accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.technology.wafer import (
    dies_per_wafer,
    dies_per_wafer_simple,
    good_dies_per_wafer,
    wafer_area_mm2,
    wafers_required,
)


class TestDiesPerWafer:
    def test_paper_250nm_example(self):
        """Sec. 6.2: a ~1650 mm^2 die fits ~43 gross dies on 300 mm."""
        assert dies_per_wafer_simple(1654.0) == pytest.approx(42.7, abs=0.5)

    def test_simple_is_area_ratio(self):
        assert dies_per_wafer_simple(100.0) == pytest.approx(
            wafer_area_mm2() / 100.0
        )

    def test_edge_correction_is_pessimistic(self):
        for area in (10.0, 50.0, 100.0, 500.0, 1500.0):
            assert dies_per_wafer(area) < dies_per_wafer_simple(area)

    def test_known_edge_corrected_value(self):
        # 100 mm^2 on 300 mm: 706.86 - pi*300/sqrt(200) = 640.2.
        assert dies_per_wafer(100.0) == pytest.approx(640.2, abs=0.5)

    def test_giant_die_still_fits_once(self):
        area = wafer_area_mm2() * 0.9
        assert dies_per_wafer(area) == 1.0

    def test_die_larger_than_wafer_yields_zero(self):
        assert dies_per_wafer(wafer_area_mm2() * 1.1) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            dies_per_wafer_simple(0.0)
        with pytest.raises(InvalidParameterError):
            dies_per_wafer(100.0, wafer_diameter_mm=0.0)

    @given(area=st.floats(min_value=1.0, max_value=5000.0))
    def test_monotone_in_area(self, area):
        assert dies_per_wafer_simple(area) >= dies_per_wafer_simple(area * 2) * 2 * 0.999


class TestGoodDiesPerWafer:
    def test_scales_with_yield(self):
        full = good_dies_per_wafer(100.0, 1.0)
        half = good_dies_per_wafer(100.0, 0.5)
        assert half == pytest.approx(full / 2.0)

    def test_yield_bounds_enforced(self):
        with pytest.raises(InvalidParameterError):
            good_dies_per_wafer(100.0, 1.5)
        with pytest.raises(InvalidParameterError):
            good_dies_per_wafer(100.0, -0.1)

    def test_edge_corrected_option(self):
        assert good_dies_per_wafer(100.0, 1.0, edge_corrected=True) < (
            good_dies_per_wafer(100.0, 1.0)
        )


class TestWafersRequired:
    def test_zero_demand_needs_no_wafers(self):
        assert wafers_required(0.0, 100.0, 0.9) == 0.0

    def test_paper_250nm_wafer_count(self):
        """10 M chips at 43 gross dies and 48% yield -> ~487 K wafers."""
        wafers = wafers_required(10e6, 1654.0, 0.48)
        assert wafers == pytest.approx(487_000, rel=0.02)

    def test_linear_in_demand(self):
        one = wafers_required(1e6, 100.0, 0.9)
        ten = wafers_required(10e6, 100.0, 0.9)
        assert ten == pytest.approx(10 * one)

    def test_inverse_in_yield(self):
        high = wafers_required(1e6, 100.0, 0.9)
        low = wafers_required(1e6, 100.0, 0.45)
        assert low == pytest.approx(2 * high)

    def test_zero_yield_rejected(self):
        with pytest.raises(InvalidParameterError):
            wafers_required(1e6, 100.0, 0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(InvalidParameterError):
            wafers_required(-1.0, 100.0, 0.9)

    @given(
        dies=st.floats(min_value=1.0, max_value=1e9),
        area=st.floats(min_value=1.0, max_value=2000.0),
        die_yield=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_round_trip_against_good_dies(self, dies, area, die_yield):
        """wafers * good-dies-per-wafer recovers the demand exactly."""
        wafers = wafers_required(dies, area, die_yield)
        produced = wafers * good_dies_per_wafer(area, die_yield)
        assert produced == pytest.approx(dies, rel=1e-9)
