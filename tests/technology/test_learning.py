"""Tests for yield learning curves and the ramp-timing experiment."""

import pytest

from repro.errors import InvalidParameterError
from repro.technology.learning import (
    YieldLearningCurve,
    delivery_week,
    optimal_entry_month,
    technology_at_maturity,
)


def _curve(initial=0.4, mature=0.07, tau=6.0):
    return YieldLearningCurve(
        initial_d0=initial, mature_d0=mature, time_constant_months=tau
    )


class TestCurve:
    def test_boundary_values(self):
        curve = _curve()
        assert curve.defect_density_at(0.0) == pytest.approx(0.4)
        assert curve.defect_density_at(1e6) == pytest.approx(0.07)

    def test_monotone_decreasing(self):
        curve = _curve()
        samples = [curve.defect_density_at(m) for m in range(0, 48, 3)]
        assert samples == sorted(samples, reverse=True)

    def test_time_constant_semantics(self):
        """One tau closes ~63% of the gap."""
        curve = _curve()
        expected = 0.07 + (0.4 - 0.07) * 0.36788
        assert curve.defect_density_at(6.0) == pytest.approx(expected, rel=1e-3)

    def test_months_to_reach_round_trip(self):
        curve = _curve()
        months = curve.months_to_reach(0.15)
        assert curve.defect_density_at(months) == pytest.approx(0.15)

    def test_months_to_reach_validation(self):
        curve = _curve()
        with pytest.raises(InvalidParameterError):
            curve.months_to_reach(0.05)  # below mature
        with pytest.raises(InvalidParameterError):
            curve.months_to_reach(0.5)  # above initial

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            YieldLearningCurve(0.05, 0.1, 6.0)  # improves backwards
        with pytest.raises(InvalidParameterError):
            YieldLearningCurve(0.4, -0.1, 6.0)
        with pytest.raises(InvalidParameterError):
            YieldLearningCurve(0.4, 0.07, 0.0)
        with pytest.raises(InvalidParameterError):
            _curve().defect_density_at(-1.0)


class TestTechnologyAtMaturity:
    def test_overrides_only_target_node(self, db):
        derived = technology_at_maturity(db, "5nm", _curve(), 0.0)
        assert derived["5nm"].defect_density_per_cm2 == pytest.approx(0.4)
        assert derived["7nm"] == db["7nm"]

    def test_converges_to_mature(self, db):
        derived = technology_at_maturity(db, "5nm", _curve(), 240.0)
        assert derived["5nm"].defect_density_per_cm2 == pytest.approx(
            0.07, rel=1e-3
        )


class TestEntryOptimization:
    def test_delivery_week_composition(self):
        """delivery = wait (in weeks) + TTM at that maturity."""
        weeks_per_month = 365.25 / 7.0 / 12.0
        assert delivery_week(12.0, lambda m: 20.0) == pytest.approx(
            12.0 * weeks_per_month + 20.0
        )

    def test_optimal_entry_prefers_interior_point(self):
        """A steep TTM improvement beats waiting only up to a point."""
        ttm = lambda month: 100.0 * (0.5 + 0.5 * 2.718 ** (-month / 3.0))  # noqa: E731
        month, week = optimal_entry_month(ttm, [0, 2, 4, 6, 12, 24])
        assert 0 < month < 24
        assert week < delivery_week(0.0, ttm)

    def test_flat_ttm_means_order_now(self):
        month, _ = optimal_entry_month(lambda m: 30.0, [0, 3, 6])
        assert month == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            optimal_entry_month(lambda m: 1.0, [])
        with pytest.raises(InvalidParameterError):
            delivery_week(-1.0, lambda m: 1.0)


class TestRampExperiment:
    @pytest.fixture(scope="class")
    def result(self, model, cost_model):
        from repro.experiments import ramp_timing

        return ramp_timing.run(model, cost_model)

    def test_yield_improves_with_waiting(self, result):
        yields = [p.die_yield for p in result.points]
        assert yields == sorted(yields)

    def test_ttm_shrinks_with_waiting(self, result):
        ttms = [p.ttm_weeks for p in result.points]
        assert ttms == sorted(ttms, reverse=True)

    def test_cost_shrinks_with_waiting(self, result):
        costs = [p.cost_usd for p in result.points]
        assert costs == sorted(costs, reverse=True)

    def test_optimum_is_interior(self, result):
        """Neither day-one ordering nor indefinite waiting wins."""
        best = result.best
        months = [p.entry_month for p in result.points]
        assert min(months) < best.entry_month < max(months)

    def test_point_lookup(self, result):
        assert result.point(0.0).entry_month == 0.0
        with pytest.raises(KeyError):
            result.point(999.0)

    def test_table_renders(self, result):
        assert "entry month" in result.table()
