"""Tests for technology-database linting."""

import pytest

from repro.technology.validate import ERROR, WARNING, assert_clean, lint_database


class TestDefaultDatabase:
    def test_default_database_has_no_errors(self, db):
        errors = [f for f in lint_database(db) if f.severity == ERROR]
        assert errors == []

    def test_assert_clean_passes_default(self, db):
        assert_clean(db)


class TestDetections:
    def test_inverted_density_is_an_error(self, db):
        broken = db.override({"5nm": {"density_mtr_per_mm2": 1.0}})
        findings = lint_database(broken)
        assert any(
            f.severity == ERROR and "density" in f.message and f.node == "5nm"
            for f in findings
        )
        with pytest.raises(ValueError, match="density"):
            assert_clean(broken)

    def test_decreasing_tapeout_effort_is_an_error(self, db):
        broken = db.override({"5nm": {"tapeout_effort": 1e-9}})
        findings = lint_database(broken)
        assert any(
            f.severity == ERROR and "tapeout effort" in f.message
            for f in findings
        )

    def test_latency_in_days_caught(self, db):
        broken = db.override({"7nm": {"fab_latency_weeks": 126.0}})
        findings = lint_database(broken)
        assert any(
            f.severity == ERROR and "days" in f.message and f.node == "7nm"
            for f in findings
        )

    def test_absurd_defect_density_caught(self, db):
        broken = db.override({"7nm": {"defect_density_per_cm2": 50.0}})
        assert any(
            f.severity == ERROR and "defect density" in f.message
            for f in lint_database(broken)
        )

    def test_wafer_diameter_in_inches_caught(self, db):
        broken = db.override({"7nm": {"wafer_diameter_mm": 12.0}})
        assert any(
            f.severity == ERROR and "diameter" in f.message
            for f in lint_database(broken)
        )

    def test_shrinking_latency_is_a_warning(self, db):
        odd = db.override({"5nm": {"fab_latency_weeks": 10.0}})
        findings = lint_database(odd)
        assert any(
            f.severity == WARNING and "latency" in f.message for f in findings
        )
        assert_clean(odd)  # warnings do not raise

    def test_dirty_mature_node_is_a_warning(self, db):
        odd = db.override({"250nm": {"defect_density_per_cm2": 0.3}})
        assert any(
            f.severity == WARNING and f.node == "250nm"
            for f in lint_database(odd)
        )

    def test_cheaper_advanced_wafers_is_a_warning(self, db):
        odd = db.override({"5nm": {"wafer_cost_usd": 100.0}})
        assert any(
            f.severity == WARNING and "wafer cost" in f.message
            for f in lint_database(odd)
        )

    def test_finding_str_is_readable(self, db):
        broken = db.override({"5nm": {"density_mtr_per_mm2": 1.0}})
        text = str(lint_database(broken)[0])
        assert "[error]" in text or "[warning]" in text
