"""Tests for the regression fits behind the effort curves."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalibrationError, InvalidParameterError
from repro.technology.effort import (
    LogLinearInterpolator,
    engineering_weeks_to_calendar_weeks,
    fit_exponential,
    fit_linear,
)


class TestLinearFit:
    def test_recovers_exact_line(self):
        points = [(x, 2.0 + 3.0 * x) for x in (0.0, 1.0, 4.0, 10.0)]
        fit = fit_linear(points)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.slope == pytest.approx(3.0)

    def test_two_points_are_interpolated_exactly(self):
        fit = fit_linear([(1.0, 5.0), (3.0, 9.0)])
        assert fit.predict(2.0) == pytest.approx(7.0)

    def test_least_squares_behaviour(self):
        # Symmetric noise around y = x leaves the fit on y = x.
        fit = fit_linear([(0.0, 0.5), (0.0, -0.5), (2.0, 2.5), (2.0, 1.5)])
        assert fit.slope == pytest.approx(1.0)
        assert fit.intercept == pytest.approx(0.0)

    def test_needs_two_points(self):
        with pytest.raises(CalibrationError):
            fit_linear([(1.0, 1.0)])

    def test_needs_distinct_x(self):
        with pytest.raises(CalibrationError):
            fit_linear([(1.0, 1.0), (1.0, 2.0)])

    def test_callable_alias(self):
        fit = fit_linear([(0.0, 1.0), (1.0, 2.0)])
        assert fit(0.5) == fit.predict(0.5)


class TestExponentialFit:
    def test_recovers_exact_exponential(self):
        fit = fit_exponential(
            [(x, 0.5 * math.exp(0.3 * x)) for x in (0.0, 1.0, 2.0, 5.0)]
        )
        assert fit.scale == pytest.approx(0.5, rel=1e-9)
        assert fit.rate == pytest.approx(0.3, rel=1e-9)

    def test_doubling_interval(self):
        fit = fit_exponential([(0.0, 1.0), (1.0, 2.0)])
        assert fit.doubling_interval == pytest.approx(1.0)

    def test_flat_fit_never_doubles(self):
        fit = fit_exponential([(0.0, 2.0), (1.0, 2.0)])
        assert fit.doubling_interval == math.inf

    def test_rejects_non_positive_values(self):
        with pytest.raises(CalibrationError):
            fit_exponential([(0.0, 1.0), (1.0, 0.0)])

    @given(
        scale=st.floats(min_value=1e-9, max_value=1e3),
        rate=st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_round_trip_arbitrary_parameters(self, scale, rate):
        fit = fit_exponential(
            [(x, scale * math.exp(rate * x)) for x in (0.0, 2.0, 5.0)]
        )
        assert fit.predict(3.0) == pytest.approx(
            scale * math.exp(rate * 3.0), rel=1e-6
        )


class TestLogLinearInterpolator:
    def test_exact_at_anchors(self):
        points = [(0.0, 1e-8), (4.0, 5e-8), (11.0, 4e-6)]
        curve = LogLinearInterpolator.from_points(points)
        for x, y in points:
            assert curve.predict(x) == pytest.approx(y, rel=1e-12)

    def test_exponential_between_anchors(self):
        curve = LogLinearInterpolator.from_points([(0.0, 1.0), (2.0, 4.0)])
        assert curve.predict(1.0) == pytest.approx(2.0)

    def test_extrapolates_with_end_slopes(self):
        curve = LogLinearInterpolator.from_points([(0.0, 1.0), (1.0, 2.0)])
        assert curve.predict(2.0) == pytest.approx(4.0)
        assert curve.predict(-1.0) == pytest.approx(0.5)

    def test_monotone_anchors_give_monotone_curve(self):
        curve = LogLinearInterpolator.from_points(
            [(0.0, 1.0), (1.0, 3.0), (2.0, 10.0), (3.0, 40.0)]
        )
        samples = [curve.predict(x / 4.0) for x in range(13)]
        assert samples == sorted(samples)

    def test_rejects_duplicate_anchor_x(self):
        with pytest.raises(CalibrationError):
            LogLinearInterpolator.from_points([(0.0, 1.0), (0.0, 2.0)])

    def test_rejects_non_positive_y(self):
        with pytest.raises(CalibrationError):
            LogLinearInterpolator.from_points([(0.0, 1.0), (1.0, -2.0)])

    def test_unsorted_input_accepted(self):
        curve = LogLinearInterpolator.from_points([(2.0, 4.0), (0.0, 1.0)])
        assert curve.predict(1.0) == pytest.approx(2.0)


class TestCalendarConversion:
    def test_division_by_team_size(self):
        assert engineering_weeks_to_calendar_weeks(400.0, 100) == 4.0

    def test_zero_effort(self):
        assert engineering_weeks_to_calendar_weeks(0.0, 10) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            engineering_weeks_to_calendar_weeks(10.0, 0)
        with pytest.raises(InvalidParameterError):
            engineering_weeks_to_calendar_weeks(-1.0, 10)
