"""Tests for the core-salvage (binning) yield extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.technology.salvage import (
    SalvageSpec,
    binomial_tail,
    expected_good_units,
    salvage_gain,
    salvage_yield,
)
from repro.technology.yield_model import negative_binomial_yield


def _spec(n=16, k=14, fraction=0.8):
    return SalvageSpec(
        n_units=n, required_units=k, unit_area_fraction=fraction
    )


class TestBinomialTail:
    def test_certain_events(self):
        assert binomial_tail(10, 0, 0.3) == pytest.approx(1.0)
        assert binomial_tail(10, 10, 1.0) == pytest.approx(1.0)

    def test_known_value(self):
        # P(X >= 1) for Bin(2, 0.5) = 0.75.
        assert binomial_tail(2, 1, 0.5) == pytest.approx(0.75)

    def test_monotone_in_threshold(self):
        values = [binomial_tail(16, k, 0.9) for k in range(17)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            binomial_tail(4, 5, 0.5)
        with pytest.raises(InvalidParameterError):
            binomial_tail(4, 2, 1.5)

    @given(
        n=st.integers(1, 24),
        k=st.integers(0, 24),
        p=st.floats(0.0, 1.0),
    )
    def test_always_a_probability(self, n, k, p):
        if k > n:
            return
        assert 0.0 <= binomial_tail(n, k, p) <= 1.0


class TestSalvageSpec:
    def test_redundancy(self):
        assert _spec(16, 14).redundancy == 2

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SalvageSpec(n_units=0, required_units=1, unit_area_fraction=0.5)
        with pytest.raises(InvalidParameterError):
            SalvageSpec(n_units=4, required_units=5, unit_area_fraction=0.5)
        with pytest.raises(InvalidParameterError):
            SalvageSpec(n_units=4, required_units=2, unit_area_fraction=0.0)


class TestSalvageYield:
    def test_requiring_all_units_close_to_eq6(self):
        """Zero redundancy approximates Eq. 6 from below: the
        independent-sub-area partition ignores defect clustering, which
        costs a few percent at most (see module docstring)."""
        spec = _spec(16, 16, 1.0)
        for area in (50.0, 200.0, 800.0):
            baseline = negative_binomial_yield(area, 0.09)
            approximated = salvage_yield(area, 0.09, spec)
            assert approximated <= baseline + 1e-12
            assert approximated >= 0.90 * baseline

    def test_salvage_never_hurts(self):
        base = negative_binomial_yield(400.0, 0.09)
        assert salvage_yield(400.0, 0.09, _spec(16, 14)) >= base

    def test_more_redundancy_more_yield(self):
        yields = [
            salvage_yield(600.0, 0.09, _spec(16, k)) for k in range(16, 8, -1)
        ]
        assert yields == sorted(yields)

    def test_big_dies_gain_most(self):
        """Salvage matters when whole-die yield is poor."""
        small_gain = salvage_gain(50.0, 0.09, _spec())
        big_gain = salvage_gain(800.0, 0.09, _spec())
        assert big_gain > small_gain >= 1.0

    def test_uncore_defects_still_fatal(self):
        """With a tiny salvageable fraction, salvage barely helps."""
        barely = salvage_yield(600.0, 0.09, _spec(16, 14, fraction=0.05))
        base = negative_binomial_yield(600.0, 0.09)
        assert barely == pytest.approx(base, rel=0.05)

    def test_perfect_process_perfect_yield(self):
        assert salvage_yield(600.0, 0.0, _spec()) == pytest.approx(1.0)

    @given(
        area=st.floats(min_value=1.0, max_value=1500.0),
        d0=st.floats(min_value=0.0, max_value=0.5),
        redundancy=st.integers(0, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_salvage_bounded_and_ordered(self, area, d0, redundancy):
        spec = _spec(16, 16 - redundancy, 0.8)
        value = salvage_yield(area, d0, spec)
        assert 0.0 < value <= 1.0
        stricter = _spec(16, min(16 - redundancy + 1, 16), 0.8)
        assert value >= salvage_yield(area, d0, stricter) - 1e-12


class TestExpectedGoodUnits:
    def test_perfect_process(self):
        assert expected_good_units(600.0, 0.0, _spec()) == pytest.approx(16.0)

    def test_degrades_with_defects(self):
        good = expected_good_units(600.0, 0.05, _spec())
        worse = expected_good_units(600.0, 0.5, _spec())
        assert 0.0 < worse < good < 16.0


class TestDieIntegration:
    def test_salvage_raises_die_yield(self, db):
        from repro.design.library.ariane import ariane_manycore
        from repro.design.library import ariane_manycore_salvage

        base = ariane_manycore("7nm", cores=16, icache_kb=512, dcache_kb=1024)
        salvaged = ariane_manycore_salvage(
            "7nm", cores=16, required_cores=14, icache_kb=512, dcache_kb=1024
        )
        node = db["7nm"]
        assert salvaged.dies[0].yield_on(node) > base.dies[0].yield_on(node)

    def test_salvage_cuts_wafer_demand_and_ttm(self, model):
        from repro.design.library.ariane import ariane_manycore
        from repro.design.library import ariane_manycore_salvage

        base = ariane_manycore("7nm", cores=16, icache_kb=512, dcache_kb=1024)
        salvaged = ariane_manycore_salvage(
            "7nm", cores=16, required_cores=14, icache_kb=512, dcache_kb=1024
        )
        assert sum(model.wafer_demand(salvaged, 1e8).values()) < sum(
            model.wafer_demand(base, 1e8).values()
        )
        assert model.total_weeks(salvaged, 1e8) < model.total_weeks(base, 1e8)

    def test_salvage_and_override_mutually_exclusive(self):
        from repro.design.die import Die
        from repro.errors import InvalidDesignError
        from repro.technology.salvage import SalvageSpec

        with pytest.raises(InvalidDesignError):
            Die(
                name="bad",
                process="7nm",
                area_mm2=100.0,
                yield_override=0.9,
                salvage=SalvageSpec(
                    n_units=4, required_units=3, unit_area_fraction=0.5
                ),
            )
