"""Tests for the Fig. 14 split-study optimizer."""

import pytest

from repro.design.library.raven import raven_multicore
from repro.errors import InvalidParameterError
from repro.multiprocess.optimizer import (
    best_split_for_pair,
    headline_comparison,
    run_split_study,
)

NODES = ("65nm", "40nm", "28nm")
GRID = tuple(s / 10 for s in range(1, 11))


@pytest.fixture(scope="module")
def study(model, cost_model):
    return run_split_study(
        raven_multicore, NODES, model, cost_model, 1e9, split_grid=GRID
    )


class TestStudyStructure:
    def test_all_pairs_plus_diagonal(self, study):
        # 3 singles + 3 unordered pairs.
        assert len(study.pairs) == 6
        assert ("28nm", "28nm") in study.pairs
        assert ("28nm", "40nm") in study.pairs
        assert ("40nm", "28nm") not in study.pairs

    def test_diagonal_is_single_process(self, study):
        singles = study.single_process_results()
        assert set(singles) == set(NODES)
        for result in singles.values():
            assert result.is_single_process

    def test_best_split_maximizes_cas_on_grid(self, model, cost_model):
        from repro.multiprocess.split import evaluate_split, make_plan

        result = best_split_for_pair(
            raven_multicore, "28nm", "40nm", model, cost_model, 1e9, GRID
        )
        for split in GRID[:-1]:
            manual = evaluate_split(
                make_plan(raven_multicore, "28nm", "40nm", split),
                model,
                cost_model,
                1e9,
            )
            assert result.best.cas >= manual.cas - 1e-12

    def test_picks_have_expected_metrics(self, study):
        fastest = study.fastest()
        assert fastest.best.ttm_weeks == min(
            r.best.ttm_weeks for r in study.pairs.values()
        )
        cheapest = study.cheapest()
        assert cheapest.best.cost_usd == min(
            r.best.cost_usd for r in study.pairs.values()
        )
        assert study.most_agile().best.cas == max(
            r.best.cas for r in study.pairs.values()
        )


class TestPaperFindings:
    def test_fastest_combo_is_28_40(self, study):
        """Sec. 7: the 28 nm + 40 nm combination is fastest to market."""
        fastest = study.fastest()
        assert {fastest.primary, fastest.secondary} == {"28nm", "40nm"}

    def test_multi_process_beats_singles_on_ttm(self, study):
        singles_best = min(
            r.best.ttm_weeks for r in study.single_process_results().values()
        )
        assert study.fastest().best.ttm_weeks < singles_best

    def test_headline_directions(self, study):
        headline = headline_comparison(study)
        assert headline["agility_gain"] > 0.0
        assert headline["ttm_gain_vs_cheapest"] > 0.0
        assert headline["cost_increase"] > 0.0
        assert headline["cost_increase"] < headline["agility_gain"]


class TestValidation:
    def test_empty_grid_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError):
            best_split_for_pair(
                raven_multicore, "28nm", "40nm", model, cost_model, 1e9, ()
            )

    def test_duplicate_nodes_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError):
            run_split_study(
                raven_multicore,
                ("28nm", "28nm"),
                model,
                cost_model,
                1e9,
                split_grid=GRID,
            )
