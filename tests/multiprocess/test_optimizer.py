"""Tests for the Fig. 14 split-study optimizer."""

import pytest

from repro.design.library.raven import raven_multicore
from repro.errors import InvalidParameterError
from repro.multiprocess.optimizer import (
    SplitStudy,
    best_split_for_pair,
    headline_comparison,
    run_split_study,
)

NODES = ("65nm", "40nm", "28nm")
GRID = tuple(s / 10 for s in range(1, 11))


@pytest.fixture(scope="module")
def study(model, cost_model):
    return run_split_study(
        raven_multicore, NODES, model, cost_model, 1e9, split_grid=GRID
    )


class TestStudyStructure:
    def test_all_pairs_plus_diagonal(self, study):
        # 3 singles + 3 unordered pairs.
        assert len(study.pairs) == 6
        assert ("28nm", "28nm") in study.pairs
        assert ("28nm", "40nm") in study.pairs
        assert ("40nm", "28nm") not in study.pairs

    def test_diagonal_is_single_process(self, study):
        singles = study.single_process_results()
        assert set(singles) == set(NODES)
        for result in singles.values():
            assert result.is_single_process

    def test_best_split_maximizes_cas_on_grid(self, model, cost_model):
        from repro.multiprocess.split import evaluate_split, make_plan

        result = best_split_for_pair(
            raven_multicore, "28nm", "40nm", model, cost_model, 1e9, GRID
        )
        for split in GRID[:-1]:
            manual = evaluate_split(
                make_plan(raven_multicore, "28nm", "40nm", split),
                model,
                cost_model,
                1e9,
            )
            assert result.best.cas >= manual.cas - 1e-12

    def test_picks_have_expected_metrics(self, study):
        fastest = study.fastest()
        assert fastest.best.ttm_weeks == min(
            r.best.ttm_weeks for r in study.pairs.values()
        )
        cheapest = study.cheapest()
        assert cheapest.best.cost_usd == min(
            r.best.cost_usd for r in study.pairs.values()
        )
        assert study.most_agile().best.cas == max(
            r.best.cas for r in study.pairs.values()
        )


class TestPaperFindings:
    def test_fastest_combo_is_28_40(self, study):
        """Sec. 7: the 28 nm + 40 nm combination is fastest to market."""
        fastest = study.fastest()
        assert {fastest.primary, fastest.secondary} == {"28nm", "40nm"}

    def test_multi_process_beats_singles_on_ttm(self, study):
        singles_best = min(
            r.best.ttm_weeks for r in study.single_process_results().values()
        )
        assert study.fastest().best.ttm_weeks < singles_best

    def test_headline_directions(self, study):
        headline = headline_comparison(study)
        assert headline["agility_gain"] > 0.0
        assert headline["ttm_gain_vs_cheapest"] > 0.0
        assert headline["cost_increase"] > 0.0
        assert headline["cost_increase"] < headline["agility_gain"]


class TestEngines:
    """The batch engine (default) must replicate the scalar oracle."""

    def test_batch_and_scalar_studies_agree(self, model, cost_model):
        kwargs = dict(split_grid=GRID)
        batch = run_split_study(
            raven_multicore, NODES, model, cost_model, 1e7, **kwargs
        )
        scalar = run_split_study(
            raven_multicore,
            NODES,
            model,
            cost_model,
            1e7,
            engine="scalar",
            **kwargs,
        )
        assert set(batch.pairs) == set(scalar.pairs)
        for key, batched in batch.pairs.items():
            oracle = scalar.pairs[key].best
            assert batched.best.split == oracle.split
            assert batched.best.secondary == oracle.secondary
            assert batched.best.ttm_weeks == pytest.approx(
                oracle.ttm_weeks, rel=1e-9
            )
            assert batched.best.cas == pytest.approx(oracle.cas, rel=1e-9)
            assert batched.best.cost_usd == pytest.approx(
                oracle.cost_usd, rel=1e-9
            )

    def test_refine_sharpens_the_split(self, model, cost_model):
        coarse = best_split_for_pair(
            raven_multicore, "28nm", "40nm", model, cost_model, 1e7, GRID
        )
        refined = best_split_for_pair(
            raven_multicore,
            "28nm",
            "40nm",
            model,
            cost_model,
            1e7,
            GRID,
            refine=True,
        )
        assert refined.best.cas >= coarse.best.cas
        # The fine stage resolves off-coarse-grid splits.
        assert refined.best.split not in GRID or (
            refined.best.cas == coarse.best.cas
        )

    def test_refined_study_keeps_structure(self, model, cost_model):
        study = run_split_study(
            raven_multicore,
            NODES,
            model,
            cost_model,
            1e7,
            split_grid=GRID,
            refine=True,
        )
        assert len(study.pairs) == 6
        for (primary, secondary), result in study.pairs.items():
            if primary == secondary:
                assert result.best.split == 1.0

    def test_unknown_engine_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="engine"):
            run_split_study(
                raven_multicore,
                NODES,
                model,
                cost_model,
                1e7,
                split_grid=GRID,
                engine="quantum",
            )

    def test_scalar_refine_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="batch engine"):
            best_split_for_pair(
                raven_multicore,
                "28nm",
                "40nm",
                model,
                cost_model,
                1e7,
                GRID,
                engine="scalar",
                refine=True,
            )


class TestValidation:
    def test_empty_grid_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError):
            best_split_for_pair(
                raven_multicore, "28nm", "40nm", model, cost_model, 1e9, ()
            )

    def test_duplicate_nodes_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError):
            run_split_study(
                raven_multicore,
                ("28nm", "28nm"),
                model,
                cost_model,
                1e9,
                split_grid=GRID,
            )

    @pytest.mark.parametrize("pick", ("fastest", "cheapest", "most_agile"))
    def test_empty_study_picks_raise_clear_error(self, pick):
        # Regression: these used to surface as a bare ValueError from
        # min()/max() on an empty sequence.
        empty = SplitStudy(n_chips=1e9, pairs={})
        with pytest.raises(InvalidParameterError, match="empty study"):
            getattr(empty, pick)()


class TestRefineModes:
    """refine= accepts False / True / "exact" / "grid" (True == exact)."""

    def test_true_is_an_alias_for_exact(self, model, cost_model):
        kwargs = dict(split_grid=GRID)
        aliased = best_split_for_pair(
            raven_multicore, "28nm", "40nm", model, cost_model, 1e7,
            refine=True, **kwargs,
        )
        exact = best_split_for_pair(
            raven_multicore, "28nm", "40nm", model, cost_model, 1e7,
            refine="exact", **kwargs,
        )
        assert aliased.best == exact.best

    def test_exact_never_scores_below_grid(self, model, cost_model):
        grid_refined = run_split_study(
            raven_multicore, NODES, model, cost_model, 1e9,
            split_grid=GRID, refine="grid",
        )
        exact_refined = run_split_study(
            raven_multicore, NODES, model, cost_model, 1e9,
            split_grid=GRID, refine="exact",
        )
        for key, grid_pair in grid_refined.pairs.items():
            assert (
                exact_refined.pairs[key].best.cas
                >= grid_pair.best.cas - 1e-12
            )

    def test_unknown_refine_mode_rejected(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="refinement mode"):
            run_split_study(
                raven_multicore, NODES, model, cost_model, 1e7,
                split_grid=GRID, refine="newton",
            )
