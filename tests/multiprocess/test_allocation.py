"""Tests for the k-way production-allocation extension."""

import pytest

from repro.design.library.raven import raven_multicore
from repro.errors import InvalidParameterError
from repro.multiprocess.allocation import (
    balance_allocation,
    evaluate_allocation,
    greedy_node_selection,
)
from repro.multiprocess.split import single_process_plan, split_ttm_weeks

N_CHIPS = 1e9


class TestBalanceAllocation:
    def test_shares_sum_to_one(self, model):
        shares = balance_allocation(
            raven_multicore, ["28nm", "40nm"], model, N_CHIPS
        )
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_single_node_gets_everything(self, model):
        shares = balance_allocation(raven_multicore, ["28nm"], model, N_CHIPS)
        assert shares == {"28nm": pytest.approx(1.0)}

    def test_balanced_lines_finish_together(self, model):
        shares = balance_allocation(
            raven_multicore, ["28nm", "40nm"], model, N_CHIPS
        )
        line_weeks = {
            process: model.total_weeks(
                raven_multicore(process), N_CHIPS * share
            )
            for process, share in shares.items()
        }
        values = list(line_weeks.values())
        assert values[0] == pytest.approx(values[1], rel=0.01)

    def test_matches_fig14_grid_optimum(self, model, cost_model):
        """The closed-form balance agrees with the Fig. 14 grid search."""
        shares = balance_allocation(
            raven_multicore, ["28nm", "40nm"], model, N_CHIPS
        )
        balanced_ttm = max(
            model.total_weeks(raven_multicore(p), N_CHIPS * s)
            for p, s in shares.items()
        )
        from repro.multiprocess.split import make_plan

        grid_ttm = min(
            split_ttm_weeks(
                make_plan(raven_multicore, "28nm", "40nm", s / 50),
                model,
                N_CHIPS,
            )
            for s in range(1, 50)
        )
        assert balanced_ttm == pytest.approx(grid_ttm, rel=0.01)
        assert balanced_ttm <= grid_ttm + 1e-9

    def test_slow_fixed_nodes_are_dropped(self, model):
        """5 nm's tapeout + latency exceed the balanced finish time for
        this MCU, so the optimizer gives it zero share."""
        shares = balance_allocation(
            raven_multicore, ["28nm", "40nm", "5nm"], model, N_CHIPS
        )
        assert "5nm" not in shares
        assert set(shares) == {"28nm", "40nm"}

    def test_validation(self, model):
        with pytest.raises(InvalidParameterError):
            balance_allocation(raven_multicore, [], model, N_CHIPS)
        with pytest.raises(InvalidParameterError):
            balance_allocation(
                raven_multicore, ["28nm", "28nm"], model, N_CHIPS
            )


class TestEvaluateAllocation:
    def test_matches_two_way_split(self, model, cost_model):
        from repro.multiprocess.split import evaluate_split, make_plan

        shares = {"28nm": 0.6, "40nm": 0.4}
        k_way = evaluate_allocation(
            raven_multicore, shares, model, cost_model, N_CHIPS
        )
        two_way = evaluate_split(
            make_plan(raven_multicore, "28nm", "40nm", 0.6),
            model,
            cost_model,
            N_CHIPS,
        )
        assert k_way.ttm_weeks == pytest.approx(two_way.ttm_weeks)
        assert k_way.cost_usd == pytest.approx(two_way.cost_usd)
        assert k_way.cas == pytest.approx(two_way.cas, rel=1e-6)

    def test_three_way_beats_single_on_ttm(self, model, cost_model):
        shares = balance_allocation(
            raven_multicore, ["28nm", "40nm", "65nm"], model, N_CHIPS
        )
        result = evaluate_allocation(
            raven_multicore, shares, model, cost_model, N_CHIPS
        )
        single = split_ttm_weeks(
            single_process_plan(raven_multicore, "28nm"), model, N_CHIPS
        )
        assert result.ttm_weeks < single

    def test_validation(self, model, cost_model):
        with pytest.raises(InvalidParameterError):
            evaluate_allocation(
                raven_multicore, {}, model, cost_model, N_CHIPS
            )
        with pytest.raises(InvalidParameterError):
            evaluate_allocation(
                raven_multicore,
                {"28nm": 0.7, "40nm": 0.7},
                model,
                cost_model,
                N_CHIPS,
            )
        with pytest.raises(InvalidParameterError):
            evaluate_allocation(
                raven_multicore,
                {"28nm": 1.5, "40nm": -0.5},
                model,
                cost_model,
                N_CHIPS,
            )


class TestGreedySelection:
    def test_starts_from_fastest_single(self, model, cost_model):
        steps = greedy_node_selection(
            raven_multicore,
            ["180nm", "28nm", "40nm"],
            model,
            cost_model,
            N_CHIPS,
            max_nodes=1,
        )
        assert len(steps) == 1
        assert steps[0].nodes == ("28nm",)

    def test_each_step_improves_ttm(self, model, cost_model):
        steps = greedy_node_selection(
            raven_multicore,
            ["180nm", "65nm", "40nm", "28nm"],
            model,
            cost_model,
            N_CHIPS,
            max_nodes=3,
        )
        ttms = [step.ttm_weeks for step in steps]
        assert ttms == sorted(ttms, reverse=True)
        assert len(ttms) >= 2

    def test_min_gain_threshold_stops_growth(self, model, cost_model):
        steps = greedy_node_selection(
            raven_multicore,
            ["180nm", "65nm", "40nm", "28nm"],
            model,
            cost_model,
            N_CHIPS,
            max_nodes=4,
            min_ttm_gain_weeks=50.0,  # nothing gains 50 weeks
        )
        assert len(steps) == 1

    def test_validation(self, model, cost_model):
        with pytest.raises(InvalidParameterError):
            greedy_node_selection(
                raven_multicore, [], model, cost_model, N_CHIPS
            )
        with pytest.raises(InvalidParameterError):
            greedy_node_selection(
                raven_multicore,
                ["28nm"],
                model,
                cost_model,
                N_CHIPS,
                max_nodes=0,
            )
