"""Tests for two-process production splits (Sec. 7)."""

import pytest

from repro.design.library.raven import raven_multicore
from repro.errors import InvalidParameterError
from repro.multiprocess.split import (
    ProductionSplit,
    evaluate_split,
    make_plan,
    single_process_plan,
    split_cas,
    split_cost_usd,
    split_ttm_weeks,
)


def _plan(split=0.5, primary="28nm", secondary="40nm"):
    return make_plan(raven_multicore, primary, secondary, split)


class TestPlanStructure:
    def test_allocations(self):
        plan = _plan(split=0.7)
        assert plan.allocations == {"28nm": 0.7, "40nm": pytest.approx(0.3)}

    def test_single_process_degenerate(self):
        plan = single_process_plan(raven_multicore, "28nm")
        assert plan.is_single_process
        assert plan.allocations == {"28nm": 1.0}

    def test_full_split_drops_secondary(self):
        plan = _plan(split=1.0)
        assert plan.allocations == {"28nm": 1.0}

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            _plan(split=0.0)
        with pytest.raises(InvalidParameterError):
            _plan(split=1.5)
        with pytest.raises(InvalidParameterError):
            make_plan(raven_multicore, "28nm", "28nm", 0.5)


class TestTTM:
    def test_split_is_max_of_lines(self, model):
        plan = _plan(split=0.5)
        evaluation = evaluate_split(
            plan, model, _cost(model), 1e9, with_cas=False
        )
        assert evaluation.ttm_weeks == pytest.approx(
            max(evaluation.line_weeks.values())
        )
        assert set(evaluation.line_weeks) == {"28nm", "40nm"}

    def test_single_process_matches_plain_model(self, model):
        plan = single_process_plan(raven_multicore, "28nm")
        assert split_ttm_weeks(plan, model, 1e9) == pytest.approx(
            model.total_weeks(raven_multicore("28nm"), 1e9)
        )

    def test_splitting_high_volume_reduces_ttm(self, model):
        """Sec. 7: parallel manufacturing shortens mass production."""
        single = split_ttm_weeks(
            single_process_plan(raven_multicore, "28nm"), model, 1e9
        )
        split = split_ttm_weeks(_plan(split=0.6), model, 1e9)
        assert split < single

    def test_invalid_volume_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            split_ttm_weeks(_plan(), model, 0.0)


class TestCost:
    def test_cost_sums_both_lines(self, model, cost_model):
        plan = _plan(split=0.5)
        total = split_cost_usd(plan, cost_model, 1e9)
        manual = cost_model.total_usd(
            raven_multicore("28nm"), 5e8
        ) + cost_model.total_usd(raven_multicore("40nm"), 5e8)
        assert total == pytest.approx(manual)

    def test_two_nodes_pay_two_mask_sets(self, model, cost_model):
        single = split_cost_usd(
            single_process_plan(raven_multicore, "28nm"), cost_model, 1e9
        )
        split = split_cost_usd(_plan(split=0.999), cost_model, 1e9)
        # A token second line still pays its full NRE.
        assert split > single


class TestCAS:
    def test_split_cas_positive(self, model):
        assert split_cas(_plan(), model, 1e9) > 0.0

    def test_balanced_split_more_agile_than_single(self, model):
        single = split_cas(
            single_process_plan(raven_multicore, "28nm"), model, 1e9
        )
        balanced = split_cas(_plan(split=0.6), model, 1e9)
        assert balanced > single

    def test_evaluation_bundles_everything(self, model, cost_model):
        evaluation = evaluate_split(_plan(), model, cost_model, 1e9)
        assert evaluation.cas > 0.0
        assert evaluation.cas_normalized == pytest.approx(evaluation.cas / 1000)
        assert evaluation.bottleneck_process in {"28nm", "40nm"}


def _cost(model):
    from repro.cost.model import CostModel

    return CostModel(technology=model.foundry.technology)
