"""Golden-master regression tests for the experiment suite."""
