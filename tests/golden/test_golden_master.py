"""Golden-master regression tests for every paper artifact.

Each fig03–fig14 experiment (plus Tables 3 and 4) is run through the
registry and compared, value by value, against a checked-in JSON
snapshot. Any relative numeric drift beyond 1e-9 fails the suite — so a
refactor of the engine or experiments is *diffable*, not just "tests
still pass". See ``conftest.py`` for the documented ``--regen-golden``
path.
"""

import json

import pytest

from repro.analysis.export import to_jsonable
from repro.experiments import registry

#: The paper's evaluation artifacts under snapshot (registry keys).
GOLDEN_KEYS = (
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "table3", "table4", "fig13", "fig14",
)

#: Maximum tolerated relative drift between run and snapshot.
RELATIVE_TOLERANCE = 1e-9


def assert_matches(actual, expected, path=""):
    """Recursive structural + numeric comparison with relative tolerance."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert set(actual) == set(expected), (
            f"{path}: keys changed "
            f"(added {sorted(set(actual) - set(expected))}, "
            f"removed {sorted(set(expected) - set(actual))})"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected sequence"
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != snapshot {len(expected)}"
        )
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, bool) or expected is None:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, (int, float)):
        assert isinstance(actual, (int, float)), f"{path}: expected number"
        assert actual == pytest.approx(
            expected, rel=RELATIVE_TOLERANCE, abs=RELATIVE_TOLERANCE
        ), f"{path}: {actual!r} drifted from snapshot {expected!r}"
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("key", GOLDEN_KEYS)
def test_artifact_matches_snapshot(key, snapshot_dir, regen_golden):
    result = to_jsonable(registry.get(key).runner())
    snapshot_path = snapshot_dir / f"{key}.json"
    if regen_golden:
        snapshot_dir.mkdir(exist_ok=True)
        snapshot_path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"regenerated {snapshot_path.name}")
    assert snapshot_path.exists(), (
        f"missing snapshot {snapshot_path.name}; run "
        f"pytest tests/golden --regen-golden and commit the result"
    )
    expected = json.loads(snapshot_path.read_text(encoding="utf-8"))
    assert_matches(result, expected, path=key)


def test_every_golden_key_is_registered():
    for key in GOLDEN_KEYS:
        assert key in registry.experiment_keys()
