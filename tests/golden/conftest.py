"""Golden-master harness: snapshot directory and the --regen-golden flag.

Regenerate the checked-in snapshots after an *intentional* numeric
change with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

(or ``python scripts/regen_golden.py``), then review the JSON diff and
commit it alongside the code change. Without the flag the suite fails on
any relative drift greater than 1e-9 against the stored values.
"""

from pathlib import Path

import pytest

#: Where the checked-in snapshots live.
SNAPSHOT_DIR = Path(__file__).parent / "snapshots"


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-master snapshots instead of asserting",
    )


@pytest.fixture(scope="session")
def regen_golden(request) -> bool:
    return request.config.getoption("--regen-golden")


@pytest.fixture(scope="session")
def snapshot_dir() -> Path:
    return SNAPSHOT_DIR
