"""SLO objectives, sliding-window burn rates, and gauge publication."""

from __future__ import annotations

import pytest

from repro.obs.metrics import get_registry
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    SLOTracker,
    report_from_records,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def make_tracker(window_s=60.0):
    clock = FakeClock()
    tracker = SLOTracker(
        objectives=(
            SLObjective(
                "evaluate",
                latency_ms=100.0,
                latency_objective=0.9,
                error_objective=0.1,
            ),
        ),
        window_s=window_s,
        clock=clock,
    )
    return tracker, clock


class TestSLObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="latency_ms"):
            SLObjective("e", latency_ms=0.0)
        with pytest.raises(ValueError, match="latency_objective"):
            SLObjective("e", latency_ms=1.0, latency_objective=1.0)
        with pytest.raises(ValueError, match="error_objective"):
            SLObjective("e", latency_ms=1.0, error_objective=0.0)

    def test_defaults_cover_every_batched_endpoint(self):
        endpoints = {o.endpoint for o in DEFAULT_OBJECTIVES}
        assert endpoints == {"evaluate", "mc", "splits", "scenarios"}


class TestSLOTracker:
    def test_all_good_traffic_has_zero_burn(self):
        tracker, _ = make_tracker()
        for _ in range(10):
            tracker.observe("evaluate", 200, 0.01)
        entry = tracker.status()["evaluate"]
        assert entry["requests"] == 10
        assert entry["error_burn_rate"] == 0.0
        assert entry["latency_burn_rate"] == 0.0
        assert entry["ok"]

    def test_error_burn_rate_is_bad_fraction_over_budget(self):
        tracker, _ = make_tracker()
        # 2 errors in 10 with a 10% budget: burn rate exactly 2.0.
        for i in range(10):
            tracker.observe("evaluate", 500 if i < 2 else 200, 0.01)
        entry = tracker.status()["evaluate"]
        assert entry["errors"] == 2
        assert entry["error_burn_rate"] == pytest.approx(2.0)
        assert not entry["ok"]

    def test_latency_burn_counts_slow_requests(self):
        tracker, _ = make_tracker()
        # 3 slow in 10 against a 10% slow budget: burn rate 3.0.
        for i in range(10):
            tracker.observe("evaluate", 200, 0.5 if i < 3 else 0.01)
        entry = tracker.status()["evaluate"]
        assert entry["slow"] == 3
        assert entry["latency_burn_rate"] == pytest.approx(3.0)
        assert not entry["ok"]

    def test_4xx_does_not_burn_error_budget(self):
        tracker, _ = make_tracker()
        tracker.observe("evaluate", 400, 0.01)
        tracker.observe("evaluate", 429, 0.01)
        entry = tracker.status()["evaluate"]
        assert entry["errors"] == 0
        assert entry["ok"]

    def test_window_slides_old_events_out(self):
        tracker, clock = make_tracker(window_s=60.0)
        tracker.observe("evaluate", 500, 0.01)
        clock.now += 61.0
        tracker.observe("evaluate", 200, 0.01)
        entry = tracker.status()["evaluate"]
        assert entry["requests"] == 1
        assert entry["errors"] == 0

    def test_unknown_endpoint_uses_fallback_objective(self):
        tracker, _ = make_tracker()
        tracker.observe("mystery", 200, 0.01)
        assert "mystery" in tracker.status()

    def test_publish_refreshes_gauges(self):
        tracker, _ = make_tracker()
        for i in range(10):
            tracker.observe("evaluate", 500 if i < 2 else 200, 0.01)
        tracker.publish()
        registry = get_registry()
        assert registry.gauge("serve_slo_error_burn_rate").value(
            endpoint="evaluate"
        ) == pytest.approx(2.0)
        assert (
            registry.gauge("serve_slo_ok").value(endpoint="evaluate") == 0.0
        )


class TestOfflineReport:
    def make_records(self):
        return [
            {
                "ts_unix_ns": i * 1_000_000_000,
                "endpoint": "evaluate",
                "status": 500 if i == 0 else 200,
                "latency_ms": 1.0,
            }
            for i in range(10)
        ]

    def test_whole_log_report(self):
        report = report_from_records(self.make_records())
        entry = report["evaluate"]
        assert entry["requests"] == 10
        assert entry["errors"] == 1

    def test_window_restricts_to_trailing_records(self):
        # Window of 5 s ending at the newest record (t=9 s) keeps
        # t in [4, 9] — six records, none of them the t=0 error.
        report = report_from_records(self.make_records(), window_s=5.0)
        entry = report["evaluate"]
        assert entry["requests"] == 6
        assert entry["errors"] == 0

    def test_skips_malformed_records(self):
        report = report_from_records(
            [
                {"endpoint": "evaluate", "status": "bogus"},
                {"no_endpoint": True},
                {"endpoint": "evaluate", "status": 200, "latency_ms": None},
            ]
        )
        assert report["evaluate"]["requests"] == 1
