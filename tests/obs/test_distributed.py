"""Trace-context propagation primitives and cross-process stitching."""

from __future__ import annotations

from repro.obs.distributed import (
    TraceContext,
    mint_request_id,
    mint_trace_context,
    parse_traceparent,
    stitch_trace,
)
from repro.obs.trace import SpanRecord


def _span(span_id, parent_id=None, start=0, **attributes):
    return SpanRecord(
        name=attributes.pop("name", "span"),
        span_id=span_id,
        parent_id=parent_id,
        start_unix_ns=start,
        duration_ns=1,
        cpu_ns=0,
        thread_id=1,
        process_id=1,
        attributes=attributes,
    )


class TestTraceContext:
    def test_traceparent_round_trips(self):
        ctx = mint_trace_context()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16

    def test_sampling_bit_round_trips(self):
        off = mint_trace_context(sampled=False)
        assert off.to_traceparent().endswith("-00")
        parsed = parse_traceparent(off.to_traceparent())
        assert parsed is not None and not parsed.sampled

    def test_child_keeps_trace_changes_span(self):
        ctx = mint_trace_context()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.sampled == ctx.sampled

    def test_mint_request_ids_are_unique_and_pid_prefixed(self):
        import os

        ids = {mint_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith(f"{os.getpid():x}-") for rid in ids)

    def test_malformed_headers_parse_to_none(self):
        good = mint_trace_context().to_traceparent()
        for header in (
            None,
            "",
            "junk",
            good.replace("00-", "01-", 1),  # unknown version
            "00-" + "0" * 32 + "-" + "a" * 16 + "-01",  # zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # zero span id
            "00-" + "g" * 32 + "-" + "a" * 16 + "-01",  # non-hex
            "00-" + "a" * 31 + "-" + "a" * 16 + "-01",  # short trace id
            good + "-extra",
        ):
            assert parse_traceparent(header) is None

    def test_parse_tolerates_case_and_whitespace(self):
        ctx = TraceContext("ab" * 16, "cd" * 8)
        header = "  " + ctx.to_traceparent().upper() + "  "
        assert parse_traceparent(header) == ctx


class TestStitchTrace:
    def make_soup(self):
        # Two processes' span soup: a router span and a worker request
        # span share trace "t1"; the worker's batch span (no trace_id
        # attribute of its own) is joined via batch_span_id, and an
        # engine span nests under the batch via in-process parent_id.
        # A second trace ("t2") and an orphan must be excluded.
        return [
            _span("r-1", start=1, name="serve.router", trace_id="t1"),
            _span(
                "w-1",
                start=2,
                name="serve.request",
                trace_id="t1",
                parent_ctx="beef",
                batch_span_id="w-2",
            ),
            _span("w-2", start=3, name="serve.batch"),
            _span("w-3", parent_id="w-2", start=4, name="engine.kernel"),
            _span("x-1", start=5, name="serve.request", trace_id="t2"),
            _span("x-2", parent_id="x-1", start=6, name="engine.kernel"),
            _span("z-9", start=7, name="unrelated"),
        ]

    def test_joins_seeds_batch_and_descendants(self):
        stitched = stitch_trace(self.make_soup(), "t1")
        assert [r["name"] for r in stitched] == [
            "serve.router",
            "serve.request",
            "serve.batch",
            "engine.kernel",
        ]

    def test_other_traces_are_excluded(self):
        stitched = stitch_trace(self.make_soup(), "t2")
        assert [r["span_id"] for r in stitched] == ["x-1", "x-2"]

    def test_accepts_dicts_and_records_mixed(self):
        soup = self.make_soup()
        mixed = [soup[0].to_jsonable(), *soup[1:]]
        assert len(stitch_trace(mixed, "t1")) == 4

    def test_sorted_by_start_time(self):
        stitched = stitch_trace(reversed(self.make_soup()), "t1")
        starts = [r["start_unix_ns"] for r in stitched]
        assert starts == sorted(starts)

    def test_unknown_trace_is_empty(self):
        assert stitch_trace(self.make_soup(), "nope") == []
