"""Tests for ObsSession (the CLI observability glue)."""

import argparse
import json

from repro.obs.manifest import RunManifest
from repro.obs.metrics import get_registry
from repro.obs.session import ManifestSink, ObsSession
from repro.obs.trace import current_tracer, span


class TestInertSession:
    def test_no_flags_means_no_side_effects(self, tmp_path):
        session = ObsSession()
        assert not session.active
        with session:
            assert current_tracer() is None
            with session.run_manifest("experiment", "fig3") as sink:
                sink.set_result({"rows": 1})
        assert sink.manifest is None
        assert sink.path is None
        assert list(tmp_path.iterdir()) == []

    def test_from_args_tolerates_missing_attributes(self):
        session = ObsSession.from_args(argparse.Namespace())
        assert not session.active


class TestActiveSession:
    def test_writes_trace_and_metrics_on_exit(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        with ObsSession(
            trace_path=str(trace_path), metrics_path=str(metrics_path)
        ):
            with span("session.work"):
                pass
            get_registry().counter("session_probe_total").inc()
        assert current_tracer() is None
        events = json.loads(trace_path.read_text())["traceEvents"]
        # Lane metadata (ph "M") rides alongside the complete events.
        assert [
            event["name"] for event in events if event["ph"] == "X"
        ] == ["session.work"]
        assert "session_probe_total 1" in metrics_path.read_text()

    def test_run_manifest_records_the_run(self, tmp_path):
        manifest_dir = tmp_path / "manifests"
        with ObsSession(manifest_dir=str(manifest_dir)) as session:
            with session.run_manifest(
                "mc-study",
                "mc-demo",
                config={"samples": 8},
                seeds={"seed": 3},
            ) as sink:
                get_registry().counter("session_probe_total").inc(2.0)
                sink.set_result({"metric": 1.0})
        manifest = RunManifest.read(str(manifest_dir / "mc-demo.manifest.json"))
        assert sink.manifest is not None
        assert manifest.equal_except_timing(sink.manifest)
        assert manifest.config == {"samples": 8}
        assert manifest.seeds == {"seed": 3}
        assert manifest.metrics["session_probe_total"] == 2.0
        assert manifest.result_digest is not None


class TestManifestSink:
    def test_accumulates_config_and_seeds(self):
        sink = ManifestSink()
        sink.add_config({"a": 1})
        sink.add_config({"b": 2})
        sink.add_seeds({"seed": 4})
        assert sink.config == {"a": 1, "b": 2}
        assert sink.seeds == {"seed": 4}
