"""Manifest determinism: identical seeded runs, identical provenance.

The contract the manifests exist to prove: re-running a study with the
recorded seeds reproduces it bit-for-bit. Two identically-seeded ``mc``
invocations through the real CLI must therefore produce manifests that
match in everything — config, seeds, metrics delta, result digest —
except the :data:`repro.obs.manifest.TIMING_FIELDS`.
"""

from repro.cli import main
from repro.obs.manifest import RunManifest


def run_mc(tmp_path, tag: str, seed: int = 11) -> RunManifest:
    manifest_dir = tmp_path / tag
    code = main([
        "mc",
        "--design", "a11",
        "--samples", "128",
        "--seed", str(seed),
        "--manifest-dir", str(manifest_dir),
    ])
    assert code == 0
    return RunManifest.read(str(manifest_dir / "mc-a11.manifest.json"))


class TestManifestDeterminism:
    def test_identical_seeded_runs_match_except_timing(self, tmp_path, capsys):
        first = run_mc(tmp_path, "first")
        second = run_mc(tmp_path, "second")
        capsys.readouterr()  # drop the study tables
        assert first.equal_except_timing(second)
        # The contract is bitwise: same digest, same metrics attribution.
        assert first.result_digest == second.result_digest
        assert first.metrics == second.metrics
        assert first.metrics  # the run must actually attribute activity

    def test_different_seeds_change_the_digest(self, tmp_path, capsys):
        first = run_mc(tmp_path, "first", seed=11)
        other = run_mc(tmp_path, "other", seed=12)
        capsys.readouterr()
        assert not first.equal_except_timing(other)
        assert first.result_digest != other.result_digest
