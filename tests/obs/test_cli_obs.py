"""Tests for the ``ttm-cas obs`` summarizer and the CLI obs flags."""

import json

from repro.cli import main
from repro.obs.log import RequestLogger
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def write_request_log(path, statuses, latency_ms=1.0, step_s=1.0):
    logger = RequestLogger(path=str(path), role="worker")
    for i, status in enumerate(statuses):
        logger.log(
            {
                "ts_unix_ns": int(i * step_s * 1e9),
                "endpoint": "evaluate",
                "status": status,
                "latency_ms": latency_ms,
                "request_id": f"rid-{i}",
            }
        )
    logger.close()


def make_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    return tracer


class TestObsCommand:
    def test_summarizes_trace_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        make_tracer().write_json(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== trace: 2 spans ==" in out
        assert "outer" in out and "inner" in out

    def test_summarizes_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "chrome.json"
        make_tracer().write_chrome_trace(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== chrome trace: 2 complete events ==" in out

    def test_summarizes_prometheus_text(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("calls_total").inc(kernel="ttm")
        registry.counter("silent_total")
        path = tmp_path / "metrics.prom"
        registry.write_prometheus(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== metrics: 1 non-zero series ==" in out
        assert 'calls_total{kernel="ttm"}' in out
        assert "silent_total" not in out

    def test_summarizes_manifest(self, tmp_path, capsys):
        manifest = RunManifest(
            kind="mc-study",
            key="mc-a11",
            created_unix=1_700_000_000.0,
            duration_seconds=0.25,
            seeds={"seed": 7},
            metrics={"engine_kernel_invocations_total": 3.0},
            git_sha="a" * 40,
            result_digest="b" * 64,
        )
        path = tmp_path / "mc-a11.manifest.json"
        manifest.write(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== run manifest: mc-study / mc-a11 ==" in out
        assert "seed:seed" in out
        assert "engine_kernel_invocations_total" in out

    def test_prometheus_summary_includes_quantile_table(
        self, tmp_path, capsys
    ):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            histogram.observe(value, endpoint="evaluate")
        path = tmp_path / "metrics.prom"
        registry.write_prometheus(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "histogram quantiles (estimated from buckets)" in out
        assert 'latency_seconds{endpoint="evaluate"}' in out
        assert "p95" in out

    def test_summarizes_request_log(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        write_request_log(path, [200, 200, 500])
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== request log: 3 records ==" in out
        assert "evaluate" in out

    def test_rejects_unrecognized_content(self, tmp_path, capsys):
        path = tmp_path / "noise.txt"
        path.write_text("not an artifact\n")
        assert main(["obs", str(path)]) == 2
        assert "not a recognized obs artifact" in capsys.readouterr().err

    def test_rejects_missing_file(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "absent.json")]) == 2
        assert capsys.readouterr().err


class TestObsTail:
    def test_tail_prints_recent_lines_oldest_first(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        write_request_log(path, [200] * 5)
        assert main(["obs", "tail", str(path), "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "rid=rid-3" in lines[0]
        assert "rid=rid-4" in lines[1]

    def test_tail_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "absent.jsonl")]) == 2
        assert capsys.readouterr().err

    def test_subcommand_without_file_is_usage_error(self, capsys):
        assert main(["obs", "tail"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_extra_tokens_are_usage_error(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path), str(tmp_path)]) == 2
        assert "usage" in capsys.readouterr().err


class TestObsSlo:
    def test_healthy_log_reports_ok_and_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        write_request_log(path, [200] * 10)
        assert main(["obs", "slo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== SLO report (whole log) ==" in out
        assert "ok" in out and "BURNING" not in out

    def test_burning_log_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        write_request_log(path, [500] * 5 + [200] * 5)
        assert main(["obs", "slo", str(path)]) == 1
        assert "BURNING" in capsys.readouterr().out

    def test_window_excludes_old_errors(self, tmp_path, capsys):
        # The only error is 100 s before the newest record; a 5 s
        # trailing window must not see it.
        path = tmp_path / "requests.jsonl"
        write_request_log(path, [500] + [200] * 3, step_s=100.0)
        assert main(["obs", "slo", str(path), "--window-s", "5"]) == 0
        out = capsys.readouterr().out
        assert "last 5 s" in out
        assert "BURNING" not in out

    def test_empty_log_is_not_an_error(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        path.write_text("")
        assert main(["obs", "slo", str(path)]) == 0
        assert "no request records" in capsys.readouterr().out


class TestObsFlags:
    def test_run_writes_trace_metrics_and_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        manifest_dir = tmp_path / "manifests"
        assert main([
            "run", "fig3",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            "--manifest-dir", str(manifest_dir),
        ]) == 0
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert any(event["name"] == "experiment.fig3" for event in events)
        assert "# TYPE engine_kernel_invocations_total counter" in (
            metrics_path.read_text()
        )
        manifest = RunManifest.read(
            str(manifest_dir / "fig3.manifest.json")
        )
        assert manifest.kind == "experiment"
        assert manifest.config["experiment"] == "fig3"
        assert manifest.result_digest is not None
