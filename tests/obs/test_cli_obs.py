"""Tests for the ``ttm-cas obs`` summarizer and the CLI obs flags."""

import json

from repro.cli import main
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    return tracer


class TestObsCommand:
    def test_summarizes_trace_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        make_tracer().write_json(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== trace: 2 spans ==" in out
        assert "outer" in out and "inner" in out

    def test_summarizes_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "chrome.json"
        make_tracer().write_chrome_trace(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== chrome trace: 2 complete events ==" in out

    def test_summarizes_prometheus_text(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("calls_total").inc(kernel="ttm")
        registry.counter("silent_total")
        path = tmp_path / "metrics.prom"
        registry.write_prometheus(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== metrics: 1 non-zero series ==" in out
        assert 'calls_total{kernel="ttm"}' in out
        assert "silent_total" not in out

    def test_summarizes_manifest(self, tmp_path, capsys):
        manifest = RunManifest(
            kind="mc-study",
            key="mc-a11",
            created_unix=1_700_000_000.0,
            duration_seconds=0.25,
            seeds={"seed": 7},
            metrics={"engine_kernel_invocations_total": 3.0},
            git_sha="a" * 40,
            result_digest="b" * 64,
        )
        path = tmp_path / "mc-a11.manifest.json"
        manifest.write(str(path))
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== run manifest: mc-study / mc-a11 ==" in out
        assert "seed:seed" in out
        assert "engine_kernel_invocations_total" in out

    def test_rejects_unrecognized_content(self, tmp_path, capsys):
        path = tmp_path / "noise.txt"
        path.write_text("not an artifact\n")
        assert main(["obs", str(path)]) == 2
        assert "not a recognized obs artifact" in capsys.readouterr().err

    def test_rejects_missing_file(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "absent.json")]) == 2
        assert capsys.readouterr().err


class TestObsFlags:
    def test_run_writes_trace_metrics_and_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        manifest_dir = tmp_path / "manifests"
        assert main([
            "run", "fig3",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            "--manifest-dir", str(manifest_dir),
        ]) == 0
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert any(event["name"] == "experiment.fig3" for event in events)
        assert "# TYPE engine_kernel_invocations_total counter" in (
            metrics_path.read_text()
        )
        manifest = RunManifest.read(
            str(manifest_dir / "fig3.manifest.json")
        )
        assert manifest.kind == "experiment"
        assert manifest.config["experiment"] == "fig3"
        assert manifest.result_digest is not None
