"""Obs-suite fixtures: keep process-global obs state test-local."""

from __future__ import annotations

import pytest

from repro.obs.metrics import get_registry
from repro.obs.trace import uninstall_tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Reset the registry and tracer around every obs test.

    The registry and installed tracer are process-wide by design; tests
    must not leak counts or a live tracer into each other (or into the
    rest of the suite).
    """
    uninstall_tracer()
    get_registry().reset()
    yield
    uninstall_tracer()
    get_registry().reset()
