"""The stdlib sampling profiler: sampling, export, leaf attribution."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(200))


class TestSampling:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0.0)

    def test_sample_once_counts_live_threads(self):
        profiler = SamplingProfiler()
        taken = profiler.sample_once()
        assert taken >= 1  # at least this thread
        assert profiler.samples == taken
        counts = profiler.counts()
        assert sum(counts.values()) == taken
        # This test's own stack must be in there, root-first.
        own = next(
            stack
            for stack in counts
            if any("test_sample_once_counts_live_threads" in f for f in stack)
        )
        assert own[-1].endswith("sample_once") or any(
            "test_sample" in frame for frame in own
        )

    def test_background_thread_is_observed(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler()
            for _ in range(5):
                profiler.sample_once()
                time.sleep(0.01)
        finally:
            stop.set()
            worker.join()
        assert any(
            any(frame.endswith(":_spin") for frame in stack)
            for stack in profiler.counts()
        )

    def test_start_stop_collects_samples(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        try:
            with SamplingProfiler(hz=200.0) as profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 0

    def test_double_start_raises(self):
        profiler = SamplingProfiler().start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()
        profiler.stop()  # idempotent


class TestExport:
    def seeded(self):
        profiler = SamplingProfiler()
        profiler._counts = {
            ("mod:main", "repro.engine:kernel"): 3,
            ("mod:main", "repro.engine:kernel", "numpy:dot"): 2,
            ("mod:other",): 1,
        }
        profiler.samples = 6
        return profiler

    def test_collapsed_is_heaviest_first(self):
        lines = self.seeded().collapsed().splitlines()
        assert lines[0] == "mod:main;repro.engine:kernel 3"
        assert lines[1] == "mod:main;repro.engine:kernel;numpy:dot 2"
        assert lines[2] == "mod:other 1"

    def test_write_collapsed(self, tmp_path):
        path = tmp_path / "profile.collapsed"
        self.seeded().write_collapsed(str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert "repro.engine:kernel 3" in text

    def test_hotspots_attribute_to_deepest_repro_frame(self):
        # Samples that dip into numpy still attribute to the deepest
        # repro.* frame on their stack; non-repro stacks drop out.
        hotspots = self.seeded().hotspots(prefix="repro.")
        assert hotspots == [("repro.engine:kernel", 5)]

    def test_empty_profiler_exports_cleanly(self, tmp_path):
        profiler = SamplingProfiler()
        assert profiler.collapsed() == ""
        assert profiler.hotspots() == []
        path = tmp_path / "empty.collapsed"
        profiler.write_collapsed(str(path))
        assert path.read_text() == ""
