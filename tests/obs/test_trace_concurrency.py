"""Trace correctness under parallel_map concurrency (every executor).

The satellite contract: spans recorded by worker threads and process
workers must attach to the right parent (the enclosing ``parallel_map``
span), the Chrome-trace export must stay valid JSON, and timestamps must
be sane (non-negative durations, items inside the map's wall window).
"""

import json

import numpy as np
import pytest

from repro.engine.parallel import EXECUTORS, parallel_map
from repro.obs.instrument import observed_kernel
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer

#: Wall-clock slack for cross-process timestamp comparisons (ns). The
#: item spans of a process worker are timed by that worker's own clock;
#: epoch clocks across processes on one machine agree to well under this.
CLOCK_TOLERANCE_NS = 50_000_000


def observed_square(value: float) -> float:
    """Module-level (picklable) evaluation for the process executor."""
    return value * value


@observed_kernel("obs.test_length", lambda result: result.size)
def observed_length(n: int) -> np.ndarray:
    """Module-level decorated kernel (picklable for process workers)."""
    return np.arange(n)


def traced_run(executor: str, n_items: int = 6):
    tracer = install_tracer(Tracer())
    try:
        results = parallel_map(
            observed_square,
            list(range(n_items)),
            executor=executor,
            max_workers=3,
        )
    finally:
        uninstall_tracer()
    return tracer, results


class TestSpanParentage:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_item_spans_attach_to_the_map_span(self, executor):
        tracer, results = traced_run(executor)
        assert results == [observed_square(i) for i in range(6)]
        spans = tracer.spans()
        (root,) = [s for s in spans if s.name == "parallel_map"]
        items = [s for s in spans if s.name == "parallel_map.item"]
        assert len(items) == 6
        assert all(item.parent_id == root.span_id for item in items)
        assert root.attributes["executor"] == executor
        assert root.attributes["n_items"] == 6

    def test_thread_workers_share_the_map_process(self):
        tracer, _ = traced_run("thread")
        assert len({s.process_id for s in tracer.spans()}) == 1

    def test_process_workers_record_in_their_own_process(self):
        tracer, _ = traced_run("process")
        (root,) = [s for s in tracer.spans() if s.name == "parallel_map"]
        items = [
            s for s in tracer.spans() if s.name == "parallel_map.item"
        ]
        assert any(s.process_id != root.process_id for s in items)

    def test_seeded_traced_process_map_stays_deterministic(self):
        def draw(item, rng):
            return float(item + rng.normal())

        baseline = parallel_map(draw, [1.0, 2.0, 3.0], seed=11)
        tracer = install_tracer(Tracer())
        try:
            traced = parallel_map(
                draw, [1.0, 2.0, 3.0], executor="thread", seed=11
            )
        finally:
            uninstall_tracer()
        assert traced == baseline
        items = [
            s for s in tracer.spans() if s.name == "parallel_map.item"
        ]
        assert len(items) == 3


class TestTimestampSanity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_durations_nonnegative_and_items_inside_map_window(
        self, executor
    ):
        tracer, _ = traced_run(executor)
        spans = tracer.spans()
        assert all(s.duration_ns >= 0 for s in spans)
        assert all(s.cpu_ns >= 0 for s in spans)
        (root,) = [s for s in spans if s.name == "parallel_map"]
        for item in spans:
            if item.name != "parallel_map.item":
                continue
            assert item.start_unix_ns >= (
                root.start_unix_ns - CLOCK_TOLERANCE_NS
            )
            assert item.end_unix_ns <= root.end_unix_ns + CLOCK_TOLERANCE_NS

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_same_thread_spans_are_nested_or_disjoint(self, executor):
        # Within one (process, thread) a span either contains another or
        # does not touch it: sibling items on one worker run in sequence.
        # Wall starts come from time.time_ns but durations from
        # perf_counter_ns, so allow a small cross-clock tolerance.
        tolerance_ns = 1_000_000
        tracer, _ = traced_run(executor)
        by_thread = {}
        for record in tracer.spans():
            by_thread.setdefault(
                (record.process_id, record.thread_id), []
            ).append(record)
        for records in by_thread.values():
            for a in records:
                for b in records:
                    if a is b:
                        continue
                    nested = (
                        a.start_unix_ns >= b.start_unix_ns - tolerance_ns
                        and a.end_unix_ns <= b.end_unix_ns + tolerance_ns
                    ) or (
                        b.start_unix_ns >= a.start_unix_ns - tolerance_ns
                        and b.end_unix_ns <= a.end_unix_ns + tolerance_ns
                    )
                    disjoint = (
                        a.end_unix_ns <= b.start_unix_ns + tolerance_ns
                        or b.end_unix_ns <= a.start_unix_ns + tolerance_ns
                    )
                    assert nested or disjoint


class TestChromeExportUnderConcurrency:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_chrome_trace_round_trips_json(self, tmp_path, executor):
        tracer, _ = traced_run(executor)
        path = tmp_path / f"{executor}.json"
        tracer.write_chrome_trace(str(path))
        reloaded = json.loads(path.read_text())
        events = [
            e for e in reloaded["traceEvents"] if e["ph"] == "X"
        ]
        assert len(events) == len(tracer.spans())
        assert all(event["dur"] > 0 for event in events)

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_kernel_spans_nest_under_worker_items(self, executor):
        # A decorated kernel running inside a worker (thread or process)
        # must hang off that worker's item span in the merged trace.
        tracer = install_tracer(Tracer())
        try:
            parallel_map(
                observed_length, [2, 3], executor=executor, max_workers=2
            )
        finally:
            uninstall_tracer()
        spans = tracer.spans()
        items = {
            s.span_id for s in spans if s.name == "parallel_map.item"
        }
        kernels = [s for s in spans if s.name == "obs.test_length"]
        assert len(kernels) == 2
        assert all(k.parent_id in items for k in kernels)

    def test_span_ids_unique_across_worker_reuse(self):
        # One worker process handling several items must never reuse a
        # span id (the id counter is process-global, not per-tracer).
        tracer = install_tracer(Tracer())
        try:
            parallel_map(
                observed_square, list(range(8)), executor="process",
                max_workers=2,
            )
        finally:
            uninstall_tracer()
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids))
