"""The JSON-lines request logger and its readers/formatters."""

from __future__ import annotations

import json

from repro.obs.log import (
    LOG_SCHEMA,
    RequestLogger,
    format_record,
    read_request_log,
    tail_records,
)


class TestRequestLogger:
    def test_ring_only_without_path(self, tmp_path):
        logger = RequestLogger(role="worker")
        assert not logger.active
        logger.log({"endpoint": "evaluate", "status": 200})
        (record,) = logger.recent()
        assert record["schema"] == LOG_SCHEMA
        assert record["role"] == "worker"
        assert list(tmp_path.iterdir()) == []

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        logger = RequestLogger(path=str(path), role="router")
        assert logger.active
        logger.log({"endpoint": "evaluate", "status": 200, "latency_ms": 1.5})
        logger.log({"endpoint": "mc", "status": 429})
        logger.close()
        assert not logger.active
        records = read_request_log(str(path))
        assert [r["endpoint"] for r in records] == ["evaluate", "mc"]
        assert all(r["role"] == "router" for r in records)

    def test_lazy_open_creates_no_file_until_first_record(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        logger = RequestLogger(path=str(path))
        assert not path.exists()
        logger.log({"endpoint": "evaluate", "status": 200})
        assert path.exists()
        logger.close()

    def test_ring_is_bounded(self):
        logger = RequestLogger(ring_size=3)
        for i in range(10):
            logger.log({"endpoint": "evaluate", "status": 200, "i": i})
        assert [r["i"] for r in logger.recent()] == [7, 8, 9]
        assert [r["i"] for r in logger.recent(limit=2)] == [8, 9]

    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        logger = RequestLogger(path=str(path))
        logger.log({"endpoint": "evaluate", "status": 200})
        logger.close()
        logger.close()
        logger.log({"endpoint": "mc", "status": 200})  # ring only now
        assert len(read_request_log(str(path))) == 1
        assert len(logger.recent()) == 2


class TestReaders:
    def test_read_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            json.dumps({"endpoint": "evaluate", "status": 200})
            + "\n\nnot json\n"
            + '{"endpoint": "mc", "status":'  # torn final line
        )
        records = read_request_log(str(path))
        assert [r["endpoint"] for r in records] == ["evaluate"]

    def test_tail_orders_interleaved_records_by_timestamp(self):
        records = [
            {"ts_unix_ns": 3, "role": "router"},
            {"ts_unix_ns": 1, "role": "worker"},
            {"ts_unix_ns": 2, "role": "worker"},
        ]
        assert [r["ts_unix_ns"] for r in tail_records(records)] == [1, 2, 3]
        assert [r["ts_unix_ns"] for r in tail_records(records, limit=2)] == [
            2,
            3,
        ]

    def test_format_record_is_one_scannable_line(self):
        line = format_record(
            {
                "role": "worker",
                "endpoint": "evaluate",
                "status": 200,
                "latency_ms": 12.345,
                "batch_size": 4,
                "backend": "numpy",
                "outcome": "ok",
                "request_id": "abc-1",
                "trace_id": "feed" * 8,
                "breakdown": {
                    "queue_ms": 1.0,
                    "batch_wait_ms": 2.0,
                    "compute_ms": 3.0,
                    "serialize_ms": 4.0,
                },
            }
        )
        assert "\n" not in line
        assert "evaluate" in line
        assert "batch=4" in line
        assert "q/w/c/s=1.0/2.0/3.0/4.0" in line
        assert "rid=abc-1" in line

    def test_format_record_tolerates_missing_fields(self):
        line = format_record({})
        assert "q/w/c/s=-/-/-/-" in line
        assert "rid=-" in line
