"""Tests for the metrics registry and its exporters."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    estimate_quantile,
    get_registry,
    histogram_quantiles_from_text,
    iter_prometheus_samples,
    merge_prometheus_texts,
    metrics_delta,
)


class TestCounter:
    def test_inc_accumulates_per_label_series(self):
        counter = MetricsRegistry().counter("calls_total")
        counter.inc()
        counter.inc(2.0)
        counter.inc(kernel="ttm")
        assert counter.value() == 3.0
        assert counter.value(kernel="ttm") == 1.0
        assert counter.value(kernel="never") == 0.0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("calls_total")
        with pytest.raises(InvalidParameterError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_precomputed_key_fast_path_matches_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls_total")
        counter.inc(kernel="ttm")
        counter._inc_key((("kernel", "ttm"),), 4.0)
        assert counter.value(kernel="ttm") == 5.0


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("entries")
        gauge.set(7)
        gauge.add(-3)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == (1, 2, 3)
        assert histogram.value() == 4.0
        assert histogram.sum() == pytest.approx(55.55)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(InvalidParameterError, match="sorted"):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("calls_total") is registry.counter(
            "calls_total"
        )
        assert registry.get("calls_total") is not None
        assert registry.get("absent") is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("calls_total")
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.gauge("calls_total")

    def test_reset_zeroes_values_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls_total")
        counter.inc(5.0)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.get("calls_total") is counter

    def test_snapshot_flattens_series_names(self):
        registry = MetricsRegistry()
        registry.counter("calls_total").inc(kernel="ttm")
        registry.gauge("entries").set(2)
        histogram = registry.histogram("latency_seconds", buckets=(1.0,))
        histogram.observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot['calls_total{kernel="ttm"}'] == 1.0
        assert snapshot["entries"] == 2.0
        assert snapshot["latency_seconds_count"] == 1.0
        assert snapshot["latency_seconds_sum"] == 0.5

    def test_process_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestExports:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", "Calls").inc(kernel="ttm")
        registry.counter("untouched_total", "Never fired")
        registry.histogram("latency_seconds", buckets=(1.0,)).observe(0.5)
        return registry

    def test_prometheus_text_headers_and_untouched_zero(self):
        text = self.make_registry().to_prometheus_text()
        assert "# HELP calls_total Calls" in text
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{kernel="ttm"} 1' in text
        assert "untouched_total 0" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_prometheus_text_round_trips_through_parser(self):
        registry = self.make_registry()
        samples = dict(iter_prometheus_samples(registry.to_prometheus_text()))
        assert samples['calls_total{kernel="ttm"}'] == 1.0
        assert samples["untouched_total"] == 0.0

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        self.make_registry().write_prometheus(str(path))
        assert "# TYPE calls_total counter" in path.read_text()

    def test_json_export_is_schema_tagged(self):
        data = json.loads(self.make_registry().to_json())
        assert data["schema"] == METRICS_SCHEMA
        names = [entry["name"] for entry in data["metrics"]]
        assert names == ["calls_total", "untouched_total", "latency_seconds"]


class TestMetricsDelta:
    def test_delta_names_only_what_moved(self):
        before = {"a": 1.0, "b": 2.0}
        after = {"a": 1.0, "b": 5.0, "c": 4.0}
        assert metrics_delta(before, after) == {"b": 3.0, "c": 4.0}


class TestQuantileEstimation:
    def test_interpolates_within_a_bucket(self):
        # 4 of 8 observations land at or under 1.0, all 8 under 2.0:
        # the median falls exactly on the first bucket's upper bound
        # and p75 interpolates halfway into the second.
        bounds = (1.0, 2.0)
        cumulative = (4, 8)
        assert estimate_quantile(bounds, cumulative, 8, 0.5) == 1.0
        assert estimate_quantile(bounds, cumulative, 8, 0.75) == 1.5

    def test_lowest_bucket_interpolates_from_zero(self):
        assert estimate_quantile((10.0,), (4,), 4, 0.5) == 5.0

    def test_mass_beyond_last_finite_bound_clamps(self):
        # Everything overflowed the buckets: the honest answer is the
        # largest finite bound, not +Inf.
        assert estimate_quantile((1.0, 2.0), (0, 0), 5, 0.99) == 2.0

    def test_empty_histogram_is_zero(self):
        assert estimate_quantile((1.0,), (0,), 0, 0.5) == 0.0
        assert estimate_quantile((), (), 3, 0.5) == 0.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(InvalidParameterError, match="quantile"):
            estimate_quantile((1.0,), (1,), 1, 1.5)

    def test_histogram_quantile_method(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.05, 0.5, 0.5):
            histogram.observe(value)
        assert histogram.quantile(0.5) == pytest.approx(0.1)
        assert histogram.quantile(0.0) == 0.0

    def test_json_export_carries_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            histogram.observe(value)
        data = json.loads(registry.to_json())
        (metric,) = data["metrics"]
        (series,) = metric["series"]
        assert set(series["quantiles"]) == {"p50", "p95", "p99"}
        assert series["quantiles"]["p50"] == pytest.approx(1.0)

    def test_quantiles_from_exposition_text(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            histogram.observe(value, endpoint="evaluate")
        rows = dict(
            histogram_quantiles_from_text(registry.to_prometheus_text())
        )
        entry = rows['latency_seconds{endpoint="evaluate"}']
        assert entry["p50"] == pytest.approx(1.0)

    def test_count_only_text_yields_no_quantiles(self):
        text = "# TYPE calls_total counter\ncalls_total 3\n"
        assert histogram_quantiles_from_text(text) == []


class TestMergeDuplicateSeries:
    """The worker die/respawn mid-scrape case: two parts both tagged
    ``worker="N"`` must merge into valid exposition, not collide."""

    def make_worker_text(self, calls, depth):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total").inc(calls, endpoint="evaluate")
        registry.gauge("serve_queue_depth").set(depth)
        histogram = registry.histogram("serve_latency", buckets=(1.0,))
        for _ in range(int(calls)):
            histogram.observe(0.5)
        return registry.to_prometheus_text()

    def merged(self):
        # The dead worker's scrape and its respawned replacement both
        # land under worker="0".
        return merge_prometheus_texts(
            [
                ({"worker": "0"}, self.make_worker_text(3, 7)),
                ({"worker": "0"}, self.make_worker_text(4, 2)),
            ]
        )

    def test_counters_sum(self):
        samples = dict(iter_prometheus_samples(self.merged()))
        key = 'serve_requests_total{endpoint="evaluate",worker="0"}'
        assert samples[key] == 7.0

    def test_histograms_sum(self):
        samples = dict(iter_prometheus_samples(self.merged()))
        assert samples['serve_latency_count{worker="0"}'] == 7.0
        assert samples['serve_latency_bucket{le="+Inf",worker="0"}'] == 7.0

    def test_gauges_take_last_value(self):
        samples = dict(iter_prometheus_samples(self.merged()))
        assert samples['serve_queue_depth{worker="0"}'] == 2.0

    def test_no_duplicate_series_lines_survive(self):
        lines = [
            line
            for line in self.merged().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(lines) == len(set(lines))

    def test_rolling_drain_subset_still_merges(self):
        # Mid-drain the router scrapes whoever is left: one worker
        # already gone must not break the merged exposition.
        merged = merge_prometheus_texts(
            [
                ({"worker": "router"}, self.make_worker_text(1, 1)),
                ({"worker": "0"}, self.make_worker_text(3, 7)),
            ]
        )
        samples = dict(iter_prometheus_samples(merged))
        assert samples['serve_requests_total{endpoint="evaluate",worker="0"}'] == 3.0
        assert not any('worker="1"' in key for key in samples)

    def test_distinct_workers_still_do_not_merge(self):
        merged = merge_prometheus_texts(
            [
                ({"worker": "0"}, self.make_worker_text(3, 7)),
                ({"worker": "1"}, self.make_worker_text(4, 2)),
            ]
        )
        samples = dict(iter_prometheus_samples(merged))
        assert samples['serve_queue_depth{worker="0"}'] == 7.0
        assert samples['serve_queue_depth{worker="1"}'] == 2.0
