"""Tests for the metrics registry and its exporters."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    get_registry,
    iter_prometheus_samples,
    metrics_delta,
)


class TestCounter:
    def test_inc_accumulates_per_label_series(self):
        counter = MetricsRegistry().counter("calls_total")
        counter.inc()
        counter.inc(2.0)
        counter.inc(kernel="ttm")
        assert counter.value() == 3.0
        assert counter.value(kernel="ttm") == 1.0
        assert counter.value(kernel="never") == 0.0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("calls_total")
        with pytest.raises(InvalidParameterError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_precomputed_key_fast_path_matches_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls_total")
        counter.inc(kernel="ttm")
        counter._inc_key((("kernel", "ttm"),), 4.0)
        assert counter.value(kernel="ttm") == 5.0


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("entries")
        gauge.set(7)
        gauge.add(-3)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == (1, 2, 3)
        assert histogram.value() == 4.0
        assert histogram.sum() == pytest.approx(55.55)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(InvalidParameterError, match="sorted"):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("calls_total") is registry.counter(
            "calls_total"
        )
        assert registry.get("calls_total") is not None
        assert registry.get("absent") is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("calls_total")
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.gauge("calls_total")

    def test_reset_zeroes_values_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls_total")
        counter.inc(5.0)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.get("calls_total") is counter

    def test_snapshot_flattens_series_names(self):
        registry = MetricsRegistry()
        registry.counter("calls_total").inc(kernel="ttm")
        registry.gauge("entries").set(2)
        histogram = registry.histogram("latency_seconds", buckets=(1.0,))
        histogram.observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot['calls_total{kernel="ttm"}'] == 1.0
        assert snapshot["entries"] == 2.0
        assert snapshot["latency_seconds_count"] == 1.0
        assert snapshot["latency_seconds_sum"] == 0.5

    def test_process_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestExports:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", "Calls").inc(kernel="ttm")
        registry.counter("untouched_total", "Never fired")
        registry.histogram("latency_seconds", buckets=(1.0,)).observe(0.5)
        return registry

    def test_prometheus_text_headers_and_untouched_zero(self):
        text = self.make_registry().to_prometheus_text()
        assert "# HELP calls_total Calls" in text
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{kernel="ttm"} 1' in text
        assert "untouched_total 0" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_prometheus_text_round_trips_through_parser(self):
        registry = self.make_registry()
        samples = dict(iter_prometheus_samples(registry.to_prometheus_text()))
        assert samples['calls_total{kernel="ttm"}'] == 1.0
        assert samples["untouched_total"] == 0.0

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        self.make_registry().write_prometheus(str(path))
        assert "# TYPE calls_total counter" in path.read_text()

    def test_json_export_is_schema_tagged(self):
        data = json.loads(self.make_registry().to_json())
        assert data["schema"] == METRICS_SCHEMA
        names = [entry["name"] for entry in data["metrics"]]
        assert names == ["calls_total", "untouched_total", "latency_seconds"]


class TestMetricsDelta:
    def test_delta_names_only_what_moved(self):
        before = {"a": 1.0, "b": 2.0}
        after = {"a": 1.0, "b": 5.0, "c": 4.0}
        assert metrics_delta(before, after) == {"b": 3.0, "c": 4.0}
