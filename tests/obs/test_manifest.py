"""Tests for run manifests (provenance records)."""

import pytest

from repro.errors import InvalidParameterError
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    TIMING_FIELDS,
    environment_fingerprint,
    git_revision,
    result_digest,
)


def make_manifest(**overrides) -> RunManifest:
    fields = dict(
        kind="mc-study",
        key="mc-a11",
        created_unix=1_700_000_000.0,
        duration_seconds=1.5,
        config={"samples": 512},
        seeds={"seed": 7},
        metrics={"engine_kernel_invocations_total": 3.0},
        environment={"python": "3.12"},
        git_sha="abc123",
        result_digest="deadbeef",
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestRunManifest:
    def test_jsonable_is_schema_tagged(self):
        data = make_manifest().to_jsonable()
        assert data["schema"] == MANIFEST_SCHEMA
        assert data["seeds"] == {"seed": 7}
        assert data["config"] == {"samples": 512}

    def test_write_read_round_trip(self, tmp_path):
        manifest = make_manifest()
        path = tmp_path / "run.manifest.json"
        manifest.write(str(path))
        assert RunManifest.read(str(path)) == manifest

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(InvalidParameterError, match="not a run manifest"):
            RunManifest.read(str(path))

    def test_equal_except_timing_ignores_only_timing(self):
        base = make_manifest()
        retimed = make_manifest(
            created_unix=1_800_000_000.0, duration_seconds=9.0
        )
        reseeded = make_manifest(seeds={"seed": 8})
        assert base.equal_except_timing(retimed)
        assert not base.equal_except_timing(reseeded)

    def test_without_timing_drops_the_timing_fields(self):
        data = make_manifest().without_timing()
        for name in TIMING_FIELDS:
            assert name not in data
        assert data["result_digest"] == "deadbeef"


class TestProvenanceHelpers:
    def test_git_revision_in_this_checkout(self):
        sha = git_revision()
        assert sha is None or (len(sha) == 40 and set(sha) <= set(
            "0123456789abcdef"
        ))

    def test_git_revision_outside_a_checkout(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None

    def test_environment_fingerprint_names_the_stack(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {
            "python",
            "numpy",
            "repro",
            "engine_backend",
            "engine_shm",
        }
        assert fingerprint["engine_backend"] == "numpy"
        assert fingerprint["engine_shm"] in {"available", "unavailable"}

    def test_result_digest_is_deterministic_and_content_sensitive(self):
        first = result_digest({"metric": 1.0})
        again = result_digest({"metric": 1.0})
        other = result_digest({"metric": 2.0})
        assert first == again
        assert first != other
        assert len(first) == 64
