"""Tests for the engine-facing instrumentation hooks."""

import numpy as np

from repro.obs.instrument import (
    EXECUTOR_FALLBACKS,
    GUARD_TRIPS,
    KERNEL_ELEMENTS,
    KERNEL_INVOCATIONS,
    cache_counters,
    disabled,
    enabled,
    guard_trip,
    observed_kernel,
    record_fallback,
    record_kernel,
)
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer


@observed_kernel("test.kernel", lambda result: result.size)
def produce(n: int) -> np.ndarray:
    return np.zeros(n)


class TestObservedKernel:
    def test_counts_invocations_and_elements(self):
        assert np.array_equal(produce(3), np.zeros(3))
        produce(5)
        assert (
            KERNEL_INVOCATIONS.value(backend="numpy", kernel="test.kernel")
            == 2.0
        )
        assert (
            KERNEL_ELEMENTS.value(backend="numpy", kernel="test.kernel")
            == 8.0
        )

    def test_spans_when_tracer_installed(self):
        tracer = install_tracer(Tracer())
        produce(4)
        uninstall_tracer()
        (record,) = tracer.spans()
        assert record.name == "test.kernel"
        assert record.attributes["elements"] == 4
        assert record.attributes["backend"] == "numpy"
        assert (
            KERNEL_INVOCATIONS.value(backend="numpy", kernel="test.kernel")
            == 1.0
        )

    def test_disabled_bypasses_everything(self):
        assert enabled()
        with disabled():
            assert not enabled()
            produce(9)
        assert enabled()
        assert (
            KERNEL_INVOCATIONS.value(backend="numpy", kernel="test.kernel")
            == 0.0
        )
        assert (
            KERNEL_ELEMENTS.value(backend="numpy", kernel="test.kernel")
            == 0.0
        )


class TestPlainHooks:
    def test_record_kernel(self):
        record_kernel("manual", 100)
        assert (
            KERNEL_INVOCATIONS.value(backend="numpy", kernel="manual") == 1.0
        )
        assert (
            KERNEL_ELEMENTS.value(backend="numpy", kernel="manual") == 100.0
        )

    def test_record_fallback(self):
        record_fallback("process", "serial")
        assert (
            EXECUTOR_FALLBACKS.value(requested="process", chosen="serial")
            == 1.0
        )

    def test_guard_trip(self):
        guard_trip("sobol")
        assert GUARD_TRIPS.value(guard="sobol") == 1.0

    def test_disabled_silences_plain_hooks(self):
        with disabled():
            record_kernel("manual", 1)
            record_fallback("process", "serial")
            guard_trip("sobol")
        assert (
            KERNEL_INVOCATIONS.value(backend="numpy", kernel="manual") == 0.0
        )
        assert EXECUTOR_FALLBACKS.series() == {}
        assert GUARD_TRIPS.series() == {}


class TestCacheCounters:
    def test_exposes_the_four_cache_instruments(self):
        hits, misses, evictions, entries = cache_counters()
        assert hits.name == "invariant_cache_hits_total"
        assert misses.name == "invariant_cache_misses_total"
        assert evictions.name == "invariant_cache_evictions_total"
        assert entries.name == "invariant_cache_entries"
