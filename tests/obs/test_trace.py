"""Tests for the span tracer and its exports."""

import json

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    chrome_trace_from_spans,
    current_tracer,
    install_tracer,
    span,
    uninstall_tracer,
)


class TestSpans:
    def test_records_name_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", shape=(3, 4)) as active:
            active.set("elements", 12)
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.attributes == {"shape": (3, 4), "elements": 12}
        assert record.duration_ns >= 0
        assert record.cpu_ns >= 0
        assert record.status == "ok"
        assert record.end_unix_ns == record.start_unix_ns + record.duration_ns

    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, recorded_outer = tracer.spans()
        assert recorded_outer.span_id == outer.span_id
        assert recorded_outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("detached", parent_id=None):
                pass
            with tracer.span("attached", parent_id=root.span_id):
                pass
        detached, attached, _ = tracer.spans()
        assert detached.parent_id is None
        assert attached.parent_id == root.span_id

    def test_exception_marks_status_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.status == "error: ValueError"

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("a") as a:
            assert tracer.current_span_id() == a.span_id
        assert tracer.current_span_id() is None

    def test_adopt_merges_foreign_records(self):
        tracer, worker = Tracer(), Tracer()
        with worker.span("remote"):
            pass
        tracer.adopt(worker.spans())
        assert [record.name for record in tracer.spans()] == ["remote"]

    def test_clear_drops_spans(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.clear()
        assert tracer.spans() == ()


class TestRollingWindow:
    def test_limit_drops_oldest_finished_spans(self):
        tracer = Tracer(limit=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [record.name for record in tracer.spans()] == [
            "s2", "s3", "s4",
        ]

    def test_limit_applies_to_adopted_spans_too(self):
        tracer, remote = Tracer(limit=2), Tracer()
        for i in range(4):
            with remote.span(f"r{i}"):
                pass
        tracer.adopt(remote.spans())
        assert [record.name for record in tracer.spans()] == ["r2", "r3"]

    def test_unlimited_by_default(self):
        tracer = Tracer()
        for i in range(100):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans()) == 100

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError, match="limit"):
            Tracer(limit=0)


class TestProcessLanes:
    def _span_dict(self, pid, name="work", **attributes):
        return SpanRecord(
            name=name,
            span_id=f"{pid:x}-1",
            parent_id=None,
            start_unix_ns=0,
            duration_ns=1,
            cpu_ns=0,
            thread_id=1,
            process_id=pid,
            attributes=attributes,
        ).to_jsonable()

    def _lanes(self, chrome):
        """{pid: (label, sort_index)} from the metadata events."""
        labels = {
            e["pid"]: e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        order = {
            e["pid"]: e["args"]["sort_index"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_sort_index"
        }
        return {pid: (labels[pid], order[pid]) for pid in labels}

    def test_each_pid_gets_a_named_lane(self):
        chrome = chrome_trace_from_spans(
            [self._span_dict(10), self._span_dict(20)],
            process_names={10: "router", 20: "worker 0"},
        )
        lanes = self._lanes(chrome)
        assert lanes[10] == ("router", 0)
        assert lanes[20] == ("worker 0", 1)

    def test_router_lane_sorts_first_regardless_of_pid(self):
        # The router's pid is numerically larger; its lane still leads.
        chrome = chrome_trace_from_spans(
            [self._span_dict(99), self._span_dict(5)],
            process_names={99: "router", 5: "worker 1"},
        )
        lanes = self._lanes(chrome)
        assert lanes[99][1] < lanes[5][1]

    def test_worker_attribute_names_unmapped_pids(self):
        chrome = chrome_trace_from_spans([self._span_dict(30, worker=2)])
        assert self._lanes(chrome)[30][0] == "worker 2"

    def test_anonymous_pid_falls_back_to_pid_label(self):
        chrome = chrome_trace_from_spans([self._span_dict(42)])
        assert self._lanes(chrome)[42][0] == "pid 42"


class TestExports:
    def make_tracer(self):
        tracer = Tracer()
        with tracer.span("outer", n=2):
            with tracer.span("inner"):
                pass
        return tracer

    def test_jsonable_export_is_schema_tagged(self):
        data = self.make_tracer().to_jsonable()
        assert data["schema"] == TRACE_SCHEMA
        assert [entry["name"] for entry in data["spans"]] == [
            "inner", "outer",
        ]

    def test_chrome_trace_events(self):
        chrome = self.make_tracer().to_chrome_trace()
        events = chrome["traceEvents"]
        # Complete events plus one process-lane metadata pair.
        assert {event["ph"] for event in events} == {"M", "X"}
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["n"] == 2
        assert outer["dur"] > 0

    def test_write_round_trips_as_json(self, tmp_path):
        tracer = self.make_tracer()
        trace_path = tmp_path / "trace.json"
        chrome_path = tmp_path / "chrome.json"
        tracer.write_json(str(trace_path))
        tracer.write_chrome_trace(str(chrome_path))
        assert json.loads(trace_path.read_text())["schema"] == TRACE_SCHEMA
        reloaded = json.loads(chrome_path.read_text())
        complete = [
            e for e in reloaded["traceEvents"] if e["ph"] == "X"
        ]
        assert len(complete) == 2

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("hot"):
                pass
        (entry,) = tracer.summary()
        assert entry["name"] == "hot"
        assert entry["count"] == 3
        assert entry["max_wall_s"] <= entry["wall_s"]


class TestModuleHelper:
    def test_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        context = span("anything", detail=1)
        assert context is NULL_SPAN
        with context as active:
            active.set("ignored", True)  # must not raise

    def test_install_routes_module_spans(self):
        tracer = install_tracer()
        assert current_tracer() is tracer
        with span("routed"):
            pass
        assert [record.name for record in tracer.spans()] == ["routed"]
        assert uninstall_tracer() is tracer
        assert current_tracer() is None
