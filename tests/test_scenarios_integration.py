"""Integration: preset scenarios drive the models end to end."""

import pytest

from repro import TTMModel, chip_agility_score
from repro.design.library import a11, raven_multicore
from repro.market import scenarios


def _under(model, conditions):
    return model.with_foundry(model.foundry.with_conditions(conditions))


class TestScenarioEffects:
    def test_shortage_adds_exactly_the_quote_at_full_rate(self, model):
        stressed = _under(model, scenarios.shortage_2021(queue_weeks=4.0))
        base = model.total_weeks(a11("28nm"), 10e6)
        assert stressed.total_weeks(a11("28nm"), 10e6) == pytest.approx(
            base + 4.0, abs=0.01
        )

    def test_shortage_erodes_agility_everywhere(self, model):
        stressed = _under(model, scenarios.shortage_2021())
        for process in ("40nm", "28nm", "7nm"):
            base = chip_agility_score(model, a11(process), 10e6).cas
            queued = chip_agility_score(stressed, a11(process), 10e6).cas
            assert queued < base

    def test_advanced_drought_spares_legacy_designs(self, model):
        stressed = _under(model, scenarios.advanced_drought(0.5))
        design = raven_multicore("180nm")
        assert stressed.total_weeks(design, 1e8) == pytest.approx(
            model.total_weeks(design, 1e8)
        )

    def test_advanced_drought_slows_advanced_designs(self, model):
        stressed = _under(model, scenarios.advanced_drought(0.3))
        assert stressed.total_weeks(a11("7nm"), 10e6) > model.total_weeks(
            a11("7nm"), 10e6
        )

    def test_fab_fire_is_surgical(self, model):
        stressed = _under(model, scenarios.fab_fire("28nm", 0.3))
        assert stressed.total_weeks(a11("28nm"), 10e6) > model.total_weeks(
            a11("28nm"), 10e6
        )
        assert stressed.total_weeks(a11("40nm"), 10e6) == pytest.approx(
            model.total_weeks(a11("40nm"), 10e6)
        )

    def test_legacy_crunch_can_flip_the_fastest_node(self, model):
        """At small volume the fastest A11 node is a legacy one; a deep
        legacy crunch hands the win to an unthrottled mature node — the
        re-release decision is scenario-dependent."""
        stressed = _under(model, scenarios.legacy_crunch(0.1))
        candidates = ("180nm", "130nm", "28nm", "7nm")
        base_best = min(
            candidates, key=lambda p: model.total_weeks(a11(p), 1e5)
        )
        crunch_best = min(
            candidates, key=lambda p: stressed.total_weeks(a11(p), 1e5)
        )
        assert base_best == "180nm"
        assert crunch_best == "28nm"
