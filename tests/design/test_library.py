"""Tests for the prebuilt case-study designs."""

import pytest

from repro.design.library import (
    ACCELERATORS,
    A11_TOTAL_TRANSISTORS,
    A11_UNIQUE_TRANSISTORS,
    a11,
    accelerator_by_key,
    ariane_core_transistors,
    ariane_manycore,
    ariane_with_accelerator,
    cache_transistors,
    fig13_variants,
    raven_multicore,
    zen2,
    zen2_monolithic,
)
from repro.design.library.generic import demo_chip_a, demo_chip_b, monolithic_design
from repro.design.library.zen2 import interposer_die
from repro.errors import InvalidDesignError


class TestAriane:
    def test_reference_core_matches_table3_ratio(self):
        """Table 3: sorting stream is 18.18x the Ariane reference core."""
        reference = ariane_core_transistors()
        assert 45.62e6 / reference == pytest.approx(18.18, abs=0.05)

    def test_cache_transistors_6t(self):
        assert cache_transistors(1) == 1024 * 8 * 6

    def test_manycore_structure(self):
        design = ariane_manycore("14nm", cores=16)
        die = design.dies[0]
        assert die.process == "14nm"
        core = next(b for b in die.blocks if b.name == "ariane-core")
        assert core.instances == 16

    def test_nut_independent_of_core_count(self):
        """Homogeneous cores tape out once."""
        one = ariane_manycore("14nm", cores=1).dies[0].nut
        sixteen = ariane_manycore("14nm", cores=16).dies[0].nut
        assert one == sixteen

    def test_ntt_scales_with_core_count(self):
        one = ariane_manycore("14nm", cores=1).dies[0]
        sixteen = ariane_manycore("14nm", cores=16).dies[0]
        # 15 extra core instances on top of the shared uncore/top-level.
        assert sixteen.ntt - one.ntt == pytest.approx(
            15 * ariane_core_transistors()
        )

    def test_bigger_caches_bigger_core(self):
        small = ariane_core_transistors(1, 1)
        large = ariane_core_transistors(1024, 1024)
        assert large > small

    def test_invalid_core_count(self):
        with pytest.raises(InvalidDesignError):
            ariane_manycore("14nm", cores=0)

    def test_accelerator_attachment(self):
        spec = accelerator_by_key("sorting-stream")
        design = ariane_with_accelerator("5nm", spec.block())
        die = design.dies[0]
        assert any(b.name == "sorting-stream" for b in die.blocks)
        base = ariane_manycore("5nm", cores=1).dies[0]
        assert die.nut == pytest.approx(base.nut + spec.transistors)


class TestA11:
    def test_total_and_unique_counts_exact(self):
        design = a11()
        die = design.dies[0]
        assert die.ntt == pytest.approx(A11_TOTAL_TRANSISTORS)
        assert die.nut == pytest.approx(A11_UNIQUE_TRANSISTORS)

    def test_original_process_is_10nm(self):
        assert a11().processes == ("10nm",)

    def test_retargeting_preserves_counts(self):
        for process in ("250nm", "28nm", "5nm"):
            die = a11(process).dies[0]
            assert die.ntt == pytest.approx(A11_TOTAL_TRANSISTORS)
            assert die.nut == pytest.approx(A11_UNIQUE_TRANSISTORS)

    def test_block_mix_matches_known_architecture(self):
        names = {block.name for block in a11().dies[0].blocks}
        assert {"big-cpu", "little-cpu", "gpu-core", "npu"} <= names

    def test_soft_ip_is_preverified(self):
        ip = next(
            b for b in a11().dies[0].blocks if b.name == "memory-and-soft-ip"
        )
        assert ip.is_verified


class TestZen2:
    def test_table4_compute_die(self, db):
        die = zen2().die("compute")
        assert die.ntt == pytest.approx(3.8e9)
        assert die.nut == pytest.approx(4.75e8)
        assert die.count == 2
        assert die.area_on(db["7nm"]) == 74.0

    def test_table4_io_die(self, db):
        die = zen2().die("io")
        assert die.ntt == pytest.approx(2.1e9)
        assert die.nut == pytest.approx(5.23e8)
        assert die.area_on(db["14nm"]) == 125.0

    def test_mixed_design_uses_two_nodes(self):
        assert set(zen2().processes) == {"7nm", "14nm"}

    def test_single_process_variant(self):
        assert zen2("7nm", "7nm").processes == ("7nm",)

    def test_interposer_area_is_120_percent(self, db):
        design = zen2(interposer=True)
        interposer = design.die("interposer")
        carried = 2 * 74.0 + 125.0
        assert interposer.area_on(db["65nm"]) == pytest.approx(1.2 * carried)
        assert interposer.yield_override == 0.9999

    def test_monolithic_merges_everything(self, db):
        mono = zen2_monolithic("7nm")
        assert mono.dies_per_package == 1
        die = mono.dies[0]
        assert die.ntt == pytest.approx(2 * 3.8e9 + 2.1e9)
        assert die.area_on(db["7nm"]) == pytest.approx(2 * 74.0 + 38.0)

    def test_monolithic_needs_published_area(self):
        with pytest.raises(InvalidDesignError):
            zen2_monolithic("65nm")

    def test_fig13_has_eight_variants(self):
        variants = fig13_variants()
        assert len(variants) == 8
        assert len({v.name for v in variants}) == 8

    def test_interposer_requires_positive_area(self):
        with pytest.raises(InvalidDesignError):
            interposer_die(0.0)


class TestRaven:
    def test_min_area_floor(self, db):
        design = raven_multicore("5nm")
        assert design.dies[0].area_on(db["5nm"]) == 1.0

    def test_legacy_area_above_floor(self, db):
        design = raven_multicore("250nm")
        assert design.dies[0].area_on(db["250nm"]) > 1.0

    def test_default_process_is_180nm(self):
        assert raven_multicore().processes == ("180nm",)

    def test_sram_is_preverified(self):
        die = raven_multicore().dies[0]
        sram = next(b for b in die.blocks if b.name == "sram-macro")
        assert sram.is_verified


class TestAccelerators:
    def test_table3_transistor_counts(self):
        expected = {
            "sorting-stream": 45.62e6,
            "sorting-iterative": 18.90e6,
            "dft-stream": 37.31e6,
            "dft-iterative": 18.18e6,
        }
        for spec in ACCELERATORS:
            assert spec.transistors == expected[spec.key]

    def test_blocks_fully_unique(self):
        """The paper counts non-memory transistors as unique (Sec. 6.4)."""
        for spec in ACCELERATORS:
            block = spec.block()
            assert block.nut == spec.transistors

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            accelerator_by_key("tpu")


class TestGenericDesigns:
    def test_monolithic_design_counts(self):
        design = monolithic_design("x", "7nm", ntt=1e9, nut=1e8)
        assert design.dies[0].ntt == 1e9
        assert design.dies[0].nut == 1e8

    def test_nut_cannot_exceed_ntt(self):
        with pytest.raises(InvalidDesignError):
            monolithic_design("x", "7nm", ntt=1e8, nut=1e9)

    def test_demo_chips_use_different_nodes(self):
        assert demo_chip_a().processes != demo_chip_b().processes
