"""Tests for design blocks (NTT/NUT accounting)."""

import pytest
from hypothesis import given, strategies as st

from repro.design.block import Block, ip_block
from repro.errors import InvalidDesignError


class TestBlock:
    def test_default_block_is_fully_unique(self):
        block = Block(name="core", transistors=1e6)
        assert block.nut == 1e6
        assert not block.is_verified

    def test_instances_multiply_ntt_not_nut(self):
        """Tapeout is paid once per block, not per instance (Sec. 3.2)."""
        block = Block(name="core", transistors=1e6, instances=16)
        assert block.total_transistors == 16e6
        assert block.nut == 1e6

    def test_explicit_unique_count(self):
        block = Block(name="io", transistors=2e9, unique_transistors=5e8)
        assert block.nut == 5e8
        assert block.total_transistors == 2e9

    def test_ip_block_is_verified(self):
        block = ip_block("sram", 1e7, instances=4)
        assert block.is_verified
        assert block.nut == 0.0
        assert block.total_transistors == 4e7

    def test_nut_cannot_exceed_ntt(self):
        with pytest.raises(InvalidDesignError):
            Block(name="bad", transistors=100.0, unique_transistors=200.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidDesignError):
            Block(name="bad", transistors=-1.0)
        with pytest.raises(InvalidDesignError):
            Block(name="bad", transistors=1.0, unique_transistors=-1.0)

    def test_zero_instances_rejected(self):
        with pytest.raises(InvalidDesignError):
            Block(name="bad", transistors=1.0, instances=0)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidDesignError):
            Block(name="", transistors=1.0)

    @given(
        transistors=st.floats(min_value=0.0, max_value=1e10),
        instances=st.integers(min_value=1, max_value=64),
    )
    def test_nut_never_exceeds_total(self, transistors, instances):
        block = Block(name="x", transistors=transistors, instances=instances)
        assert block.nut <= block.total_transistors
