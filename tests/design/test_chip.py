"""Tests for ChipDesign aggregation."""

import pytest

from repro.design.block import Block
from repro.design.chip import ChipDesign
from repro.design.die import Die
from repro.errors import InvalidDesignError


def _die(name, process, ntt=1e9, nut=1e8, count=1):
    return Die(
        name=name,
        process=process,
        blocks=(Block(name="logic", transistors=ntt, unique_transistors=nut),),
        count=count,
    )


class TestStructure:
    def test_processes_in_first_appearance_order(self):
        design = ChipDesign(
            name="chip",
            dies=(_die("c", "7nm", count=2), _die("io", "14nm")),
        )
        assert design.processes == ("7nm", "14nm")
        assert design.is_multi_process

    def test_single_process_design(self):
        design = ChipDesign(name="chip", dies=(_die("a", "7nm"),))
        assert not design.is_multi_process
        assert not design.is_chiplet

    def test_dies_per_package(self):
        design = ChipDesign(
            name="chip",
            dies=(_die("c", "7nm", count=2), _die("io", "14nm")),
        )
        assert design.dies_per_package == 3
        assert design.is_chiplet

    def test_ntt_per_chip_counts_die_multiplicity(self):
        design = ChipDesign(
            name="chip",
            dies=(_die("c", "7nm", ntt=3.8e9, count=2), _die("io", "14nm", ntt=2.1e9)),
        )
        assert design.ntt_per_chip == pytest.approx(2 * 3.8e9 + 2.1e9)

    def test_nut_by_process_sums_within_node(self):
        design = ChipDesign(
            name="chip",
            dies=(
                _die("a", "7nm", nut=1e8),
                _die("b", "7nm", nut=2e8),
                _die("io", "14nm", nut=5e8),
            ),
        )
        assert design.nut_by_process() == {"7nm": 3e8, "14nm": 5e8}

    def test_dies_on_filters_by_process(self):
        design = ChipDesign(
            name="chip", dies=(_die("a", "7nm"), _die("io", "14nm"))
        )
        assert [d.name for d in design.dies_on("7nm")] == ["a"]

    def test_die_lookup(self):
        design = ChipDesign(name="chip", dies=(_die("a", "7nm"),))
        assert design.die("a").name == "a"
        with pytest.raises(InvalidDesignError):
            design.die("missing")


class TestDerivation:
    def test_retarget_moves_every_die(self):
        design = ChipDesign(
            name="chip", dies=(_die("a", "7nm"), _die("io", "14nm"))
        )
        ported = design.retarget("28nm")
        assert ported.processes == ("28nm",)
        assert ported.name == "chip @ 28nm"

    def test_retarget_with_explicit_name(self):
        design = ChipDesign(name="chip", dies=(_die("a", "7nm"),))
        assert design.retarget("28nm", name="legacy").name == "legacy"

    def test_with_die_appends(self):
        design = ChipDesign(name="chip", dies=(_die("a", "7nm"),))
        extended = design.with_die(_die("b", "65nm"))
        assert extended.dies_per_package == 2
        assert design.dies_per_package == 1

    def test_renamed(self):
        design = ChipDesign(name="chip", dies=(_die("a", "7nm"),))
        assert design.renamed("other").name == "other"


class TestValidation:
    def test_needs_at_least_one_die(self):
        with pytest.raises(InvalidDesignError):
            ChipDesign(name="empty", dies=())

    def test_duplicate_die_names_rejected(self):
        with pytest.raises(InvalidDesignError):
            ChipDesign(name="dup", dies=(_die("a", "7nm"), _die("a", "14nm")))

    def test_negative_design_weeks_rejected(self):
        with pytest.raises(InvalidDesignError):
            ChipDesign(name="x", dies=(_die("a", "7nm"),), design_weeks=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidDesignError):
            ChipDesign(name="", dies=(_die("a", "7nm"),))
