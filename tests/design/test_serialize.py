"""Tests for design serialization."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.design.block import Block, ip_block
from repro.design.chip import ChipDesign
from repro.design.die import Die
from repro.design.serialize import (
    design_from_dict,
    design_to_dict,
    die_from_dict,
    die_to_dict,
)
from repro.errors import InvalidDesignError
from repro.technology.salvage import SalvageSpec


def _full_design():
    compute = Die(
        name="compute",
        process="7nm",
        blocks=(
            Block(name="core", transistors=4e8, instances=8),
            ip_block("sram", 1e9),
        ),
        count=2,
        top_level_transistors=3e7,
        salvage=SalvageSpec(
            n_units=8, required_units=6, unit_area_fraction=0.7
        ),
    )
    interposer = Die(
        name="interposer",
        process="65nm",
        area_mm2=400.0,
        yield_override=0.9999,
    )
    return ChipDesign(
        name="full", dies=(compute, interposer), design_weeks=12.0
    )


class TestRoundTrip:
    def test_full_design_round_trips(self):
        design = _full_design()
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt == design

    def test_survives_json(self):
        design = _full_design()
        rebuilt = design_from_dict(
            json.loads(json.dumps(design_to_dict(design)))
        )
        assert rebuilt == design

    def test_library_designs_round_trip(self):
        from repro.design.library import a11, raven_multicore, zen2

        for design in (a11("28nm"), zen2(interposer=True), raven_multicore()):
            assert design_from_dict(design_to_dict(design)) == design

    @settings(max_examples=30, deadline=None)
    @given(
        ntt=st.floats(min_value=1e3, max_value=1e10),
        nut_fraction=st.floats(min_value=0.0, max_value=1.0),
        instances=st.integers(1, 64),
        count=st.integers(1, 4),
    )
    def test_arbitrary_designs_round_trip(
        self, ntt, nut_fraction, instances, count
    ):
        design = ChipDesign(
            name="hypo",
            dies=(
                Die(
                    name="die",
                    process="14nm",
                    blocks=(
                        Block(
                            name="b",
                            transistors=ntt,
                            instances=instances,
                            unique_transistors=ntt * nut_fraction,
                        ),
                    ),
                    count=count,
                ),
            ),
        )
        assert design_from_dict(design_to_dict(design)) == design


class TestFormat:
    def test_defaults_omitted(self):
        design = ChipDesign(
            name="plain",
            dies=(
                Die(
                    name="d",
                    process="7nm",
                    blocks=(Block(name="b", transistors=1e6),),
                ),
            ),
        )
        data = design_to_dict(design)
        die_data = data["dies"][0]
        assert "count" not in die_data
        assert "salvage" not in die_data
        assert "design_weeks" not in data

    def test_version_written(self):
        assert design_to_dict(_full_design())["version"] == 1

    def test_unknown_version_rejected(self):
        data = design_to_dict(_full_design())
        data["version"] = 99
        with pytest.raises(InvalidDesignError, match="version"):
            design_from_dict(data)

    def test_unknown_keys_rejected(self):
        data = design_to_dict(_full_design())
        data["dies"][0]["transisters"] = 5  # the classic typo
        with pytest.raises(InvalidDesignError, match="transisters"):
            design_from_dict(data)

    def test_unknown_block_keys_rejected(self):
        data = design_to_dict(_full_design())
        data["dies"][0]["blocks"][0]["color"] = "blue"
        with pytest.raises(InvalidDesignError, match="color"):
            design_from_dict(data)

    def test_missing_dies_rejected(self):
        with pytest.raises(InvalidDesignError, match="dies"):
            design_from_dict({"version": 1, "name": "x"})

    def test_structural_validation_still_applies(self):
        """Loading re-runs the dataclass invariants."""
        data = design_to_dict(_full_design())
        data["dies"][0]["blocks"][0]["unique_transistors"] = 1e30
        with pytest.raises(InvalidDesignError):
            design_from_dict(data)

    def test_die_round_trip_standalone(self):
        die = _full_design().dies[0]
        assert die_from_dict(die_to_dict(die)) == die
