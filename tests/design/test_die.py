"""Tests for dies: geometry, yield, retargeting."""

import pytest

from repro.design.block import Block, ip_block
from repro.design.die import Die
from repro.errors import InvalidDesignError
from repro.technology.yield_model import negative_binomial_yield


def _die(**overrides):
    base = dict(
        name="test-die",
        process="7nm",
        blocks=(Block(name="logic", transistors=1e9),),
    )
    base.update(overrides)
    return Die(**base)


class TestAccounting:
    def test_ntt_sums_blocks_and_top_level(self):
        die = _die(
            blocks=(
                Block(name="core", transistors=1e6, instances=4),
                ip_block("sram", 2e6),
            ),
            top_level_transistors=5e5,
        )
        assert die.ntt == 4e6 + 2e6 + 5e5

    def test_nut_counts_unique_once_plus_top_level(self):
        die = _die(
            blocks=(
                Block(name="core", transistors=1e6, instances=4),
                ip_block("sram", 2e6),
            ),
            top_level_transistors=5e5,
        )
        assert die.nut == 1e6 + 5e5

    def test_passive_die(self):
        die = Die(name="interposer", process="65nm", area_mm2=300.0)
        assert die.is_passive
        assert die.nut == 0.0


class TestGeometry:
    def test_area_derived_from_density(self, db):
        die = _die()
        expected = 1e9 / db["7nm"].density_transistors_per_mm2
        assert die.area_on(db["7nm"]) == pytest.approx(expected)

    def test_explicit_area_override(self, db):
        die = _die(area_mm2=74.0)
        assert die.area_on(db["7nm"]) == 74.0

    def test_min_area_floor(self, db):
        die = _die(
            blocks=(Block(name="tiny", transistors=1e5),), min_area_mm2=1.0
        )
        assert die.area_on(db["7nm"]) == 1.0

    def test_wrong_node_rejected(self, db):
        with pytest.raises(InvalidDesignError):
            _die().area_on(db["5nm"])


class TestYield:
    def test_matches_eq6(self, db):
        die = _die(area_mm2=100.0)
        node = db["7nm"]
        assert die.yield_on(node) == pytest.approx(
            negative_binomial_yield(100.0, node.defect_density_per_cm2)
        )

    def test_override_wins(self, db):
        die = Die(
            name="interposer",
            process="65nm",
            area_mm2=400.0,
            yield_override=0.9999,
        )
        assert die.yield_on(db["65nm"]) == 0.9999

    def test_bad_override_rejected(self):
        with pytest.raises(InvalidDesignError):
            Die(name="x", process="7nm", area_mm2=1.0, yield_override=1.5)


class TestRetarget:
    def test_retarget_changes_process_and_drops_area(self, db):
        die = _die(area_mm2=74.0)
        ported = die.retarget("28nm")
        assert ported.process == "28nm"
        # Area now derives from 28 nm density, not the 7 nm override.
        expected = 1e9 / db["28nm"].density_transistors_per_mm2
        assert ported.area_on(db["28nm"]) == pytest.approx(expected)

    def test_retarget_preserves_counts(self):
        die = _die(top_level_transistors=1e6)
        ported = die.retarget("28nm")
        assert ported.ntt == die.ntt
        assert ported.nut == die.nut

    def test_with_count(self):
        assert _die().with_count(3).count == 3


class TestValidation:
    def test_empty_die_needs_area(self):
        with pytest.raises(InvalidDesignError):
            Die(name="empty", process="7nm")

    def test_duplicate_block_names_rejected(self):
        with pytest.raises(InvalidDesignError):
            Die(
                name="dup",
                process="7nm",
                blocks=(
                    Block(name="a", transistors=1.0),
                    Block(name="a", transistors=2.0),
                ),
            )

    def test_zero_count_rejected(self):
        with pytest.raises(InvalidDesignError):
            _die(count=0)

    def test_negative_top_level_rejected(self):
        with pytest.raises(InvalidDesignError):
            _die(top_level_transistors=-1.0)

    def test_non_positive_explicit_area_rejected(self):
        with pytest.raises(InvalidDesignError):
            _die(area_mm2=0.0)
