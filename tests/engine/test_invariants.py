"""Tests for the per-(design, technology) invariant cache."""

import pytest

from repro.design.library.a11 import a11
from repro.design.library.zen2 import fig13_variants
from repro.engine.invariants import (
    CACHE_MAX_ENTRIES,
    clear_invariant_cache,
    compute_invariants,
    design_invariants,
    invariant_cache_info,
)
from repro.technology.database import TechnologyDatabase
from repro.ttm.model import DEFAULT_ENGINEERS, TTMModel


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_invariant_cache()
    yield
    clear_invariant_cache()


@pytest.fixture(scope="module")
def db():
    return TechnologyDatabase.default()


class TestCaching:
    def test_second_lookup_hits(self, db):
        design = a11("7nm")
        first = design_invariants(design, db, DEFAULT_ENGINEERS)
        second = design_invariants(design, db, DEFAULT_ENGINEERS)
        assert first is second
        info = invariant_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["entries"] == 1

    def test_identity_keying_distinguishes_equal_designs(self, db):
        first = design_invariants(a11("7nm"), db, DEFAULT_ENGINEERS)
        second = design_invariants(a11("7nm"), db, DEFAULT_ENGINEERS)
        # Two calls to a11() build equal but distinct objects; the cache
        # keys on identity, so each gets its own entry.
        assert first is not second
        assert invariant_cache_info()["entries"] == 2

    def test_model_parameters_partition_the_cache(self, db):
        design = a11("7nm")
        base = design_invariants(design, db, DEFAULT_ENGINEERS)
        bigger_team = design_invariants(design, db, 500)
        corrected = design_invariants(
            design, db, DEFAULT_ENGINEERS, edge_corrected=True
        )
        assert base is not bigger_team
        assert base is not corrected
        assert bigger_team.tapeout_weeks[0] < base.tapeout_weeks[0]
        assert invariant_cache_info()["entries"] == 3

    def test_clear_resets(self, db):
        design_invariants(a11("7nm"), db, DEFAULT_ENGINEERS)
        clear_invariant_cache()
        info = invariant_cache_info()
        assert info == {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}

    def test_lru_eviction_is_bounded(self, db):
        designs = [a11("7nm") for _ in range(CACHE_MAX_ENTRIES + 5)]
        for design in designs:
            design_invariants(design, db, DEFAULT_ENGINEERS)
        assert invariant_cache_info()["entries"] == CACHE_MAX_ENTRIES


class TestValues:
    def test_matches_uncached_computation(self, db):
        design = fig13_variants()[0]
        cached = design_invariants(design, db, DEFAULT_ENGINEERS)
        direct = compute_invariants(design, db, DEFAULT_ENGINEERS)
        assert cached.processes == direct.processes
        assert cached.wafers_per_chip == pytest.approx(
            direct.wafers_per_chip
        )
        assert cached.tapeout_weeks == pytest.approx(direct.tapeout_weeks)

    def test_invariants_reflect_model_semantics(self, db):
        model = TTMModel.nominal()
        design = a11("7nm")
        invariants = design_invariants(
            design,
            model.foundry.technology,
            model.engineers,
            alpha=model.alpha,
            edge_corrected=model.edge_corrected,
            block_parallel=model.block_parallel,
        )
        assert invariants.processes == ("7nm",)
        assert invariants.design_weeks == 0.0
        assert invariants.wafers_per_chip[0] > 0.0
        assert invariants.max_rate[0] > 0.0
