"""Executable pin of the invariant cache's invalidation contract.

DESIGN.md / ``engine.invariants`` document the contract as: entries are
keyed by *object identity*, which is sound because designs and
technologies are immutable — to change an input you must build a derived
object, and the derived object misses the cache and recomputes. These
tests make both halves executable:

* mutating a cached design/technology (or their parts) **raises** — the
  value objects are frozen;
* deriving a new design/technology after a cache hit **recomputes** —
  the result visibly reflects the change instead of serving stale data.
"""

import dataclasses

import numpy as np
import pytest

from repro.design.library import a11
from repro.engine.invariants import (
    clear_invariant_cache,
    design_invariants,
    invariant_cache_info,
)
from repro.technology.database import TechnologyDatabase
from repro.ttm.model import DEFAULT_ENGINEERS


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_invariant_cache()
    yield
    clear_invariant_cache()


class TestMutationRaises:
    def test_design_is_frozen(self):
        design = a11("7nm")
        with pytest.raises(dataclasses.FrozenInstanceError):
            design.name = "A12"

    def test_die_is_frozen(self):
        die = a11("7nm").dies[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            die.area_mm2 = 1.0

    def test_process_node_is_frozen(self, db):
        node = db["7nm"]
        with pytest.raises(dataclasses.FrozenInstanceError):
            node.defect_density_per_cm2 = 0.0

    def test_database_has_no_public_mutators(self, db):
        # The Mapping facade is read-only: no __setitem__/__delitem__,
        # and the only way to "change" a node is override(), which
        # returns a new database.
        with pytest.raises(TypeError):
            db["7nm"] = db["5nm"]


class TestDerivationRecomputes:
    def test_cache_hit_then_override_recomputes(self, db):
        design = a11("7nm")
        first = design_invariants(design, db, DEFAULT_ENGINEERS)
        again = design_invariants(design, db, DEFAULT_ENGINEERS)
        assert again is first  # identity hit
        info = invariant_cache_info()
        assert info["hits"] >= 1

    def test_overridden_technology_misses_and_reflects_change(self, db):
        design = a11("7nm")
        before = design_invariants(design, db, DEFAULT_ENGINEERS)
        doubled = db.override(
            {"7nm": {
                "defect_density_per_cm2": db["7nm"].defect_density_per_cm2 * 2
            }}
        )
        after = design_invariants(design, doubled, DEFAULT_ENGINEERS)
        assert after is not before
        # Worse yield -> strictly more wafers per chip.
        assert np.sum(after.wafers_per_chip) > np.sum(before.wafers_per_chip)
        # The original entry is untouched (no stale overwrite either way).
        assert design_invariants(design, db, DEFAULT_ENGINEERS) is before

    def test_replaced_design_misses_and_reflects_change(self, db):
        design = a11("7nm")
        before = design_invariants(design, db, DEFAULT_ENGINEERS)
        die = design.dies[0]
        bigger_die = dataclasses.replace(
            die, area_mm2=2.0 * die.area_on(db[die.process])
        )
        bigger = dataclasses.replace(
            design, dies=(bigger_die,) + design.dies[1:]
        )
        after = design_invariants(bigger, db, DEFAULT_ENGINEERS)
        assert after is not before
        assert np.sum(after.wafers_per_chip) > np.sum(before.wafers_per_chip)

    def test_equal_but_distinct_objects_are_distinct_entries(self):
        # Identity keying: a structurally identical rebuild is a *miss*,
        # never a false hit on the old entry.
        db_a = TechnologyDatabase.default()
        db_b = TechnologyDatabase.default()
        design = a11("7nm")
        first = design_invariants(design, db_a, DEFAULT_ENGINEERS)
        second = design_invariants(design, db_b, DEFAULT_ENGINEERS)
        assert first is not second
        assert invariant_cache_info()["misses"] >= 2

    def test_model_knobs_are_part_of_the_key(self, db):
        design = a11("7nm")
        default = design_invariants(design, db, DEFAULT_ENGINEERS)
        more_engineers = design_invariants(design, db, DEFAULT_ENGINEERS * 2)
        assert more_engineers is not default
        # Twice the engineers halve the calendar tapeout time (Eq. 2), so
        # the knob must be part of the key or sweeps would serve stale
        # schedules.
        assert more_engineers.sequential_tapeout_weeks != pytest.approx(
            default.sequential_tapeout_weeks
        )


class TestThreadSafety:
    """Counters and eviction stay exact under concurrent access.

    ``cached_invariants`` accounts exactly one hit or one miss per call
    and mutates the LRU only under the module lock, so a thread-pool
    hammering a handful of keys must end with ``hits + misses == calls``
    and one entry per distinct key — the statistics ``parallel_map``
    thread-executor runs report are trustworthy.
    """

    def test_concurrent_counters_are_exact(self, db):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        designs = [a11(node) for node in ("65nm", "40nm", "28nm", "7nm")]
        n_workers = 8
        iterations = 25
        barrier = threading.Barrier(n_workers)

        def hammer(worker):
            barrier.wait()  # maximize contention on the cold keys
            for i in range(iterations):
                design = designs[(worker + i) % len(designs)]
                invariants = design_invariants(
                    design, db, DEFAULT_ENGINEERS
                )
                assert invariants.processes == design.processes

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            list(pool.map(hammer, range(n_workers)))

        info = invariant_cache_info()
        assert info["hits"] + info["misses"] == n_workers * iterations
        assert info["entries"] == len(designs)
        # Racing threads may double-compute a cold key, but never
        # under-account it.
        assert info["misses"] >= len(designs)

    def test_concurrent_portfolio_compiles_share_entries(self, db):
        from concurrent.futures import ThreadPoolExecutor

        from repro.engine.portfolio import compile_portfolio

        designs = tuple(a11(node) for node in ("40nm", "28nm", "7nm"))

        def compile_once(_):
            return compile_portfolio(designs, db)

        with ThreadPoolExecutor(max_workers=6) as pool:
            compiled = list(pool.map(compile_once, range(12)))

        info = invariant_cache_info()
        # A warm portfolio key is one hit; only cold compiles touch the
        # per-design entries. Every lookup is still accounted exactly.
        assert info["hits"] + info["misses"] >= 12
        assert info["misses"] >= len(designs) + 1
        # 3 per-design entries + 1 portfolio entry.
        assert info["entries"] == len(designs) + 1
        reference = compiled[0]
        for other in compiled:
            assert np.array_equal(
                other.tapeout_weeks, reference.tapeout_weeks
            )
            assert np.array_equal(other.max_rate, reference.max_rate)


class TestPortfolioEviction:
    """The LRU bound covers portfolio entries like any other."""

    def test_compiling_past_the_bound_evicts_oldest(self, db, monkeypatch):
        from repro.engine import invariants as invariants_module
        from repro.engine.portfolio import compile_portfolio

        monkeypatch.setattr(invariants_module, "CACHE_MAX_ENTRIES", 3)
        oldest = compile_portfolio((a11("65nm"),), db)
        # Each compile adds 2 entries (design + portfolio); the third
        # portfolio pushes the bound, evicting the oldest entries.
        compile_portfolio((a11("40nm"),), db)
        compile_portfolio((a11("28nm"),), db)
        assert invariant_cache_info()["entries"] == 3
        recompiled = compile_portfolio((a11("65nm"),), db)
        assert recompiled is not oldest  # the entry was really evicted

    def test_recompilation_after_eviction_is_bit_identical(
        self, db, monkeypatch
    ):
        from repro.engine import invariants as invariants_module
        from repro.engine.portfolio import compile_portfolio

        designs = tuple(a11(node) for node in ("40nm", "7nm"))
        first = compile_portfolio(designs, db)
        monkeypatch.setattr(invariants_module, "CACHE_MAX_ENTRIES", 1)
        compile_portfolio((a11("180nm"),), db)  # evict everything else
        second = compile_portfolio(designs, db)
        assert second is not first
        for field in (
            "node_mask",
            "tapeout_weeks",
            "max_rate",
            "fab_latency_weeks",
            "wafers_per_chip",
            "wafer_cost_usd",
            "sequential_tapeout_weeks",
            "testing_weeks_per_chip",
            "design_weeks",
            "profile_mean_defects",
        ):
            assert np.array_equal(
                getattr(second, field), getattr(first, field)
            )
        assert second.designs == first.designs
        assert second.processes == first.processes

    def test_clear_drops_portfolio_entries(self, db):
        from repro.engine.portfolio import compile_portfolio, portfolio_fingerprint

        designs = (a11("28nm"), a11("7nm"))
        compiled = compile_portfolio(designs, db)
        assert invariant_cache_info()["entries"] == len(designs) + 1
        clear_invariant_cache()
        assert invariant_cache_info() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
        }
        recompiled = compile_portfolio(designs, db)
        assert recompiled is not compiled
        assert np.array_equal(
            recompiled.tapeout_weeks, compiled.tapeout_weeks
        )
