"""Executable pin of the invariant cache's invalidation contract.

DESIGN.md / ``engine.invariants`` document the contract as: entries are
keyed by *object identity*, which is sound because designs and
technologies are immutable — to change an input you must build a derived
object, and the derived object misses the cache and recomputes. These
tests make both halves executable:

* mutating a cached design/technology (or their parts) **raises** — the
  value objects are frozen;
* deriving a new design/technology after a cache hit **recomputes** —
  the result visibly reflects the change instead of serving stale data.
"""

import dataclasses

import numpy as np
import pytest

from repro.design.library import a11
from repro.engine.invariants import (
    clear_invariant_cache,
    design_invariants,
    invariant_cache_info,
)
from repro.technology.database import TechnologyDatabase
from repro.ttm.model import DEFAULT_ENGINEERS


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_invariant_cache()
    yield
    clear_invariant_cache()


class TestMutationRaises:
    def test_design_is_frozen(self):
        design = a11("7nm")
        with pytest.raises(dataclasses.FrozenInstanceError):
            design.name = "A12"

    def test_die_is_frozen(self):
        die = a11("7nm").dies[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            die.area_mm2 = 1.0

    def test_process_node_is_frozen(self, db):
        node = db["7nm"]
        with pytest.raises(dataclasses.FrozenInstanceError):
            node.defect_density_per_cm2 = 0.0

    def test_database_has_no_public_mutators(self, db):
        # The Mapping facade is read-only: no __setitem__/__delitem__,
        # and the only way to "change" a node is override(), which
        # returns a new database.
        with pytest.raises(TypeError):
            db["7nm"] = db["5nm"]


class TestDerivationRecomputes:
    def test_cache_hit_then_override_recomputes(self, db):
        design = a11("7nm")
        first = design_invariants(design, db, DEFAULT_ENGINEERS)
        again = design_invariants(design, db, DEFAULT_ENGINEERS)
        assert again is first  # identity hit
        info = invariant_cache_info()
        assert info["hits"] >= 1

    def test_overridden_technology_misses_and_reflects_change(self, db):
        design = a11("7nm")
        before = design_invariants(design, db, DEFAULT_ENGINEERS)
        doubled = db.override(
            {"7nm": {
                "defect_density_per_cm2": db["7nm"].defect_density_per_cm2 * 2
            }}
        )
        after = design_invariants(design, doubled, DEFAULT_ENGINEERS)
        assert after is not before
        # Worse yield -> strictly more wafers per chip.
        assert np.sum(after.wafers_per_chip) > np.sum(before.wafers_per_chip)
        # The original entry is untouched (no stale overwrite either way).
        assert design_invariants(design, db, DEFAULT_ENGINEERS) is before

    def test_replaced_design_misses_and_reflects_change(self, db):
        design = a11("7nm")
        before = design_invariants(design, db, DEFAULT_ENGINEERS)
        die = design.dies[0]
        bigger_die = dataclasses.replace(
            die, area_mm2=2.0 * die.area_on(db[die.process])
        )
        bigger = dataclasses.replace(
            design, dies=(bigger_die,) + design.dies[1:]
        )
        after = design_invariants(bigger, db, DEFAULT_ENGINEERS)
        assert after is not before
        assert np.sum(after.wafers_per_chip) > np.sum(before.wafers_per_chip)

    def test_equal_but_distinct_objects_are_distinct_entries(self):
        # Identity keying: a structurally identical rebuild is a *miss*,
        # never a false hit on the old entry.
        db_a = TechnologyDatabase.default()
        db_b = TechnologyDatabase.default()
        design = a11("7nm")
        first = design_invariants(design, db_a, DEFAULT_ENGINEERS)
        second = design_invariants(design, db_b, DEFAULT_ENGINEERS)
        assert first is not second
        assert invariant_cache_info()["misses"] >= 2

    def test_model_knobs_are_part_of_the_key(self, db):
        design = a11("7nm")
        default = design_invariants(design, db, DEFAULT_ENGINEERS)
        more_engineers = design_invariants(design, db, DEFAULT_ENGINEERS * 2)
        assert more_engineers is not default
        # Twice the engineers halve the calendar tapeout time (Eq. 2), so
        # the knob must be part of the key or sweeps would serve stale
        # schedules.
        assert more_engineers.sequential_tapeout_weeks != pytest.approx(
            default.sequential_tapeout_weeks
        )
