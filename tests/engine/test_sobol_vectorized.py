"""Vectorized Sobol path: equivalence, reproducibility, finite guard."""

import numpy as np
import pytest

from repro.design.library.a11 import (
    A11_TOTAL_TRANSISTORS,
    A11_UNIQUE_TRANSISTORS,
)
from repro.engine.sobol_adapter import (
    rowwise_batch_function,
    ttm_factor_batch_function,
)
from repro.errors import InvalidParameterError
from repro.sensitivity.distributions import Factor
from repro.sensitivity.sobol import sobol_indices
from repro.sensitivity.ttm_factors import (
    FACTOR_NAMES,
    ttm_factor_function,
    ttm_factors,
)

N_CHIPS = 1e7


def a11_factors(process: str):
    return ttm_factors(
        process, A11_TOTAL_TRANSISTORS, A11_UNIQUE_TRANSISTORS
    )


class TestAdapterEquivalence:
    @pytest.mark.parametrize("process", ("250nm", "28nm", "7nm", "5nm"))
    def test_matches_scalar_objective(self, process):
        scalar = ttm_factor_function(process, N_CHIPS)
        batched = ttm_factor_batch_function(process, N_CHIPS)
        factors = a11_factors(process)
        rng = np.random.default_rng(7)
        lows = np.array([f.low for f in factors])
        highs = np.array([f.high for f in factors])
        matrix = rng.uniform(lows, highs, size=(64, len(factors)))
        expected = [
            scalar(dict(zip(FACTOR_NAMES, row))) for row in matrix
        ]
        np.testing.assert_allclose(batched(matrix), expected, rtol=1e-9)

    def test_rejects_wrong_width(self):
        batched = ttm_factor_batch_function("7nm", N_CHIPS)
        with pytest.raises(InvalidParameterError, match="factor matrix"):
            batched(np.ones((4, 3)))

    def test_rowwise_lift_matches_scalar(self):
        scalar = ttm_factor_function("7nm", N_CHIPS)
        lifted = rowwise_batch_function(scalar, FACTOR_NAMES)
        factors = a11_factors("7nm")
        matrix = np.array(
            [[(f.low + f.high) / 2.0 for f in factors]] * 3
        )
        expected = scalar(dict(zip(FACTOR_NAMES, matrix[0])))
        np.testing.assert_allclose(lifted(matrix), [expected] * 3)


class TestVectorizedIndices:
    @pytest.mark.parametrize("process", ("28nm", "5nm"))
    def test_matches_scalar_path(self, process):
        factors = a11_factors(process)
        scalar = sobol_indices(
            ttm_factor_function(process, N_CHIPS), factors, base_samples=64
        )
        vectorized = sobol_indices(
            ttm_factor_batch_function(process, N_CHIPS),
            factors,
            base_samples=64,
            vectorized=True,
        )
        assert vectorized.evaluations == scalar.evaluations
        for name in FACTOR_NAMES:
            assert vectorized.total_effect[name] == pytest.approx(
                scalar.total_effect[name], rel=1e-9, abs=1e-12
            )
            assert vectorized.first_order[name] == pytest.approx(
                scalar.first_order[name], rel=1e-9, abs=1e-12
            )

    def test_seed_reproducibility(self):
        factors = a11_factors("7nm")
        function = ttm_factor_batch_function("7nm", N_CHIPS)
        first = sobol_indices(
            function, factors, base_samples=32, seed=123, vectorized=True
        )
        again = sobol_indices(
            function, factors, base_samples=32, seed=123, vectorized=True
        )
        other = sobol_indices(
            function, factors, base_samples=32, seed=124, vectorized=True
        )
        assert first.raw_total_effect == again.raw_total_effect
        assert first.raw_total_effect != other.raw_total_effect

    def test_shape_mismatch_is_rejected(self):
        factors = a11_factors("7nm")
        with pytest.raises(InvalidParameterError, match="shape"):
            sobol_indices(
                lambda matrix: np.ones((matrix.shape[0], 2)),
                factors,
                base_samples=8,
                vectorized=True,
            )


class TestFiniteGuard:
    def test_nan_output_names_the_row(self):
        factors = (
            Factor("x", 1.0, 0.5),
            Factor("y", 1.0, 0.5),
        )

        def poisoned(values):
            return float("nan") if values["x"] > 1.0 else 1.0

        with pytest.raises(InvalidParameterError) as excinfo:
            sobol_indices(poisoned, factors, base_samples=16)
        message = str(excinfo.value)
        assert "non-finite" in message
        assert "'x'" in message

    def test_inf_output_vectorized(self):
        factors = (Factor("x", 1.0, 0.5),)

        def diverging(matrix):
            column = matrix[:, 0]
            return np.where(column > 1.0, np.inf, column)

        with pytest.raises(InvalidParameterError, match="non-finite"):
            sobol_indices(
                diverging, factors, base_samples=16, vectorized=True
            )
