"""Portfolio kernels vs the per-design batch oracle, cell for cell.

The contract (DESIGN.md S18): row ``i`` of every ``portfolio_*`` tensor
equals the corresponding ``batch_*`` call for design ``i`` under the
same shared supply samples, to <= 1e-9 absolute — usually to the last
bit, because the fused kernels replicate the batch association order.
These tests sweep the supply knobs (capacity as None / global scalar /
shared vector / per-node mapping, queue overrides, defect-density and
wafer-rate scales, per-design demand matrices), mix single- and
multi-node designs so the padded node slots are exercised, and pin the
validation errors and the compile cache behaviour.
"""

import numpy as np
import pytest

from repro.design.library.a11 import a11
from repro.design.library.ariane import ariane_manycore
from repro.design.library.zen2 import fig13_variants, zen2, zen2_monolithic
from repro.engine.batch import batch_cas, batch_cost, batch_ttm
from repro.engine.invariants import (
    clear_invariant_cache,
    invariant_cache_info,
)
from repro.engine.portfolio import (
    compile_portfolio,
    portfolio_cas,
    portfolio_cas_over_capacity,
    portfolio_cost,
    portfolio_fingerprint,
    portfolio_ttm,
    portfolio_ttm_over_capacity,
)
from repro.errors import InvalidParameterError

TOLERANCE = 1e-9
N_CHIPS = 2.5e7


@pytest.fixture
def mixed_designs():
    """Single-node and multi-node designs in one portfolio (padding)."""
    return (
        a11("7nm"),
        zen2(),  # 7 nm compute + 12 nm I/O chiplets
        zen2_monolithic("7nm"),
        ariane_manycore("28nm", cores=8),
    )


def assert_rows_match(matrix, oracle_rows):
    for i, row in enumerate(oracle_rows):
        cell_error = np.max(np.abs(np.asarray(matrix[i]) - row))
        assert float(cell_error) <= TOLERANCE


class TestTTMEquivalence:
    def test_current_conditions(self, model, mixed_designs):
        result = portfolio_ttm(model, mixed_designs, N_CHIPS)
        assert result.total_weeks.shape == (len(mixed_designs), 1)
        assert_rows_match(
            result.total_weeks,
            [
                batch_ttm(model, design, N_CHIPS).total_weeks
                for design in mixed_designs
            ],
        )

    @pytest.mark.parametrize(
        "capacity",
        [
            0.4,
            (0.25, 0.5, 0.75, 1.0),
            {"7nm": 0.3},
            {"7nm": (0.3, 0.6), "12nm": (0.9, 0.5)},
        ],
        ids=["scalar", "vector", "one-node", "per-node-vectors"],
    )
    def test_capacity_forms(self, model, mixed_designs, capacity):
        result = portfolio_ttm(
            model, mixed_designs, N_CHIPS, capacity=capacity
        )
        for i, design in enumerate(mixed_designs):
            oracle = batch_ttm(
                model, design, N_CHIPS, capacity=capacity
            )
            for field in (
                "tapeout_weeks",
                "fabrication_weeks",
                "packaging_weeks",
                "total_weeks",
                "total_wafers",
            ):
                assert np.max(
                    np.abs(
                        getattr(result, field)[i] - getattr(oracle, field)
                    )
                ) <= TOLERANCE

    def test_supply_samples(self, model, mixed_designs):
        rng = np.random.default_rng(11)
        samples = 32
        capacity = rng.uniform(0.2, 1.0, samples)
        queue_weeks = rng.uniform(0.0, 25.0, samples)
        d0_scale = rng.uniform(0.5, 2.0, samples)
        rate_scale = rng.uniform(0.6, 1.4, samples)
        result = portfolio_ttm(
            model,
            mixed_designs,
            N_CHIPS,
            capacity=capacity,
            queue_weeks=queue_weeks,
            d0_scale=d0_scale,
            wafer_rate_scale=rate_scale,
        )
        assert_rows_match(
            result.total_weeks,
            [
                batch_ttm(
                    model,
                    design,
                    N_CHIPS,
                    capacity=capacity,
                    queue_weeks=queue_weeks,
                    d0_scale=d0_scale,
                    wafer_rate_scale=rate_scale,
                ).total_weeks
                for design in mixed_designs
            ],
        )

    def test_per_design_demand_matrix(self, model, mixed_designs):
        rng = np.random.default_rng(12)
        demand = rng.uniform(1e6, 1e8, (len(mixed_designs), 16))
        result = portfolio_ttm(model, mixed_designs, demand)
        assert_rows_match(
            result.total_weeks,
            [
                batch_ttm(model, design, demand[i]).total_weeks
                for i, design in enumerate(mixed_designs)
            ],
        )

    def test_sequential_schedule(self, mixed_designs, model):
        sequential = type(model)(
            foundry=model.foundry, schedule="sequential"
        )
        result = portfolio_ttm(
            sequential, mixed_designs, N_CHIPS, capacity=(0.5, 1.0)
        )
        assert_rows_match(
            result.total_weeks,
            [
                batch_ttm(
                    sequential, design, N_CHIPS, capacity=(0.5, 1.0)
                ).total_weeks
                for design in mixed_designs
            ],
        )

    def test_over_capacity_convenience(self, model, mixed_designs):
        fractions = (0.25, 0.5, 1.0)
        matrix = portfolio_ttm_over_capacity(
            model, mixed_designs, N_CHIPS, fractions
        )
        assert matrix.shape == (len(mixed_designs), len(fractions))
        assert_rows_match(
            matrix,
            [
                batch_ttm(
                    model, design, N_CHIPS, capacity=fractions
                ).total_weeks
                for design in mixed_designs
            ],
        )


class TestCASEquivalence:
    def test_padded_slots_have_zero_sensitivity(self, model, mixed_designs):
        result = portfolio_cas(model, mixed_designs, N_CHIPS)
        for i, design in enumerate(mixed_designs):
            used = len(result.processes[i])
            assert np.all(result.sensitivity[i, used:, :] == 0.0)

    def test_matches_batch_cas(self, model, mixed_designs):
        fractions = (0.3, 0.65, 1.0)
        result = portfolio_cas(
            model, mixed_designs, N_CHIPS, capacity=fractions
        )
        for i, design in enumerate(mixed_designs):
            oracle = batch_cas(
                model, design, N_CHIPS, capacity=fractions
            )
            assert np.max(np.abs(result.cas[i] - oracle.cas)) <= TOLERANCE
            for slot, process in enumerate(result.processes[i]):
                assert np.max(
                    np.abs(
                        result.sensitivity[i, slot, :]
                        - oracle.sensitivity[process]
                    )
                ) <= TOLERANCE

    def test_over_capacity_matches_fig13_oracle(self, model, mixed_designs):
        fractions = (0.4, 0.8)
        matrix = portfolio_cas_over_capacity(
            model, mixed_designs, N_CHIPS, fractions
        )
        assert_rows_match(
            matrix,
            [
                batch_cas(
                    model, design, N_CHIPS, capacity=fractions
                ).normalized
                for design in mixed_designs
            ],
        )


class TestCostEquivalence:
    def test_matches_batch_cost(self, cost_model, mixed_designs):
        rng = np.random.default_rng(13)
        demand = rng.uniform(1e6, 1e8, 16)
        d0_scale = rng.uniform(0.5, 2.0, 16)
        result = portfolio_cost(
            cost_model, mixed_designs, demand, d0_scale=d0_scale
        )
        for i, design in enumerate(mixed_designs):
            oracle = batch_cost(cost_model, design, demand, d0_scale)
            assert result.engineering_usd[i] == pytest.approx(
                oracle.engineering_usd, rel=TOLERANCE
            )
            assert result.fixed_usd[i] == oracle.fixed_usd
            assert result.mask_usd[i] == oracle.mask_usd
            for field in ("wafer_usd", "testing_usd", "packaging_usd"):
                rel = np.max(
                    np.abs(
                        getattr(result, field)[i] - getattr(oracle, field)
                    )
                    / np.abs(getattr(oracle, field))
                )
                assert float(rel) <= TOLERANCE
            total_rel = np.max(
                np.abs(result.total_usd[i] - oracle.total_usd)
                / np.abs(oracle.total_usd)
            )
            assert float(total_rel) <= TOLERANCE

    def test_per_design_demand_matrix(self, cost_model, mixed_designs):
        rng = np.random.default_rng(14)
        demand = rng.uniform(1e6, 1e8, (len(mixed_designs), 8))
        result = portfolio_cost(cost_model, mixed_designs, demand)
        for i, design in enumerate(mixed_designs):
            oracle = batch_cost(cost_model, design, demand[i])
            rel = np.max(
                np.abs(result.total_usd[i] - oracle.total_usd)
                / np.abs(oracle.total_usd)
            )
            assert float(rel) <= TOLERANCE

    def test_fig13_variants_cost_panel(self, cost_model):
        variants = fig13_variants()
        quantities = (10e6, 50e6, 100e6)
        result = portfolio_cost(cost_model, variants, quantities)
        for i, design in enumerate(variants):
            oracle = batch_cost(cost_model, design, quantities)
            rel = np.max(
                np.abs(result.total_usd[i] - oracle.total_usd)
                / np.abs(oracle.total_usd)
            )
            assert float(rel) <= TOLERANCE


class TestValidation:
    def test_empty_portfolio_rejected(self, db):
        with pytest.raises(InvalidParameterError, match="at least one"):
            compile_portfolio((), db)

    def test_two_dimensional_capacity_rejected(self, model, mixed_designs):
        with pytest.raises(
            InvalidParameterError, match="common random numbers"
        ):
            portfolio_ttm(
                model,
                mixed_designs,
                N_CHIPS,
                capacity=np.full((2, 3), 0.5),
            )

    def test_two_dimensional_queue_rejected(self, model, mixed_designs):
        with pytest.raises(
            InvalidParameterError, match="common random numbers"
        ):
            portfolio_ttm(
                model,
                mixed_designs,
                N_CHIPS,
                queue_weeks=np.full((2, 3), 1.0),
            )

    def test_wrong_leading_demand_dimension_rejected(
        self, model, mixed_designs
    ):
        with pytest.raises(
            InvalidParameterError, match=r"\(n_designs, n_samples\)"
        ):
            portfolio_ttm(
                model,
                mixed_designs,
                np.full((len(mixed_designs) + 1, 4), 1e6),
            )

    def test_zero_capacity_names_the_node(self, model, mixed_designs):
        conditions = model.foundry.conditions.with_capacity("7nm", 0.0)
        stalled = model.with_foundry(
            model.foundry.with_conditions(conditions)
        )
        with pytest.raises(
            InvalidParameterError, match="'7nm' has zero effective capacity"
        ):
            portfolio_ttm(stalled, mixed_designs, N_CHIPS)

    def test_zero_sensitivity_names_the_design(self, model):
        # A tiny volume makes every node slope vanish for that design.
        designs = (a11("7nm"), a11("28nm"))
        with pytest.raises(
            InvalidParameterError, match="zero TTM sensitivity"
        ):
            portfolio_cas(model, designs, 1e-6)


class TestCompileCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_invariant_cache()
        yield
        clear_invariant_cache()

    def test_shared_entry_across_kernels(self, model, db, mixed_designs):
        compiled = compile_portfolio(mixed_designs, db)
        again = compile_portfolio(mixed_designs, db)
        assert again is compiled
        info = invariant_cache_info()
        # One miss per design plus one for the stacked portfolio.
        assert info["misses"] == len(mixed_designs) + 1
        assert info["hits"] >= 1

    def test_fingerprint_distinguishes_design_order(self, db, mixed_designs):
        forward = portfolio_fingerprint(mixed_designs, db)
        reversed_key = portfolio_fingerprint(mixed_designs[::-1], db)
        assert forward != reversed_key

    def test_fingerprint_includes_model_knobs(self, db, mixed_designs):
        default = portfolio_fingerprint(mixed_designs, db)
        assert default != portfolio_fingerprint(
            mixed_designs, db, engineers=200
        )
        assert default != portfolio_fingerprint(
            mixed_designs, db, edge_corrected=True
        )

    def test_kernels_reuse_one_compiled_portfolio(self, model, mixed_designs):
        portfolio_ttm(model, mixed_designs, N_CHIPS)
        misses_after_first = invariant_cache_info()["misses"]
        portfolio_cas(model, mixed_designs, N_CHIPS)
        portfolio_ttm(model, mixed_designs, N_CHIPS, capacity=0.5)
        assert invariant_cache_info()["misses"] == misses_after_first
