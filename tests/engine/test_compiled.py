"""Compiled backend: registry semantics + NumPy equivalence contract.

The compiled backend's numerics contract has two halves, both pinned
here: with ``dtype="float64"`` every fused kernel is **bit-for-bit
identical** to the NumPy path (same per-element operation order, so
``np.array_equal``, not ``allclose``), and with the opt-in
``dtype="float32"`` mode TTM/cost stay within the documented ``5e-5``
relative bound while CAS keeps its float64 internals. The suite runs on
every machine: without Numba the same kernels execute as plain Python
loops, so the equivalence half needs no optional dependency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.model import CostModel
from repro.design.library.a11 import a11
from repro.design.library.generic import demo_chip_a, demo_chip_b
from repro.design.library.raven import raven_multicore
from repro.engine.batch import batch_cas, batch_cost, batch_ttm
from repro.engine.batch_split import batch_split, batch_split_samples
from repro.engine.compiled import (
    BACKEND_ENV,
    BACKENDS,
    Backend,
    _apply_environment,
    backend_info,
    backend_label,
    get_backend,
    numba_available,
    parse_backend_spec,
    set_backend,
    use_backend,
    warm_up,
)
from repro.engine.portfolio import portfolio_cas, portfolio_cost, portfolio_ttm
from repro.errors import InvalidParameterError
from repro.multiprocess.split import ProductionSplit
from repro.ttm.model import TTMModel

#: Documented float32-mode relative error ceiling (TTM and cost).
FLOAT32_RTOL = 5e-5

NODES = ("65nm", "40nm", "28nm")


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test leaves the process on the default NumPy backend."""
    yield
    set_backend("numpy")


@pytest.fixture(scope="module")
def nominal():
    return TTMModel.nominal()


@pytest.fixture(scope="module")
def supply():
    rng = np.random.default_rng(8042)
    return {
        "n_chips": rng.uniform(1e4, 5e7, 64),
        "capacity": rng.uniform(0.1, 1.0, 64),
        "queue_weeks": rng.uniform(0.0, 26.0, 64),
    }


def assert_bit_equal(reference, compiled):
    """Bit-for-bit array equality (NaN-tolerant, broadcast-tolerant)."""
    lhs = np.asarray(reference)
    rhs = np.asarray(compiled)
    shape = np.broadcast_shapes(lhs.shape, rhs.shape)
    assert np.array_equal(
        np.broadcast_to(lhs, shape),
        np.broadcast_to(rhs, shape),
        equal_nan=True,
    )


class TestRegistry:
    def test_default_backend_is_the_numpy_oracle(self):
        assert get_backend() == Backend("numpy", "float64")
        assert backend_label() == "numpy"

    def test_set_backend_switches_and_returns(self):
        backend = set_backend("compiled")
        assert backend == Backend("compiled", "float64")
        assert get_backend() is backend
        assert backend_label() == "compiled"

    def test_float32_label_is_qualified(self):
        set_backend("compiled", "float32")
        assert backend_label() == "compiled:float32"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown engine"):
            set_backend("fortran")
        assert get_backend().name in BACKENDS

    def test_unknown_dtype_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            set_backend("compiled", "float16")

    def test_float32_requires_the_compiled_backend(self):
        with pytest.raises(InvalidParameterError, match="float32 mode"):
            set_backend("numpy", "float32")

    def test_use_backend_restores_on_exit_and_on_error(self):
        with use_backend("compiled", "float32") as backend:
            assert backend.label == "compiled:float32"
        assert get_backend() == Backend("numpy", "float64")
        with pytest.raises(RuntimeError):
            with use_backend("compiled"):
                raise RuntimeError("boom")
        assert get_backend() == Backend("numpy", "float64")

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("numpy", ("numpy", "float64")),
            ("compiled", ("compiled", "float64")),
            ("compiled:float32", ("compiled", "float32")),
            (" compiled : float32 ", ("compiled", "float32")),
        ],
    )
    def test_parse_backend_spec(self, spec, expected):
        assert parse_backend_spec(spec) == expected

    def test_environment_override_applies(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "compiled:float32")
        _apply_environment()
        assert get_backend() == Backend("compiled", "float32")

    def test_invalid_environment_warns_and_keeps_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        with pytest.warns(RuntimeWarning, match="ignoring invalid"):
            _apply_environment()
        assert get_backend() == Backend("numpy", "float64")

    def test_backend_info_reports_resolution(self):
        info = backend_info()
        assert set(info) == {"backend", "dtype", "numba", "jit"}
        assert info["backend"] == "numpy"
        assert info["jit"] is False  # numpy backend never jits
        set_backend("compiled")
        assert backend_info()["jit"] == numba_available()

    def test_warm_up_is_idempotent(self):
        first = warm_up()
        again = warm_up()
        assert first == again


class TestFloat64BitEquality:
    """Every fused kernel, bit-identical to NumPy in float64."""

    @pytest.mark.parametrize(
        "factory",
        [demo_chip_a, demo_chip_b, lambda: a11("7nm")],
        ids=["demo_a", "demo_b", "a11_7nm"],
    )
    def test_batch_ttm(self, nominal, factory, supply):
        design = factory()
        reference = batch_ttm(nominal, design, **supply)
        with use_backend("compiled"):
            compiled = batch_ttm(nominal, design, **supply)
        for name in (
            "tapeout_weeks",
            "fabrication_weeks",
            "packaging_weeks",
            "total_weeks",
            "total_wafers",
        ):
            assert_bit_equal(
                getattr(reference, name), getattr(compiled, name)
            )
        assert reference.design_weeks == compiled.design_weeks
        assert set(reference.per_node_ready_weeks) == set(
            compiled.per_node_ready_weeks
        )
        for node, ready in reference.per_node_ready_weeks.items():
            assert_bit_equal(ready, compiled.per_node_ready_weeks[node])

    def test_batch_cas(self, nominal, supply):
        design = a11("7nm")
        reference = batch_cas(nominal, design, **supply)
        with use_backend("compiled"):
            compiled = batch_cas(nominal, design, **supply)
        assert_bit_equal(reference.cas, compiled.cas)
        assert set(reference.sensitivity) == set(compiled.sensitivity)
        for node, sensed in reference.sensitivity.items():
            assert_bit_equal(sensed, compiled.sensitivity[node])

    def test_batch_cost(self, supply):
        cost_model = CostModel.nominal()
        design = a11("7nm")
        d0 = np.linspace(0.5, 2.0, supply["n_chips"].size)
        reference = batch_cost(
            cost_model, design, supply["n_chips"], d0_scale=d0
        )
        with use_backend("compiled"):
            compiled = batch_cost(
                cost_model, design, supply["n_chips"], d0_scale=d0
            )
        for name in ("nre_usd", "manufacturing_usd", "n_chips"):
            assert_bit_equal(
                getattr(reference, name), getattr(compiled, name)
            )

    def test_batch_split_tensor(self, nominal):
        cost_model = CostModel.nominal()
        pairs = [
            (primary, secondary)
            for i, secondary in enumerate(NODES)
            for primary in NODES[i:]
        ]
        grid = tuple(s / 25.0 for s in range(1, 26))
        reference = batch_split(
            raven_multicore, pairs, nominal, cost_model, 1e9, split_grid=grid
        )
        with use_backend("compiled"):
            compiled = batch_split(
                raven_multicore,
                pairs,
                nominal,
                cost_model,
                1e9,
                split_grid=grid,
            )
        for name in (
            "splits",
            "ttm_weeks",
            "cost_usd",
            "cas",
            "line_weeks_primary",
            "line_weeks_secondary",
        ):
            assert_bit_equal(
                getattr(reference, name), getattr(compiled, name)
            )

    def test_batch_split_samples(self, nominal, supply):
        plan = ProductionSplit(
            design_factory=raven_multicore,
            primary="28nm",
            secondary="40nm",
            split=0.6,
        )
        cost_model = CostModel.nominal()
        reference = batch_split_samples(
            plan, nominal, supply["n_chips"], cost_model=cost_model,
            capacity=supply["capacity"], queue_weeks=supply["queue_weeks"],
        )
        with use_backend("compiled"):
            compiled = batch_split_samples(
                plan, nominal, supply["n_chips"], cost_model=cost_model,
                capacity=supply["capacity"],
                queue_weeks=supply["queue_weeks"],
            )
        assert_bit_equal(reference.ttm_weeks, compiled.ttm_weeks)
        assert_bit_equal(reference.cas, compiled.cas)
        assert_bit_equal(reference.cost_usd, compiled.cost_usd)
        for node, weeks in reference.line_weeks.items():
            assert_bit_equal(weeks, compiled.line_weeks[node])

    @pytest.fixture(scope="class")
    def portfolio(self):
        return [
            a11(process) for process in ("28nm", "14nm", "7nm")
        ] + [demo_chip_a(), demo_chip_b()]

    def test_portfolio_family(self, nominal, portfolio, supply):
        cost_model = CostModel.nominal()
        demand = supply["n_chips"]
        kwargs = dict(
            capacity=supply["capacity"], queue_weeks=supply["queue_weeks"]
        )
        ttm_ref = portfolio_ttm(nominal, portfolio, demand, **kwargs)
        cas_ref = portfolio_cas(nominal, portfolio, demand, **kwargs)
        cost_ref = portfolio_cost(cost_model, portfolio, demand)
        with use_backend("compiled"):
            ttm_new = portfolio_ttm(nominal, portfolio, demand, **kwargs)
            cas_new = portfolio_cas(nominal, portfolio, demand, **kwargs)
            cost_new = portfolio_cost(cost_model, portfolio, demand)
        for name in (
            "design_weeks",
            "tapeout_weeks",
            "fabrication_weeks",
            "packaging_weeks",
            "total_weeks",
            "total_wafers",
        ):
            assert_bit_equal(getattr(ttm_ref, name), getattr(ttm_new, name))
        assert_bit_equal(cas_ref.cas, cas_new.cas)
        assert_bit_equal(cas_ref.sensitivity, cas_new.sensitivity)
        for name in (
            "engineering_usd",
            "fixed_usd",
            "mask_usd",
            "wafer_usd",
            "testing_usd",
            "packaging_usd",
        ):
            assert_bit_equal(
                getattr(cost_ref, name), getattr(cost_new, name)
            )


class TestFloat32Bounds:
    """The opt-in float32 mode honors its documented error budget."""

    def test_ttm_within_documented_bound(self, nominal, supply):
        design = a11("7nm")
        reference = batch_ttm(nominal, design, **supply).total_weeks
        with use_backend("compiled", "float32"):
            halved = batch_ttm(nominal, design, **supply).total_weeks
        np.testing.assert_allclose(halved, reference, rtol=FLOAT32_RTOL)

    def test_cost_within_documented_bound(self, supply):
        cost_model = CostModel.nominal()
        design = a11("7nm")
        reference = batch_cost(cost_model, design, supply["n_chips"])
        with use_backend("compiled", "float32"):
            halved = batch_cost(cost_model, design, supply["n_chips"])
        np.testing.assert_allclose(
            halved.total_usd, reference.total_usd, rtol=FLOAT32_RTOL
        )

    def test_cas_keeps_float64_differencing(self, nominal, supply):
        # The central difference always runs in float64 (a float32
        # difference of near-equal totals is cancellation noise), so
        # CAS lands far inside the TTM bound.
        design = a11("7nm")
        reference = batch_cas(nominal, design, **supply).cas
        with use_backend("compiled", "float32"):
            halved = batch_cas(nominal, design, **supply).cas
        np.testing.assert_allclose(halved, reference, rtol=FLOAT32_RTOL)


class TestPropertyEquivalence:
    """Hypothesis: bit-equality holds across the sampled input space."""

    @settings(deadline=None, max_examples=25)
    @given(
        n_chips=st.floats(min_value=1.0, max_value=1e9),
        capacity=st.floats(min_value=0.01, max_value=1.0),
        queue_weeks=st.floats(min_value=0.0, max_value=104.0),
    )
    def test_batch_ttm_bitwise(self, n_chips, capacity, queue_weeks):
        model = TTMModel.nominal()
        design = demo_chip_a()
        reference = batch_ttm(
            model,
            design,
            (n_chips,),
            capacity=(capacity,),
            queue_weeks=(queue_weeks,),
        ).total_weeks
        try:
            with use_backend("compiled"):
                compiled = batch_ttm(
                    model,
                    design,
                    (n_chips,),
                    capacity=(capacity,),
                    queue_weeks=(queue_weeks,),
                ).total_weeks
        finally:
            set_backend("numpy")
        assert_bit_equal(reference, compiled)


class TestObservability:
    def test_kernel_metrics_carry_the_backend_label(self, nominal):
        from repro.obs.instrument import KERNEL_INVOCATIONS

        design = demo_chip_a()
        before = KERNEL_INVOCATIONS.value(
            backend="compiled", kernel="engine.batch_ttm"
        )
        with use_backend("compiled"):
            batch_ttm(nominal, design, (1e6,))
        after = KERNEL_INVOCATIONS.value(
            backend="compiled", kernel="engine.batch_ttm"
        )
        assert after == before + 1
