"""SharedInvariantStore lifecycle: refcounts, cleanup, zero-copy reads.

The shm layer's contract: publishing returns a handle that pickles to a
few hundred bytes regardless of tensor size, workers attach read-only
zero-copy views that are bit-identical to the published arrays, the
refcounted release unlinks the segment at zero (no leaked ``/dev/shm``
entries), and everything degrades gracefully to the inline pickling
handle when shared memory is disabled.
"""

import glob
import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.design.library.generic import demo_chip_a, demo_chip_b
from repro.engine.invariants import design_invariants
from repro.engine.parallel import parallel_map
from repro.engine.portfolio import compile_portfolio, portfolio_ttm
from repro.engine.shm import (
    DESIGN_ARRAY_FIELDS,
    PORTFOLIO_ARRAY_FIELDS,
    SEGMENT_PREFIX,
    SHARED_STORE,
    SHM_ENV,
    InlineTensorHandle,
    Lease,
    SharedInvariantStore,
    share_design_invariants,
    share_portfolio,
    shm_enabled,
    shm_usage,
)
from repro.ttm.model import TTMModel

pytestmark = pytest.mark.skipif(
    not shm_enabled(), reason="shared memory unavailable on this platform"
)


def leaked_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(leaked_segments())
    yield
    SHARED_STORE.close_all()
    assert set(leaked_segments()) == before


@pytest.fixture
def store():
    owner = SharedInvariantStore()
    yield owner
    owner.close_all()


def sample_arrays():
    rng = np.random.default_rng(7)
    return {
        "rates": rng.uniform(1.0, 9.0, (3, 5)),
        "mask": rng.uniform(size=(3, 5)) > 0.5,
        "scalarish": np.asarray([42.0]),
    }


class TestPublishAndAttach:
    def test_round_trip_is_bit_identical_and_read_only(self, store):
        published = sample_arrays()
        handle = store.publish(published)
        assert handle.is_shared
        views = handle.arrays()
        assert set(views) == set(published)
        for key, original in published.items():
            assert np.array_equal(views[key], original)
            assert views[key].dtype == original.dtype
            assert not views[key].flags.writeable
        store.release(handle)

    def test_handle_pickles_small_regardless_of_tensor_size(self, store):
        big = {"tensor": np.zeros((1024, 1024))}  # 8 MiB
        handle = store.publish(big)
        try:
            assert len(pickle.dumps(handle)) < 2048
        finally:
            store.release(handle)

    def test_publish_is_refcount_one(self, store):
        handle = store.publish(sample_arrays())
        assert store.refcount(handle) == 1
        store.release(handle)
        assert store.refcount(handle) == 0


class TestRefcountLifecycle:
    def test_retain_release_unlinks_at_zero(self, store):
        handle = store.publish(sample_arrays())
        segment_file = f"/dev/shm/{handle.name}"
        assert segment_file in leaked_segments()
        store.retain(handle)
        assert store.refcount(handle) == 2
        store.release(handle)
        assert store.refcount(handle) == 1
        assert segment_file in leaked_segments()  # still referenced
        store.release(handle)
        assert store.refcount(handle) == 0
        assert segment_file not in leaked_segments()

    def test_release_is_idempotent_and_tolerates_foreigners(self, store):
        handle = store.publish(sample_arrays())
        store.release(handle)
        store.release(handle)  # double release: no-op, no raise
        store.release(None)
        store.release(InlineTensorHandle(token="nobody", payload={}))
        foreign = SharedInvariantStore()
        other = foreign.publish(sample_arrays())
        store.release(other)  # not ours: no-op
        assert foreign.refcount(other) == 1
        foreign.close_all()

    def test_close_all_unlinks_everything(self, store):
        handles = [store.publish(sample_arrays()) for _ in range(3)]
        store.close_all()
        for handle in handles:
            assert store.refcount(handle) == 0
            assert f"/dev/shm/{handle.name}" not in leaked_segments()

    def test_shm_usage_tracks_owned_segments(self):
        before = shm_usage()["owned_segments"]
        handle = SHARED_STORE.publish(sample_arrays())
        assert shm_usage()["owned_segments"] == before + 1
        SHARED_STORE.release(handle)
        assert shm_usage()["owned_segments"] == before


class TestInlineFallback:
    def test_kill_switch_forces_inline_handles(self, monkeypatch, store):
        monkeypatch.setenv(SHM_ENV, "off")
        assert not shm_enabled()
        published = sample_arrays()
        handle = store.publish(published)
        assert not handle.is_shared
        for key, original in published.items():
            assert np.array_equal(handle.arrays()[key], original)
        store.release(handle)  # inline: no-op, no raise
        assert leaked_segments() == []


class TestTypedShares:
    def test_portfolio_share_round_trips(self):
        model = TTMModel.nominal()
        invariants = compile_portfolio(
            (demo_chip_a(), demo_chip_b()), model.foundry.technology
        )
        share = share_portfolio(invariants)
        try:
            rebuilt = share.materialize()
            assert rebuilt.designs == invariants.designs
            assert rebuilt.alpha == invariants.alpha
            for name in PORTFOLIO_ARRAY_FIELDS:
                assert np.array_equal(
                    getattr(rebuilt, name), getattr(invariants, name)
                )
            assert share.materialize() is rebuilt  # memoized by token
        finally:
            SHARED_STORE.release(share.handle)

    def test_design_invariants_share_round_trips(self):
        model = TTMModel.nominal()
        source = {
            "a": design_invariants(
                demo_chip_a(), model.foundry.technology, model.engineers
            ),
            "b": design_invariants(
                demo_chip_b(), model.foundry.technology, model.engineers
            ),
        }
        share = share_design_invariants(source)
        try:
            rebuilt = share.materialize()
            assert set(rebuilt) == {"a", "b"}
            for label, invariants in source.items():
                twin = rebuilt[label]
                assert twin.processes == invariants.processes
                assert twin.design_weeks == invariants.design_weeks
                assert twin.alpha == invariants.alpha
                for name in DESIGN_ARRAY_FIELDS:
                    assert np.array_equal(
                        getattr(twin, name), getattr(invariants, name)
                    )
        finally:
            SHARED_STORE.release(share.handle)


class TestLease:
    """The supervisor-side reference: one lease per worker process."""

    def test_lease_retains_and_release_is_idempotent(self, store):
        handle = store.publish(sample_arrays())
        lease = store.lease(handle)
        assert store.refcount(handle) == 2
        assert not lease.released
        lease.release()
        assert lease.released
        assert store.refcount(handle) == 1
        lease.release()  # double release must not over-decrement
        assert store.refcount(handle) == 1
        store.release(handle)

    def test_lease_is_a_context_manager(self, store):
        handle = store.publish(sample_arrays())
        with store.lease(handle) as lease:
            assert lease.handle is handle
            assert store.refcount(handle) == 2
        assert store.refcount(handle) == 1
        store.release(handle)


def _attach_then_block(handle, conn):
    """Child side of the kill -9 audit (module-level: spawn-picklable).

    Attaches the segment — the historical leak window opened here, when
    a worker died between attach and memoization — reports in, then
    blocks until it is killed.
    """
    views = handle.arrays()
    conn.send(("attached", sorted(views)))
    time.sleep(300)


class TestKillNineLeakAudit:
    def test_sigkilled_attacher_cannot_strand_the_segment(self, store):
        # The supervisor protocol under audit: the parent takes one
        # lease per worker *before* the spawn and releases it when the
        # process is reaped — so even SIGKILL (no atexit, no finally)
        # mid-attach leaves the refcount exact and the segment unlinks
        # at zero. The autouse no_leaks fixture is the final auditor.
        published = sample_arrays()
        handle = store.publish(published)
        lease = store.lease(handle)
        assert store.refcount(handle) == 2

        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        child = ctx.Process(
            target=_attach_then_block,
            args=(handle, child_conn),
            daemon=True,
        )
        child.start()
        child_conn.close()
        assert parent_conn.poll(120), "child never attached"
        tag, keys = parent_conn.recv()
        assert tag == "attached"
        assert keys == sorted(published)

        os.kill(child.pid, signal.SIGKILL)  # mid-window, no cleanup runs
        child.join(timeout=30)
        assert not child.is_alive()
        parent_conn.close()

        lease.release()  # the reap path
        assert store.refcount(handle) == 1
        segment_file = f"/dev/shm/{handle.name}"
        assert segment_file in leaked_segments()  # parent still owns it
        store.release(handle)
        assert store.refcount(handle) == 0
        assert segment_file not in leaked_segments()


def _worker_evaluate(task):
    """Worker side of the zero-copy check (module-level: picklable)."""
    model, share, demand = task
    invariants = share.materialize()
    result = portfolio_ttm(
        model, None, np.asarray(demand), invariants=invariants
    )
    return share.handle.is_shared, result.total_weeks


class TestZeroCopyWorkers:
    def test_workers_attach_instead_of_unpickling_tensors(self):
        # The acceptance check: a process-pool evaluation through a
        # PortfolioShare must (a) ship only the tiny handle — the task
        # pickle stays orders of magnitude below the tensor payload —
        # and (b) reproduce the owner's result bit-for-bit from the
        # attached segment.
        model = TTMModel.nominal()
        designs = (demo_chip_a(), demo_chip_b())
        invariants = compile_portfolio(designs, model.foundry.technology)
        demand = np.linspace(1e5, 5e7, 128)
        share = share_portfolio(invariants)
        try:
            tensor_bytes = sum(
                np.asarray(getattr(invariants, name)).nbytes
                for name in PORTFOLIO_ARRAY_FIELDS
            )
            task_bytes = len(pickle.dumps((model, share, demand[:1])))
            assert task_bytes < max(tensor_bytes / 4, 8192)

            expected = portfolio_ttm(
                model, None, demand, invariants=invariants
            ).total_weeks
            chunks = [
                (model, share, demand[:64]),
                (model, share, demand[64:]),
            ]
            results = parallel_map(
                _worker_evaluate, chunks, executor="process", max_workers=2
            )
            for was_shared, _ in results:
                assert was_shared
            stitched = np.concatenate(
                [weeks for _, weeks in results], axis=-1
            )
            assert np.array_equal(stitched, expected)
        finally:
            SHARED_STORE.release(share.handle)
