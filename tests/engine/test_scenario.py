"""The fused scenario cube vs the looped per-scenario oracle.

The contract (DESIGN.md S23): slab ``k`` of every ``scenario_*`` tensor
equals the corresponding ``portfolio_*`` call over
``apply_scenario``-transformed base draws — bit for bit, not just to a
tolerance, on both backends. These tests pin that equivalence over the
stress library and hand-built scenarios (per-node capacity mappings,
additive queue delays, demand/D0 rescales), the identity-scenario ==
raw-portfolio shortcut, scenario-permutation equivariance, the
cost-tensor deduplication, and the validation errors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.library.a11 import a11
from repro.design.library.ariane import ariane_manycore
from repro.design.library.zen2 import zen2, zen2_monolithic
from repro.cost.model import CostModel
from repro.engine.compiled import use_backend
from repro.engine.portfolio import (
    portfolio_cas,
    portfolio_cost,
    portfolio_ttm,
)
from repro.engine.scenario import (
    Scenario,
    apply_scenario,
    compile_scenarios,
    scenario_cas,
    scenario_cost,
    scenario_evaluate,
    scenario_ttm,
)
from repro.errors import InvalidParameterError
from repro.montecarlo.stress import (
    STRESS_LIBRARY,
    graded_stress_scenarios,
    stress_scenarios,
)

N_CHIPS = 2.5e7


@pytest.fixture
def designs():
    """Single- and multi-node designs so padded node slots are live."""
    return (
        a11("7nm"),
        zen2(),  # 7 nm compute + 12 nm I/O chiplets
        zen2_monolithic("7nm"),
        ariane_manycore("28nm", cores=8),
    )


@pytest.fixture
def base_draws():
    rng = np.random.default_rng(20230915)
    n = 64
    return {
        "n_chips": N_CHIPS * (0.6 + 0.8 * rng.random(n)),
        "capacity": 0.55 + 0.4 * rng.random(n),
        "queue_weeks": 4.0 * rng.random(n),
        "d0_scale": 0.8 + 0.4 * rng.random(n),
        "wafer_rate_scale": 0.85 + 0.3 * rng.random(n),
    }


SCENARIOS = [
    Scenario(name="baseline"),
    Scenario(name="fab-outage", capacity_scale={"7nm": 0.4, "12nm": 0.7}),
    Scenario(name="squeeze", capacity_scale=0.6, queue_scale=1.5),
    Scenario(name="logistics", queue_add_weeks=6.0, wafer_rate_scale=0.9),
    Scenario(name="whiplash", demand_scale=1.4, queue_scale=1.2),
    Scenario(name="excursion", d0_scale=1.5),
    Scenario(name="combined", demand_scale=0.7, d0_scale=1.2,
             capacity_scale={"28nm": 0.5}, queue_add_weeks=2.0),
]


def oracle_nodes(cube_or_set):
    """The node-name union the oracle needs for per-node mappings."""
    names = getattr(cube_or_set, "processes", None)
    if names is None:
        return ()
    out = ()
    for processes in names:
        for name in processes:
            if name not in out:
                out = out + (name,)
    return out


def assert_cube_matches_loop(model, designs, scenario_set, draws,
                             with_cost=True):
    cost_model = CostModel.nominal() if with_cost else None
    cube = scenario_evaluate(
        model, cost_model, designs, draws["n_chips"], scenario_set,
        capacity=draws["capacity"], queue_weeks=draws["queue_weeks"],
        d0_scale=draws["d0_scale"],
        wafer_rate_scale=draws["wafer_rate_scale"],
    )
    nodes = oracle_nodes(cube.cas)
    for k in range(scenario_set.n_scenarios):
        kw = apply_scenario(
            scenario_set, k, nodes=nodes,
            conditions=model.foundry.conditions, n_chips=draws["n_chips"],
            capacity=draws["capacity"], queue_weeks=draws["queue_weeks"],
            d0_scale=draws["d0_scale"],
            wafer_rate_scale=draws["wafer_rate_scale"],
        )
        supply = {key: kw[key] for key in
                  ("capacity", "queue_weeks", "wafer_rate_scale")}
        ttm = portfolio_ttm(model, designs, kw["n_chips"],
                            d0_scale=kw["d0_scale"], **supply)
        cas = portfolio_cas(model, designs, kw["n_chips"],
                            d0_scale=kw["d0_scale"], **supply)
        slabs = [
            (cube.ttm.total_weeks[k], ttm.total_weeks),
            (cube.ttm.fabrication_weeks[k], ttm.fabrication_weeks),
            (cube.ttm.tapeout_weeks[k], ttm.tapeout_weeks),
            (cube.cas.cas[k], cas.cas),
        ]
        if with_cost:
            cost = portfolio_cost(CostModel.nominal(), designs,
                                  kw["n_chips"], d0_scale=kw["d0_scale"],
                                  engineers=model.engineers)
            slabs.append((cube.cost.total_usd[k], cost.total_usd))
        for fused, oracle in slabs:
            fused = np.asarray(fused)
            oracle = np.asarray(oracle)
            # Sample-independent slabs (tapeout) drop the trailing
            # sample axis in the cube; restore it for the comparison.
            while fused.ndim < oracle.ndim:
                fused = fused[..., None]
            fused, oracle = np.broadcast_arrays(fused, oracle)
            assert np.array_equal(fused, oracle), scenario_set.names[k]


class TestCubeEquivalence:
    def test_hand_built_scenarios(self, model, designs, base_draws):
        assert_cube_matches_loop(
            model, designs, compile_scenarios(SCENARIOS), base_draws
        )

    def test_stress_library(self, model, designs, base_draws):
        assert_cube_matches_loop(
            model, designs, stress_scenarios("all"), base_draws
        )

    def test_graded_grid(self, model, designs, base_draws):
        scenario_set = graded_stress_scenarios(
            (0.25, 0.75), demand_intensities=(0.5,)
        )
        assert_cube_matches_loop(model, designs, scenario_set, base_draws)

    def test_compiled_backend(self, model, designs, base_draws):
        small = {key: np.asarray(value)[:16]
                 for key, value in base_draws.items()}
        scenario_set = compile_scenarios(SCENARIOS)
        with use_backend("compiled"):
            assert_cube_matches_loop(model, designs, scenario_set, small)

    def test_backends_bit_equal(self, model, designs, base_draws):
        small = {key: np.asarray(value)[:16]
                 for key, value in base_draws.items()}
        scenario_set = compile_scenarios(SCENARIOS)
        cost_model = CostModel.nominal()

        def run():
            return scenario_evaluate(
                model, cost_model, designs, small["n_chips"], scenario_set,
                capacity=small["capacity"],
                queue_weeks=small["queue_weeks"],
                d0_scale=small["d0_scale"],
                wafer_rate_scale=small["wafer_rate_scale"],
            )

        with use_backend("numpy"):
            reference = run()
        with use_backend("compiled"):
            compiled = run()
        for attr in ("ttm.total_weeks", "ttm.fabrication_weeks",
                     "cas.cas", "cost.total_usd"):
            head, tail = attr.split(".")
            lhs = np.asarray(getattr(getattr(reference, head), tail))
            rhs = np.asarray(getattr(getattr(compiled, head), tail))
            assert np.array_equal(lhs, rhs), attr

    def test_without_cost_model(self, model, designs, base_draws):
        cube = scenario_evaluate(
            model, None, designs, base_draws["n_chips"],
            [Scenario(name="baseline")],
            capacity=base_draws["capacity"],
        )
        assert cube.cost is None

    @settings(max_examples=20, deadline=None)
    @given(
        demand=st.floats(0.4, 2.0),
        cap=st.floats(0.3, 1.2),
        queue=st.floats(1.0, 2.5),
        add=st.floats(0.0, 8.0),
        d0=st.floats(0.7, 1.8),
        rate=st.floats(0.6, 1.2),
    )
    def test_property_fused_equals_loop(
        self, model, demand, cap, queue, add, d0, rate
    ):
        designs = (a11("7nm"), zen2())
        rng = np.random.default_rng(7)
        draws = {
            "n_chips": N_CHIPS * (0.8 + 0.4 * rng.random(8)),
            "capacity": 0.6 + 0.3 * rng.random(8),
            "queue_weeks": 3.0 * rng.random(8),
            "d0_scale": 0.9 + 0.2 * rng.random(8),
            "wafer_rate_scale": 0.9 + 0.2 * rng.random(8),
        }
        scenario_set = compile_scenarios([
            Scenario(name="baseline"),
            Scenario(name="drawn", demand_scale=demand,
                     capacity_scale=cap, queue_scale=queue,
                     queue_add_weeks=add, d0_scale=d0,
                     wafer_rate_scale=rate),
        ])
        assert_cube_matches_loop(model, designs, scenario_set, draws)


class TestScenarioSemantics:
    def test_identity_scenario_is_raw_portfolio(self, model, designs,
                                                base_draws):
        ttm = scenario_ttm(
            model, designs, base_draws["n_chips"],
            [Scenario(name="baseline")],
            capacity=base_draws["capacity"],
            queue_weeks=base_draws["queue_weeks"],
            wafer_rate_scale=base_draws["wafer_rate_scale"],
        )
        raw = portfolio_ttm(
            model, designs, base_draws["n_chips"],
            capacity=base_draws["capacity"],
            queue_weeks=base_draws["queue_weeks"],
            wafer_rate_scale=base_draws["wafer_rate_scale"],
        )
        assert np.array_equal(
            np.asarray(ttm.total_weeks[0]), np.asarray(raw.total_weeks)
        )

    def test_permutation_equivariance(self, model, designs, base_draws):
        scenario_set = compile_scenarios(SCENARIOS)
        permutation = [3, 0, 6, 2, 5, 1, 4]
        permuted = scenario_set.subset(permutation)
        kwargs = dict(
            capacity=base_draws["capacity"],
            queue_weeks=base_draws["queue_weeks"],
            d0_scale=base_draws["d0_scale"],
            wafer_rate_scale=base_draws["wafer_rate_scale"],
        )
        cost_model = CostModel.nominal()
        cube = scenario_evaluate(model, cost_model, designs,
                                 base_draws["n_chips"], scenario_set,
                                 **kwargs)
        shuffled = scenario_evaluate(model, cost_model, designs,
                                     base_draws["n_chips"], permuted,
                                     **kwargs)
        for k, original in enumerate(permutation):
            assert shuffled.ttm.scenarios[k] == scenario_set.names[original]
            assert np.array_equal(shuffled.ttm.total_weeks[k],
                                  cube.ttm.total_weeks[original])
            assert np.array_equal(shuffled.cas.cas[k],
                                  cube.cas.cas[original])
            assert np.array_equal(shuffled.cost.total_usd[k],
                                  cube.cost.total_usd[original])

    def test_cost_dedup_shares_tensors(self, model, designs, base_draws):
        # Same (demand, D0) pair -> literally the same backing rows.
        result = scenario_cost(
            CostModel.nominal(), designs, base_draws["n_chips"],
            [Scenario(name="a", capacity_scale=0.5),
             Scenario(name="b", queue_add_weeks=4.0)],
            d0_scale=base_draws["d0_scale"],
            engineers=model.engineers,
        )
        assert np.array_equal(result.total_usd[0], result.total_usd[1])

    def test_per_node_capacity_only_hits_named_nodes(self, model,
                                                     base_draws):
        designs = (a11("7nm"), ariane_manycore("28nm", cores=8))
        scenario_set = compile_scenarios([
            Scenario(name="baseline"),
            Scenario(name="outage-28nm", capacity_scale={"28nm": 0.4}),
        ])
        ttm = scenario_ttm(
            model, designs, N_CHIPS, scenario_set,
            capacity=base_draws["capacity"],
        )
        total = np.asarray(ttm.total_weeks)
        # The 28 nm design slows down; the 7 nm-only design is untouched.
        assert np.array_equal(total[1, 0], total[0, 0])
        assert np.all(total[1, 1] >= total[0, 1])
        assert np.any(total[1, 1] > total[0, 1])


class TestScenarioCAS:
    def test_cas_matches_oracle_per_scenario(self, model, designs,
                                             base_draws):
        scenario_set = stress_scenarios(["fab-outage", "logistics"])
        cas = scenario_cas(
            model, designs, base_draws["n_chips"], scenario_set,
            capacity=base_draws["capacity"],
            queue_weeks=base_draws["queue_weeks"],
            wafer_rate_scale=base_draws["wafer_rate_scale"],
        )
        nodes = oracle_nodes(cas)
        for k in range(scenario_set.n_scenarios):
            kw = apply_scenario(
                scenario_set, k, nodes=nodes,
                conditions=model.foundry.conditions,
                n_chips=base_draws["n_chips"],
                capacity=base_draws["capacity"],
                queue_weeks=base_draws["queue_weeks"],
                wafer_rate_scale=base_draws["wafer_rate_scale"],
            )
            oracle = portfolio_cas(
                model, designs, kw["n_chips"], capacity=kw["capacity"],
                queue_weeks=kw["queue_weeks"],
                wafer_rate_scale=kw["wafer_rate_scale"],
            )
            assert np.array_equal(np.asarray(cas.cas[k]),
                                  np.asarray(oracle.cas))


class TestValidation:
    def test_empty_scenario_set(self):
        with pytest.raises(InvalidParameterError):
            compile_scenarios([])

    def test_duplicate_names(self):
        with pytest.raises(InvalidParameterError):
            compile_scenarios(
                [Scenario(name="x"), Scenario(name="x")]
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"demand_scale": 0.0},
            {"demand_scale": -1.0},
            {"queue_scale": 0.0},
            {"queue_add_weeks": -0.5},
            {"d0_scale": 0.0},
            {"wafer_rate_scale": -0.2},
            {"capacity_scale": 0.0},
            {"capacity_scale": {"7nm": -0.5}},
        ],
    )
    def test_invalid_scenario_fields(self, kwargs):
        with pytest.raises(InvalidParameterError):
            Scenario(name="bad", **kwargs)

    def test_empty_name(self):
        with pytest.raises(InvalidParameterError):
            Scenario(name="")

    def test_per_node_capacity_base_rejected(self, model, designs):
        with pytest.raises(InvalidParameterError):
            scenario_ttm(
                model, designs, N_CHIPS,
                [Scenario(name="baseline")],
                capacity={"7nm": 0.5},
            )

    def test_bad_relative_step(self, model, designs):
        with pytest.raises(InvalidParameterError):
            scenario_cas(
                model, designs, N_CHIPS,
                [Scenario(name="baseline")],
                relative_step=1.5,
            )
