"""Equivalence and contract tests for the vectorized split engine.

The batch engine's only job is to reproduce the scalar Sec. 7 oracle
(:func:`repro.multiprocess.split.evaluate_split`) faster: every (pair,
split) tensor cell must match the scalar evaluation to 1e-9 relative
error across the Raven node set, including the degenerate single-process
cells (split >= 1.0 and the diagonal).
"""

import numpy as np
import pytest

from repro.design.library.raven import raven_multicore
from repro.engine.batch_split import (
    DEFAULT_REFINE_POINTS,
    batch_split,
    batch_split_samples,
    refine_split_grid,
)
from repro.errors import InvalidParameterError
from repro.multiprocess.split import (
    evaluate_split,
    make_plan,
    single_process_plan,
)

RELATIVE_TOLERANCE = 1e-9

#: A representative slice of the production roadmap, old and new nodes.
NODES = ("250nm", "130nm", "65nm", "40nm", "28nm", "14nm", "7nm")

#: Pairs covering both orderings, the diagonal, and far-apart nodes.
PAIRS = (
    ("28nm", "40nm"),
    ("40nm", "28nm"),
    ("7nm", "250nm"),
    ("14nm", "65nm"),
    ("65nm", "130nm"),
    ("28nm", "28nm"),
)

#: Grid hitting interior splits, near-degenerate ones, and exactly 1.0.
GRID = (0.02, 0.25, 0.5, 0.6, 0.75, 0.99, 1.0)

N_CHIPS = 1e7


def _scalar_evaluation(primary, secondary, split, model, cost_model):
    if primary == secondary or split >= 1.0:
        plan = single_process_plan(raven_multicore, primary)
    else:
        plan = make_plan(raven_multicore, primary, secondary, split)
    return evaluate_split(plan, model, cost_model, N_CHIPS)


def _relative(actual, expected):
    return abs(actual - expected) / max(abs(expected), 1e-30)


@pytest.fixture(scope="module")
def grid_result(model, cost_model):
    return batch_split(
        raven_multicore, PAIRS, model, cost_model, N_CHIPS, split_grid=GRID
    )


class TestScalarEquivalence:
    @pytest.mark.parametrize("pair_index,pair", list(enumerate(PAIRS)))
    def test_every_cell_matches_the_oracle(
        self, grid_result, model, cost_model, pair_index, pair
    ):
        primary, secondary = pair
        for split_index, split in enumerate(GRID):
            scalar = _scalar_evaluation(
                primary, secondary, split, model, cost_model
            )
            batched = grid_result.evaluation(pair_index, split_index)
            assert batched.primary == scalar.primary
            assert batched.secondary == scalar.secondary
            assert batched.split == scalar.split
            for attr in ("ttm_weeks", "cost_usd", "cas"):
                assert _relative(
                    getattr(batched, attr), getattr(scalar, attr)
                ) <= RELATIVE_TOLERANCE, (pair, split, attr)
            assert set(batched.line_weeks) == set(scalar.line_weeks)
            for node, weeks in scalar.line_weeks.items():
                assert _relative(
                    batched.line_weeks[node], weeks
                ) <= RELATIVE_TOLERANCE

    def test_full_node_set_best_splits_match_oracle(self, model, cost_model):
        # The whole Raven production-pair sweep: batched per-pair optima
        # must coincide with the scalar argmax (same cell, not merely a
        # close value) under the exact (cas, -ttm) tie-breaking.
        grid = tuple(s / 10.0 for s in range(1, 11))
        pairs = [
            (NODES[j], NODES[i])
            for i in range(len(NODES))
            for j in range(i, len(NODES))
        ]
        result = batch_split(
            raven_multicore, pairs, model, cost_model, N_CHIPS, split_grid=grid
        )
        for index, (primary, secondary) in enumerate(pairs):
            evaluations = [
                _scalar_evaluation(primary, secondary, s, model, cost_model)
                for s in (grid if primary != secondary else (1.0,))
            ]
            scalar_best = max(
                evaluations, key=lambda ev: (ev.cas, -ev.ttm_weeks)
            )
            batched_best = result.best_evaluation(index)
            assert batched_best.split == scalar_best.split
            assert _relative(
                batched_best.cas, scalar_best.cas
            ) <= RELATIVE_TOLERANCE

    def test_with_cas_false_skips_cas(self, model, cost_model):
        result = batch_split(
            raven_multicore,
            [("28nm", "40nm")],
            model,
            cost_model,
            N_CHIPS,
            split_grid=(0.5,),
            with_cas=False,
        )
        assert result.cas[0, 0] == 0.0
        scalar = evaluate_split(
            make_plan(raven_multicore, "28nm", "40nm", 0.5),
            model,
            cost_model,
            N_CHIPS,
            with_cas=False,
        )
        assert _relative(
            result.ttm_weeks[0, 0], scalar.ttm_weeks
        ) <= RELATIVE_TOLERANCE


class TestGridResultStructure:
    def test_shapes_and_masks(self, grid_result):
        shape = (len(PAIRS), len(GRID))
        for array in (
            grid_result.ttm_weeks,
            grid_result.cost_usd,
            grid_result.cas,
            grid_result.splits,
        ):
            assert array.shape == shape
        # Diagonal pair: every cell single; off-diagonal: only split=1.0.
        diagonal = grid_result.pair_index("28nm", "28nm")
        assert bool(grid_result.single_mask[diagonal].all())
        first = grid_result.pair_index("28nm", "40nm")
        assert list(grid_result.single_mask[first]) == [
            s >= 1.0 for s in GRID
        ]
        assert np.all(np.isnan(grid_result.line_weeks_secondary[diagonal]))

    def test_pair_index_rejects_unknown_pair(self, grid_result):
        with pytest.raises(InvalidParameterError, match="not in this grid"):
            grid_result.pair_index("5nm", "3nm")

    def test_argmax_helpers_agree_with_per_pair_bests(self, grid_result):
        bests = grid_result.best_evaluations()
        _, most_agile = grid_result.argmax_cas()
        assert most_agile.cas == max(ev.cas for ev in bests)
        _, fastest = grid_result.argmin_ttm()
        assert fastest.ttm_weeks == min(ev.ttm_weeks for ev in bests)
        _, cheapest = grid_result.argmin_cost()
        assert cheapest.cost_usd == min(ev.cost_usd for ev in bests)

    def test_ttm_is_max_of_line_weeks(self, grid_result):
        two = ~grid_result.single_mask
        assert np.allclose(
            grid_result.ttm_weeks[two],
            np.maximum(
                grid_result.line_weeks_primary[two],
                grid_result.line_weeks_secondary[two],
            ),
        )


class TestValidation:
    def test_rejects_empty_pairs(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="at least one"):
            batch_split(raven_multicore, [], model, cost_model, N_CHIPS)

    def test_rejects_empty_grid(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="non-empty"):
            batch_split(
                raven_multicore,
                [("28nm", "40nm")],
                model,
                cost_model,
                N_CHIPS,
                split_grid=(),
            )

    def test_rejects_out_of_range_split(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="split must be in"):
            batch_split(
                raven_multicore,
                [("28nm", "40nm")],
                model,
                cost_model,
                N_CHIPS,
                split_grid=(0.0, 0.5),
            )

    def test_rejects_nonpositive_chips(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="positive"):
            batch_split(
                raven_multicore, [("28nm", "40nm")], model, cost_model, 0.0
            )

    def test_rejects_mismatched_per_pair_grid(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="rows"):
            batch_split(
                raven_multicore,
                [("28nm", "40nm")],
                model,
                cost_model,
                N_CHIPS,
                split_grid=np.full((3, 4), 0.5),
            )

    def test_rejects_higher_dimensional_grid(self, model, cost_model):
        with pytest.raises(InvalidParameterError, match="1-D"):
            batch_split(
                raven_multicore,
                [("28nm", "40nm")],
                model,
                cost_model,
                N_CHIPS,
                split_grid=np.full((1, 2, 3), 0.5),
            )

    @pytest.mark.parametrize("step", (0.0, 1.0, -0.1))
    def test_rejects_bad_relative_step(self, model, cost_model, step):
        with pytest.raises(InvalidParameterError, match="relative step"):
            batch_split(
                raven_multicore,
                [("28nm", "40nm")],
                model,
                cost_model,
                N_CHIPS,
                split_grid=(0.5,),
                relative_step=step,
            )

    def test_sample_kernel_rejects_bad_relative_step(self, model):
        plan = make_plan(raven_multicore, "28nm", "40nm", 0.5)
        with pytest.raises(InvalidParameterError, match="relative step"):
            batch_split_samples(
                plan, model, np.array([N_CHIPS]), relative_step=1.5
            )


class TestRefinement:
    def test_fine_grid_brackets_each_coarse_optimum(
        self, grid_result, model, cost_model
    ):
        fine = refine_split_grid(grid_result)
        assert fine.shape == (len(PAIRS), DEFAULT_REFINE_POINTS)
        for i in range(len(PAIRS)):
            if bool(grid_result.single_mask[i].all()):
                assert np.all(fine[i] == 1.0)
                continue
            best = grid_result.splits[i][grid_result.best_index(i)]
            assert fine[i].min() <= best <= fine[i].max()
            assert np.all((fine[i] > 0.0) & (fine[i] <= 1.0))

    def test_refined_optimum_is_no_worse(self, model, cost_model):
        pairs = [("28nm", "40nm")]
        coarse = batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            N_CHIPS,
            split_grid=tuple(s / 10.0 for s in range(1, 11)),
        )
        fine = batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            N_CHIPS,
            split_grid=refine_split_grid(coarse),
        )
        assert fine.best_evaluation(0).cas >= coarse.best_evaluation(0).cas

    def test_rejects_degenerate_point_count(self, grid_result):
        with pytest.raises(InvalidParameterError, match="at least 2"):
            refine_split_grid(grid_result, points=1)


class TestSampledSplits:
    def test_constant_samples_match_scalar(self, model, cost_model):
        plan = make_plan(raven_multicore, "28nm", "40nm", 0.6)
        outcome = batch_split_samples(
            plan,
            model,
            np.full(4, N_CHIPS),
            cost_model=cost_model,
        )
        scalar = evaluate_split(plan, model, cost_model, N_CHIPS)
        assert np.all(
            np.abs(outcome.ttm_weeks - scalar.ttm_weeks)
            <= RELATIVE_TOLERANCE * scalar.ttm_weeks
        )
        assert np.all(
            np.abs(outcome.cas - scalar.cas)
            <= RELATIVE_TOLERANCE * scalar.cas
        )
        assert np.all(
            np.abs(outcome.cost_usd - scalar.cost_usd)
            <= RELATIVE_TOLERANCE * scalar.cost_usd
        )
        for node, weeks in scalar.line_weeks.items():
            assert np.all(
                np.abs(outcome.line_weeks[node] - weeks)
                <= RELATIVE_TOLERANCE * weeks
            )

    def test_sampled_factors_move_the_outcome(self, model, cost_model):
        plan = make_plan(raven_multicore, "28nm", "40nm", 0.6)
        base = batch_split_samples(plan, model, np.array([N_CHIPS]))
        squeezed = batch_split_samples(
            plan,
            model,
            np.array([N_CHIPS]),
            capacity={"28nm": np.array([0.25])},
            queue_weeks=np.array([4.0]),
        )
        assert squeezed.ttm_weeks[0] > base.ttm_weeks[0]

    def test_no_cost_model_leaves_cost_none(self, model):
        plan = make_plan(raven_multicore, "28nm", "40nm", 0.5)
        outcome = batch_split_samples(plan, model, np.array([N_CHIPS]))
        assert outcome.cost_usd is None
        assert outcome.usd_per_chip is None

    def test_zero_capacity_raises(self, model):
        plan = make_plan(raven_multicore, "28nm", "40nm", 0.5)
        with pytest.raises(InvalidParameterError, match="capacity"):
            batch_split_samples(
                plan,
                model,
                np.array([N_CHIPS]),
                capacity={"28nm": np.array([0.0])},
            )


class TestExactRefinement:
    """Satellite: the breakpoint solver vs the grid it replaces.

    Within a coarse bracket each line's completion weeks are affine in
    the primary fraction, so the TTM/CAS optimum sits on a breakpoint of
    a piecewise-affine function — ``refine_split_exact`` enumerates
    those breakpoints instead of carpeting the bracket with a grid. Its
    candidates must therefore never score worse than any finite grid.
    """

    @pytest.fixture(scope="class")
    def exact(self, grid_result, model, cost_model):
        from repro.engine.batch_split import refine_split_exact

        return refine_split_exact(
            grid_result, raven_multicore, model, cost_model
        )

    def test_candidates_stay_inside_the_coarse_bracket(
        self, exact, grid_result
    ):
        assert exact.ndim == 2 and exact.shape[0] == len(PAIRS)
        for i in range(len(PAIRS)):
            assert np.all((exact[i] > 0.0) & (exact[i] <= 1.0))
            if bool(grid_result.single_mask[i].all()):
                assert np.all(exact[i] == 1.0)
                continue
            best = grid_result.splits[i][grid_result.best_index(i)]
            assert exact[i].min() <= best <= exact[i].max()

    def test_exact_is_no_worse_than_the_grid_refine(
        self, exact, grid_result, model, cost_model
    ):
        fine_grid = batch_split(
            raven_multicore,
            PAIRS,
            model,
            cost_model,
            N_CHIPS,
            split_grid=refine_split_grid(grid_result),
        )
        fine_exact = batch_split(
            raven_multicore,
            PAIRS,
            model,
            cost_model,
            N_CHIPS,
            split_grid=exact,
        )
        for i in range(len(PAIRS)):
            assert (
                fine_exact.best_evaluation(i).cas
                >= fine_grid.best_evaluation(i).cas - 1e-12
            )

    def test_exact_matches_a_dense_grid_oracle(self, model, cost_model):
        # A 2001-point dense carpet of one pair's bracket cannot beat
        # the breakpoint candidates: the optimum is exact, not sampled.
        from repro.engine.batch_split import refine_split_exact

        pairs = [("28nm", "40nm")]
        coarse = batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            N_CHIPS,
            split_grid=tuple(s / 20.0 for s in range(1, 21)),
        )
        exact = refine_split_exact(
            coarse, raven_multicore, model, cost_model
        )
        lo, hi = exact[0].min(), exact[0].max()
        dense = batch_split(
            raven_multicore,
            pairs,
            model,
            cost_model,
            N_CHIPS,
            split_grid=np.linspace(lo, hi, 2001).reshape(1, -1),
        )
        refined = batch_split(
            raven_multicore, pairs, model, cost_model, N_CHIPS,
            split_grid=exact,
        )
        assert (
            refined.best_evaluation(0).cas
            >= dense.best_evaluation(0).cas - 1e-12
        )
