"""Batched kernels must reproduce the scalar model to round-off.

The engine's contract is numerical: every batched TTM/CAS value matches
the scalar ``TTMModel`` / ``chip_agility_score`` evaluation of the same
point to <= 1e-9 relative error, across the design library, schedules,
quantities, capacities, and queue-quoted market conditions.
"""

import numpy as np
import pytest

from repro.agility.cas import chip_agility_score
from repro.design.library.a11 import a11
from repro.design.library.generic import demo_chip_a, demo_chip_b
from repro.design.library.zen2 import fig13_variants
from repro.engine.batch import (
    batch_cas,
    batch_ttm,
    cas_over_capacity,
    ttm_over_capacity,
)
from repro.errors import InvalidParameterError
from repro.market.conditions import MarketConditions
from repro.ttm.model import TTMModel

RTOL = 1e-9

FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0)
QUANTITIES = (1e3, 1e5, 1e7)


def library_designs():
    designs = [
        demo_chip_a(),
        demo_chip_b(),
        a11("28nm"),
        a11("7nm"),
        a11("5nm"),
    ]
    designs.extend(fig13_variants())
    return designs


def design_ids():
    return [design.name for design in library_designs()]


@pytest.fixture(scope="module")
def nominal():
    return TTMModel.nominal()


class TestTTMEquivalence:
    @pytest.mark.parametrize(
        "design", library_designs(), ids=design_ids()
    )
    def test_matches_scalar_over_capacity(self, nominal, design):
        n_chips = 1e6
        batched = ttm_over_capacity(nominal, design, n_chips, FRACTIONS)
        scalar = [
            nominal.at_capacity(f).total_weeks(design, n_chips)
            for f in FRACTIONS
        ]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    @pytest.mark.parametrize(
        "design", library_designs(), ids=design_ids()
    )
    def test_matches_scalar_over_quantities(self, nominal, design):
        batched = batch_ttm(nominal, design, QUANTITIES).total_weeks
        scalar = [nominal.total_weeks(design, n) for n in QUANTITIES]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    def test_phase_breakdown_matches_scalar(self, nominal):
        design = a11("7nm")
        result = batch_ttm(nominal, design, (1e6,))
        scalar = nominal.time_to_market(design, 1e6)
        assert result.design_weeks == pytest.approx(
            scalar.design_weeks, rel=RTOL
        )
        assert result.tapeout_weeks[0] == pytest.approx(
            scalar.tapeout_weeks, rel=RTOL
        )
        assert result.fabrication_weeks[0] == pytest.approx(
            scalar.fabrication_weeks, rel=RTOL
        )
        assert result.packaging_weeks[0] == pytest.approx(
            scalar.packaging_weeks, rel=RTOL
        )
        assert result.total_weeks[0] == pytest.approx(
            scalar.total_weeks, rel=RTOL
        )

    def test_sequential_schedule(self, nominal):
        model = TTMModel.nominal(schedule="sequential")
        for design in (a11("7nm"), fig13_variants()[0]):
            batched = ttm_over_capacity(model, design, 1e6, FRACTIONS)
            scalar = [
                model.at_capacity(f).total_weeks(design, 1e6)
                for f in FRACTIONS
            ]
            np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    def test_current_conditions_with_queue_and_capacity(self, nominal):
        design = a11("7nm")
        conditions = (
            MarketConditions.nominal()
            .with_queue("7nm", 2.0)
            .with_capacity("7nm", 0.37)
        )
        model = nominal.with_foundry(
            nominal.foundry.with_conditions(conditions)
        )
        batched = batch_ttm(model, design, QUANTITIES).total_weeks
        scalar = [model.total_weeks(design, n) for n in QUANTITIES]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    def test_quantity_capacity_broadcast(self, nominal):
        design = a11("7nm")
        quantities = np.array([[1e4], [1e6]])
        capacity = np.array(FRACTIONS)
        result = batch_ttm(nominal, design, quantities, capacity)
        assert result.total_weeks.shape == (2, len(FRACTIONS))
        for i, n in enumerate((1e4, 1e6)):
            for j, f in enumerate(FRACTIONS):
                assert result.total_weeks[i, j] == pytest.approx(
                    nominal.at_capacity(f).total_weeks(design, n), rel=RTOL
                )

    def test_rejects_nonpositive_inputs(self, nominal):
        design = a11("7nm")
        with pytest.raises(InvalidParameterError):
            batch_ttm(nominal, design, (1e6, -1.0))
        with pytest.raises(InvalidParameterError):
            batch_ttm(nominal, design, 1e6, capacity=(0.5, 0.0))


class TestCASEquivalence:
    @pytest.mark.parametrize(
        "design", library_designs(), ids=design_ids()
    )
    def test_matches_scalar_over_capacity(self, nominal, design):
        n_chips = 1e6
        batched = cas_over_capacity(nominal, design, n_chips, FRACTIONS)
        scalar = [
            chip_agility_score(
                nominal.at_capacity(f), design, n_chips
            ).normalized
            for f in FRACTIONS
        ]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    def test_sensitivity_breakdown_matches_scalar(self, nominal):
        design = fig13_variants()[0]
        batched = batch_cas(nominal, design, (1e6,))
        scalar = chip_agility_score(nominal, design, 1e6)
        assert set(batched.sensitivity) == set(scalar.sensitivity)
        for process, values in batched.sensitivity.items():
            assert values[0] == pytest.approx(
                scalar.sensitivity[process], rel=RTOL
            )
        assert batched.cas[0] == pytest.approx(scalar.cas, rel=RTOL)

    def test_queue_quoted_model(self, nominal):
        design = a11("7nm")
        conditions = MarketConditions.nominal().with_queue("7nm", 1.0)
        model = nominal.with_foundry(
            nominal.foundry.with_conditions(conditions)
        )
        batched = cas_over_capacity(model, design, 1e7, FRACTIONS)
        scalar = [
            chip_agility_score(
                model.at_capacity(f), design, 1e7
            ).normalized
            for f in FRACTIONS
        ]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)
