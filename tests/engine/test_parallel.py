"""Tests for the parallel_map executor."""

import pytest

from repro.engine.parallel import EXECUTORS, parallel_map
from repro.errors import InvalidParameterError


def square(value: float) -> float:
    return value * value


class TestParallelMap:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_preserves_order(self, executor):
        items = list(range(20))
        assert parallel_map(
            square, items, executor=executor, max_workers=2
        ) == [square(i) for i in items]

    def test_empty_and_singleton(self):
        assert parallel_map(square, [], executor="thread") == []
        assert parallel_map(square, [3], executor="process") == [9]

    def test_unpicklable_payload_falls_back_to_serial(self):
        # A closure can't be pickled; the process executor must degrade
        # to serial instead of raising.
        offset = 10
        results = parallel_map(
            lambda v: v + offset, [1, 2, 3], executor="process"
        )
        assert results == [11, 12, 13]

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_exceptions_propagate(self, executor):
        def explode(value):
            raise ValueError(f"boom {value}")

        with pytest.raises(ValueError, match="boom"):
            parallel_map(explode, [1, 2], executor=executor)

    def test_rejects_unknown_executor(self):
        with pytest.raises(InvalidParameterError, match="executor"):
            parallel_map(square, [1], executor="fork-bomb")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(InvalidParameterError, match="max_workers"):
            parallel_map(square, [1], executor="thread", max_workers=0)
