"""Tests for the parallel_map executor."""

import pytest

from repro.engine.parallel import EXECUTORS, parallel_map
from repro.errors import InvalidParameterError


def square(value: float) -> float:
    return value * value


class TestParallelMap:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_preserves_order(self, executor):
        items = list(range(20))
        assert parallel_map(
            square, items, executor=executor, max_workers=2
        ) == [square(i) for i in items]

    def test_empty_and_singleton(self):
        assert parallel_map(square, [], executor="thread") == []
        assert parallel_map(square, [3], executor="process") == [9]

    def test_unpicklable_payload_falls_back_to_serial(self):
        # A closure can't be pickled; the process executor must degrade
        # to serial instead of raising.
        offset = 10
        with pytest.warns(RuntimeWarning):
            results = parallel_map(
                lambda v: v + offset, [1, 2, 3], executor="process"
            )
        assert results == [11, 12, 13]

    def test_unpicklable_fallback_warns_with_reason(self):
        # Satellite: the degraded run must be observable, naming why the
        # process executor was abandoned.
        with pytest.warns(
            RuntimeWarning,
            match=r"falling back from the process executor.*not picklable",
        ):
            parallel_map(lambda v: v, [1, 2], executor="process")

    def test_fallback_is_observable_in_metrics_and_warning(self):
        # Satellite: a degraded run must name the executor it chose AND
        # bump the executor_fallback_total counter, so losing
        # parallelism is visible in metrics dumps as well as logs.
        from repro.obs.instrument import EXECUTOR_FALLBACKS

        before = EXECUTOR_FALLBACKS.value(
            requested="process", chosen="serial"
        )
        with pytest.warns(
            RuntimeWarning, match=r"chosen executor: 'serial'"
        ):
            parallel_map(lambda v: v, [1, 2], executor="process")
        after = EXECUTOR_FALLBACKS.value(
            requested="process", chosen="serial"
        )
        assert after == before + 1

    def test_broken_pool_fallback_warns_with_reason(self, monkeypatch):
        # Simulate a platform whose process pool cannot start (the
        # ImportError/OSError path): the sweep still completes serially
        # and the warning names the pool failure.
        import concurrent.futures as futures

        def refuse(*args, **kwargs):
            raise OSError("no process support on this platform")

        monkeypatch.setattr(futures, "ProcessPoolExecutor", refuse)
        with pytest.warns(
            RuntimeWarning,
            match=r"worker pool failed \(OSError: no process support",
        ):
            results = parallel_map(square, [1, 2, 3], executor="process")
        assert results == [1, 4, 9]

    def test_serial_and_thread_do_not_warn(self, recwarn):
        parallel_map(square, [1, 2, 3], executor="serial")
        parallel_map(square, [1, 2, 3], executor="thread")
        assert not [
            w for w in recwarn if issubclass(w.category, RuntimeWarning)
        ]

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_exceptions_propagate(self, executor):
        def explode(value):
            raise ValueError(f"boom {value}")

        with pytest.raises(ValueError, match="boom"):
            parallel_map(explode, [1, 2], executor=executor)

    def test_rejects_unknown_executor(self):
        with pytest.raises(InvalidParameterError, match="executor"):
            parallel_map(square, [1], executor="fork-bomb")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(InvalidParameterError, match="max_workers"):
            parallel_map(square, [1], executor="thread", max_workers=0)


def draw_total(item: float, rng) -> float:
    """Module-level seeded evaluation (picklable for the process pool)."""
    return float(item + rng.normal(size=4).sum())


class TestSeededParallelMap:
    """The seed= contract: executor choice must never change results."""

    def test_serial_thread_process_bitwise_identical(self):
        items = list(range(11))
        results = {
            executor: parallel_map(
                draw_total, items, executor=executor, max_workers=3, seed=77
            )
            for executor in EXECUTORS
        }
        assert results["serial"] == results["thread"]
        assert results["serial"] == results["process"]

    def test_same_seed_reproduces_and_seeds_differ(self):
        first = parallel_map(draw_total, [0.0, 1.0], seed=5)
        again = parallel_map(draw_total, [0.0, 1.0], seed=5)
        other = parallel_map(draw_total, [0.0, 1.0], seed=6)
        assert first == again
        assert first != other

    def test_items_get_independent_streams(self):
        # Identical items must not see identical draws.
        values = parallel_map(draw_total, [0.0, 0.0, 0.0], seed=9)
        assert len(set(values)) == 3

    def test_seeded_singleton_matches_multi_item_prefix(self):
        # Chunk streams depend only on (seed, index), so evaluating a
        # prefix of the items yields a prefix of the results.
        full = parallel_map(draw_total, [4.0, 5.0], seed=21)
        prefix = parallel_map(draw_total, [4.0], seed=21)
        assert prefix == full[:1]

    def test_unseeded_calls_keep_single_argument_signature(self):
        assert parallel_map(square, [2, 3]) == [4, 9]


class Moody:
    """Instances pickle or refuse to, by content (not by type)."""

    def __init__(self, ok: bool) -> None:
        self.ok = ok

    def __reduce__(self):
        import pickle

        if self.ok:
            return (Moody, (True,))
        raise pickle.PicklingError("moody instance refuses to pickle")


def moody_flag(item: "Moody") -> bool:
    return item.ok


class TestProbeCache:
    """Satellite: the picklability probe memoizes its verdict.

    The process path used to re-serialize the full payload once per
    dispatch just to *test* picklability; the verdict depends only on
    the mapped function and the item types, so repeated sweeps must
    probe exactly once.
    """

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.engine.parallel import clear_probe_cache

        clear_probe_cache()
        yield
        clear_probe_cache()

    @pytest.fixture
    def dumps_counter(self, monkeypatch):
        import pickle

        from repro.engine import parallel

        counted = []
        real_dumps = pickle.dumps

        def counting(obj, *args, **kwargs):
            counted.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(parallel.pickle, "dumps", counting)
        return counted

    def test_repeat_probe_is_free(self, dumps_counter):
        from repro.engine.parallel import _picklable

        payload = [1.5, 2.5, 3.5]
        assert _picklable(square, payload)
        first = len(dumps_counter)
        assert first > 0  # the initial probe pays the serialization
        assert _picklable(square, payload)
        assert _picklable(square, [9.0, 10.0])  # same types: still cached
        assert len(dumps_counter) == first

    def test_new_payload_types_probe_again(self, dumps_counter):
        from repro.engine.parallel import _picklable

        assert _picklable(square, [1, 2])
        first = len(dumps_counter)
        assert _picklable(square, [(1, "a"), (2, "b")])  # tuple payload
        assert len(dumps_counter) > first

    def test_negative_verdicts_are_cached_too(self, dumps_counter):
        from repro.engine.parallel import _picklable

        offset = 3
        closure = lambda v: v + offset  # noqa: E731 - deliberately unpicklable
        assert not _picklable(closure, [1, 2])
        first = len(dumps_counter)
        assert not _picklable(closure, [1, 2])
        assert len(dumps_counter) == first

    def test_stale_positive_verdict_still_degrades_serially(self):
        # Moody's picklability varies by *content*, which the type-keyed
        # cache cannot see: prime a positive verdict, then dispatch an
        # instance that refuses to pickle. The pool's own PicklingError
        # is caught and the sweep completes serially.
        good = parallel_map(
            moody_flag, [Moody(True), Moody(True)], executor="process"
        )
        assert good == [True, True]
        with pytest.warns(RuntimeWarning, match="worker pool failed"):
            degraded = parallel_map(
                moody_flag, [Moody(True), Moody(False)], executor="process"
            )
        assert degraded == [True, False]
