"""Tests for NRE cost modeling, anchored on Table 3."""

import pytest

from repro.cost.nre import (
    ENGINEER_WEEK_COST_USD,
    block_tapeout_cost_usd,
    design_nre,
    nre_by_process,
)
from repro.design.library.accelerators import accelerator_by_key
from repro.design.library.zen2 import zen2
from repro.errors import InvalidParameterError


class TestTable3Anchors:
    """Table 3's C_tapeout column at 5 nm, reproduced within ~3%."""

    @pytest.mark.parametrize(
        "key,expected_musd",
        [
            ("sorting-stream", 6.8),
            ("sorting-iterative", 4.6),
            ("dft-stream", 6.1),
            ("dft-iterative", 4.6),
        ],
    )
    def test_block_costs(self, db, key, expected_musd):
        spec = accelerator_by_key(key)
        cost = block_tapeout_cost_usd(spec.transistors, db["5nm"])
        assert cost == pytest.approx(expected_musd * 1e6, rel=0.03)

    def test_cost_is_affine_in_nut(self, db):
        node = db["5nm"]
        base = block_tapeout_cost_usd(0.0, node)
        assert base == pytest.approx(node.tapeout_fixed_cost_usd)
        slope = block_tapeout_cost_usd(1e6, node) - base
        assert slope == pytest.approx(
            1e6 * node.tapeout_effort * ENGINEER_WEEK_COST_USD
        )

    def test_negative_nut_rejected(self, db):
        with pytest.raises(InvalidParameterError):
            block_tapeout_cost_usd(-1.0, db["5nm"])


class TestDesignNRE:
    def test_one_mask_set_per_node(self, db):
        design = zen2()  # 7nm compute + 14nm I/O
        nre = design_nre(design, db)
        assert nre.mask_usd == pytest.approx(
            db["7nm"].mask_set_cost_usd + db["14nm"].mask_set_cost_usd
        )

    def test_engineering_prices_eq2_effort(self, db):
        design = zen2()
        nre = design_nre(design, db)
        expected = (
            4.75e8 * db["7nm"].tapeout_effort
            + 5.23e8 * db["14nm"].tapeout_effort
        ) * ENGINEER_WEEK_COST_USD
        assert nre.engineering_usd == pytest.approx(expected)

    def test_total_is_sum(self, db):
        nre = design_nre(zen2(), db)
        assert nre.total_usd == pytest.approx(
            nre.engineering_usd + nre.fixed_usd + nre.mask_usd
        )

    def test_per_process_attribution_sums_to_total(self, db):
        design = zen2()
        per_node = nre_by_process(design, db)
        assert set(per_node) == {"7nm", "14nm"}
        assert sum(per_node.values()) == pytest.approx(
            design_nre(design, db).total_usd
        )

    def test_advanced_nodes_cost_more_nre(self, db):
        cheap = nre_by_process(zen2("14nm", "14nm"), db)["14nm"]
        pricey = nre_by_process(zen2("7nm", "7nm"), db)["7nm"]
        assert pricey > cheap
