"""Tests for the top-level cost model."""

import pytest

from repro.cost.manufacturing import manufacturing_cost
from repro.cost.model import CostModel
from repro.cost.nre import design_nre
from repro.design.library.a11 import a11
from repro.design.library.zen2 import zen2, zen2_monolithic
from repro.errors import InvalidParameterError


class TestComposition:
    def test_total_is_nre_plus_manufacturing(self, cost_model, db):
        design = a11("28nm")
        result = cost_model.chip_creation_cost(design, 10e6)
        assert result.nre_usd == pytest.approx(design_nre(design, db).total_usd)
        assert result.manufacturing_usd == pytest.approx(
            manufacturing_cost(design, db, 10e6).total_usd
        )
        assert result.total_usd == pytest.approx(
            result.nre_usd + result.manufacturing_usd
        )

    def test_per_chip_amortization(self, cost_model):
        result = cost_model.chip_creation_cost(a11("28nm"), 10e6)
        assert result.usd_per_chip == pytest.approx(result.total_usd / 10e6)

    def test_wafers_by_process_exposed(self, cost_model):
        result = cost_model.chip_creation_cost(zen2(), 10e6)
        assert set(result.wafers_by_process) == {"7nm", "14nm"}

    def test_as_dict_consistent(self, cost_model):
        result = cost_model.chip_creation_cost(a11("28nm"), 10e6)
        flat = result.as_dict()
        assert flat["total_usd"] == pytest.approx(result.total_usd)
        assert flat["nre_usd"] == pytest.approx(result.nre_usd)

    def test_invalid_volume_rejected(self, cost_model):
        with pytest.raises(InvalidParameterError):
            cost_model.chip_creation_cost(a11("28nm"), 0.0)

    def test_nominal_constructor(self):
        assert CostModel.nominal().total_usd(a11("28nm"), 1e6) > 0.0


class TestPaperFindings:
    def test_legacy_rerelease_costs_more_than_midrange(self, cost_model):
        """Fig. 7: 250 nm is the most expensive way to make 10 M A11s."""
        costs = {
            p: cost_model.total_usd(a11(p), 10e6)
            for p in ("250nm", "65nm", "28nm", "14nm", "7nm")
        }
        assert costs["250nm"] == max(costs.values())

    def test_mask_costs_bite_at_small_volumes(self, cost_model):
        """For tiny runs the advanced-node NRE dominates total cost."""
        legacy = cost_model.total_usd(a11("180nm"), 1e3)
        advanced = cost_model.total_usd(a11("5nm"), 1e3)
        assert advanced > legacy

    def test_mixed_process_costs_more_than_single(self, cost_model):
        """Sec. 6.5: two processes pay masks twice and 12nm-class wafers
        cost more good silicon than 7nm ones."""
        mixed = cost_model.total_usd(zen2(), 50e6)
        single = cost_model.total_usd(zen2("7nm", "7nm"), 50e6)
        assert mixed > single

        mixed_masks = cost_model.chip_creation_cost(zen2(), 50e6).mask_usd
        single_masks = cost_model.chip_creation_cost(
            zen2("7nm", "7nm"), 50e6
        ).mask_usd
        assert mixed_masks > single_masks

    def test_monolithic_14nm_most_expensive_variant(self, cost_model):
        """Low yield on the giant merged die buys many extra wafers."""
        variants = {
            "mixed": cost_model.total_usd(zen2(), 100e6),
            "chiplet7": cost_model.total_usd(zen2("7nm", "7nm"), 100e6),
            "mono14": cost_model.total_usd(zen2_monolithic("14nm"), 100e6),
        }
        assert variants["mono14"] == max(variants.values())

    def test_cost_independent_of_market_conditions(self, cost_model):
        """A slow supply chain delays chips; it does not change the bill."""
        assert cost_model.total_usd(a11("28nm"), 10e6) == pytest.approx(
            CostModel.nominal().total_usd(a11("28nm"), 10e6)
        )
