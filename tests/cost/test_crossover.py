"""Tests for cost/TTM crossover volumes."""

import pytest

from repro.cost.crossover import cost_crossover_volume, ttm_crossover_volume
from repro.design.library.a11 import a11
from repro.errors import InvalidParameterError


class TestCostCrossover:
    def test_a11_legacy_vs_advanced_crossover_exists(self, cost_model):
        """180 nm's tiny NRE wins small runs; 7 nm's dense silicon wins
        at volume — the curves must cross in between."""
        crossover = cost_crossover_volume(a11, "180nm", "7nm", cost_model)
        assert crossover is not None
        assert 1e3 < crossover < 1e8

    def test_sides_of_the_crossover(self, cost_model):
        crossover = cost_crossover_volume(a11, "180nm", "7nm", cost_model)
        low = crossover / 10
        high = crossover * 10
        assert cost_model.total_usd(a11("180nm"), low) < cost_model.total_usd(
            a11("7nm"), low
        )
        assert cost_model.total_usd(a11("180nm"), high) > cost_model.total_usd(
            a11("7nm"), high
        )

    def test_costs_equal_at_the_crossover(self, cost_model):
        crossover = cost_crossover_volume(a11, "180nm", "7nm", cost_model)
        entry = cost_model.total_usd(a11("180nm"), crossover)
        silicon = cost_model.total_usd(a11("7nm"), crossover)
        assert entry == pytest.approx(silicon, rel=1e-3)

    def test_dominated_range_returns_none(self, cost_model):
        """Above a few million units, 14 nm dominates 90 nm on cost —
        no crossover exists inside a mass-production-only range."""
        assert cost_crossover_volume(
            a11, "90nm", "14nm", cost_model, min_chips=5e6, max_chips=1e9
        ) is None

    def test_every_legacy_advanced_pair_crosses_somewhere(self, cost_model):
        """NRE-vs-silicon economics guarantee a crossover for any
        legacy/advanced pairing over the full volume span."""
        for legacy, advanced in (("250nm", "28nm"), ("90nm", "14nm")):
            assert cost_crossover_volume(
                a11, legacy, advanced, cost_model
            ) is not None

    def test_validation(self, cost_model):
        with pytest.raises(InvalidParameterError):
            cost_crossover_volume(
                a11, "180nm", "7nm", cost_model, min_chips=10.0, max_chips=1.0
            )


class TestTTMCrossover:
    def test_fig10_style_walk(self, model):
        """180 nm is faster for small A11 runs, 28 nm for mass production;
        the crossover sits where Fig. 10's blue outline jumps."""
        crossover = ttm_crossover_volume(a11, "180nm", "28nm", model)
        assert crossover is not None
        assert model.total_weeks(a11("180nm"), crossover / 10) < (
            model.total_weeks(a11("28nm"), crossover / 10)
        )
        assert model.total_weeks(a11("180nm"), crossover * 10) > (
            model.total_weeks(a11("28nm"), crossover * 10)
        )

    def test_crossover_consistent_with_fig10_rows(self, model):
        """Fig. 10: 40 nm is fastest at 1 M, 28 nm by 10 M — so the
        40/28 crossover lies between those volumes."""
        crossover = ttm_crossover_volume(a11, "40nm", "28nm", model)
        assert crossover is not None
        assert 1e5 < crossover < 1e7

    def test_dominated_range_returns_none(self, model):
        """28 nm beats 5 nm on A11 TTM everywhere below 10 M units —
        no crossover exists inside that range."""
        assert ttm_crossover_volume(
            a11, "5nm", "28nm", model, max_chips=1e7
        ) is None

    def test_even_5nm_wins_at_extreme_volume(self, model):
        """Fig. 10's trend taken further: by ~10^9 units 5 nm's density
        out-runs 28 nm's wafer rate, so the full range does cross."""
        crossover = ttm_crossover_volume(a11, "28nm", "5nm", model)
        assert crossover is not None
        assert crossover > 1e7
