"""Tests for recurring manufacturing costs."""

import pytest

from repro.cost.manufacturing import manufacturing_cost, wafer_demand
from repro.design.library.a11 import a11
from repro.design.library.zen2 import interposer_die, zen2
from repro.errors import InvalidParameterError
from repro.ttm.fabrication import wafer_demand_by_node


class TestWaferDemand:
    def test_matches_ttm_model_demand(self, db, foundry):
        """Cost and TTM must bill/schedule the same wafer counts."""
        design = a11("28nm")
        cost_side = wafer_demand(design, db, 10e6)
        ttm_side = wafer_demand_by_node(design, foundry, 10e6)
        assert cost_side.keys() == ttm_side.keys()
        for process in cost_side:
            assert cost_side[process] == pytest.approx(ttm_side[process])

    def test_zero_volume_zero_wafers(self, db):
        demand = wafer_demand(a11("28nm"), db, 0.0)
        assert demand["28nm"] == 0.0

    def test_negative_volume_rejected(self, db):
        with pytest.raises(InvalidParameterError):
            wafer_demand(a11("28nm"), db, -1.0)


class TestManufacturingCost:
    def test_wafer_spend_prices_demand(self, db):
        design = a11("28nm")
        breakdown = manufacturing_cost(design, db, 10e6)
        demand = wafer_demand(design, db, 10e6)
        assert breakdown.wafer_usd == pytest.approx(
            demand["28nm"] * db["28nm"].wafer_cost_usd
        )

    def test_total_is_sum(self, db):
        breakdown = manufacturing_cost(a11("28nm"), db, 10e6)
        assert breakdown.total_usd == pytest.approx(
            breakdown.wafer_usd + breakdown.testing_usd + breakdown.packaging_usd
        )

    def test_packaging_counts_every_die(self, db):
        base = zen2()  # 3 dies per package
        with_interposer = base.with_die(interposer_die(273.0))
        plain = manufacturing_cost(base, db, 1e6)
        loaded = manufacturing_cost(with_interposer, db, 1e6)
        assert loaded.packaging_usd > plain.packaging_usd

    def test_passive_die_free_to_test(self, db):
        base = zen2()
        with_interposer = base.with_die(interposer_die(273.0))
        plain = manufacturing_cost(base, db, 1e6)
        loaded = manufacturing_cost(with_interposer, db, 1e6)
        assert loaded.testing_usd == pytest.approx(plain.testing_usd)

    def test_legacy_wafer_spend_dominates(self, db):
        """Fig. 7's cost story: legacy re-release buys far more wafers."""
        legacy = manufacturing_cost(a11("250nm"), db, 10e6)
        advanced = manufacturing_cost(a11("7nm"), db, 10e6)
        assert legacy.wafer_usd > 4 * advanced.wafer_usd

    def test_custom_coefficients(self, db):
        base = manufacturing_cost(a11("28nm"), db, 1e6)
        doubled = manufacturing_cost(
            a11("28nm"), db, 1e6, package_base_usd=12.0
        )
        assert doubled.packaging_usd > base.packaging_usd
