"""The service's headline contract: coalesced == solo, byte for byte.

Each test computes a *solo oracle* (the response to a request on an idle
server, batch size 1), then fires a concurrent burst of requests and
asserts (a) the burst actually coalesced — fewer fused calls than
requests, proven by X-Batch-Size > 1 — and (b) every coalesced response
body is byte-identical to the oracle.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from repro.design.library import a11
from repro.engine import batch_ttm
from repro.ttm.model import TTMModel


def _burst(client, path, bodies):
    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        return list(pool.map(lambda body: client.post(path, body), bodies))


def test_identical_evaluate_requests_coalesce_bit_identically(client):
    body = {"design": "a11", "n_chips": 2e7}
    solo = client.post("/evaluate", body)
    assert solo.status == 200
    assert solo.batch_size == 1

    responses = _burst(client, "/evaluate", [body] * 8)
    assert all(r.status == 200 for r in responses)
    # The burst fused: at least one batch carried >1 request, and no
    # request saw more engine dispatches than the burst size demands.
    assert max(r.batch_size for r in responses) > 1
    for r in responses:
        assert r.body == solo.body


def test_mixed_designs_coalesce_and_match_solo(client):
    bodies = [
        {"design": name, "n_chips": 1e7}
        for name in ("a11", "zen2", "raven")
    ]
    solos = {
        json.dumps(body, sort_keys=True): client.post("/evaluate", body).body
        for body in bodies
    }
    responses = _burst(client, "/evaluate", bodies * 3)
    assert all(r.status == 200 for r in responses)
    assert max(r.batch_size for r in responses) > 1
    for body, response in zip(bodies * 3, responses):
        assert response.body == solos[json.dumps(body, sort_keys=True)]


def test_incompatible_shapes_do_not_fuse_but_stay_identical(client):
    plain = {"design": "a11"}
    with_knob = {"design": "a11", "d0_scale": 1.2}
    solo_plain = client.post("/evaluate", plain)
    solo_knob = client.post("/evaluate", with_knob)
    assert solo_plain.status == solo_knob.status == 200
    assert solo_plain.body != solo_knob.body  # the knob matters

    responses = _burst(client, "/evaluate", [plain, with_knob] * 3)
    for body, response in zip([plain, with_knob] * 3, responses):
        oracle = solo_plain if body is plain else solo_knob
        assert response.body == oracle.body


def test_mc_coalesces_across_designs_bit_identically(client):
    bodies = [
        {"design": name, "samples": 128, "seed": 3}
        for name in ("a11", "zen2")
    ]
    solos = [client.post("/mc", body) for body in bodies]
    assert all(r.status == 200 for r in solos)

    responses = _burst(client, "/mc", bodies * 2)
    assert all(r.status == 200 for r in responses)
    assert max(r.batch_size for r in responses) > 1
    for body, response in zip(bodies * 2, responses):
        assert response.body == solos[bodies.index(body)].body


def test_mc_different_seeds_do_not_fuse(client):
    a = {"design": "a11", "samples": 64, "seed": 1}
    b = {"design": "a11", "samples": 64, "seed": 2}
    solo_a = client.post("/mc", a)
    solo_b = client.post("/mc", b)
    responses = _burst(client, "/mc", [a, b])
    assert responses[0].body == solo_a.body
    assert responses[1].body == solo_b.body
    assert solo_a.body != solo_b.body


def test_splits_single_flight_dedup(client):
    body = {
        "design": "a11",
        "pairs": [["7nm", "14nm"], ["7nm", "28nm"]],
    }
    solo = client.post("/splits", body)
    assert solo.status == 200
    responses = _burst(client, "/splits", [body] * 4)
    assert all(r.status == 200 for r in responses)
    assert max(r.batch_size for r in responses) > 1
    for r in responses:
        assert r.body == solo.body


def test_evaluate_matches_direct_engine_call(client, model, cost_model):
    """The served numbers are the engine's numbers, not a reimplementation."""
    design = a11("7nm")
    response = client.post(
        "/evaluate", {"design": {"library": "a11", "process": "7nm"}}
    )
    assert response.status == 200
    served = response.json()["metrics"]["ttm"]["total_weeks"]
    # The server's nominal-scenario model == conftest's nominal model.
    direct = batch_ttm(model, design, n_chips=[1e7]).total_weeks[0]
    assert served == direct


def test_batch_size_header_is_metadata_only(client):
    """Batch size rides in the header; bodies never mention it."""
    body = {"design": "raven"}
    responses = _burst(client, "/evaluate", [body] * 4)
    sizes = {r.batch_size for r in responses}
    assert max(sizes) > 1
    for r in responses:
        assert b"batch" not in r.body.lower()


def test_scenario_changes_the_answer_but_not_determinism(client):
    nominal = {"design": "a11"}
    crunch = {"design": "a11", "scenario": "shortage_2021"}
    solo_nominal = client.post("/evaluate", nominal)
    solo_crunch = client.post("/evaluate", crunch)
    assert solo_crunch.status == 200
    assert solo_nominal.body != solo_crunch.body
    responses = _burst(client, "/evaluate", [nominal, crunch] * 2)
    for body, r in zip([nominal, crunch] * 2, responses):
        oracle = solo_nominal if body is nominal else solo_crunch
        assert r.body == oracle.body
