"""Load/soak smoke: ~200 mixed requests against one server.

Marked ``slow`` and excluded from the default run (``-m slow`` selects
it); CI runs it on a non-gating leg. Asserts the service-level
bookkeeping stays consistent under sustained concurrency: every request
answered, batch accounting sums exactly to the request count, the
admission queue returns to empty, and no worker threads leak.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.slow

REQUESTS = 200
CONCURRENCY = 16


def test_soak_two_hundred_requests(serve_factory):
    server = serve_factory.server(batch_window_ms=10.0, max_batch=32)
    client = serve_factory.client(server)

    bodies = []
    for i in range(REQUESTS):
        if i % 10 == 7:
            bodies.append(("/mc", {"design": "a11", "samples": 32}))
        elif i % 10 == 3:
            bodies.append(
                ("/splits", {"design": "a11", "pairs": [["7nm", "14nm"]]})
            )
        else:
            design = ("a11", "zen2", "raven")[i % 3]
            bodies.append(("/evaluate", {"design": design}))

    def batched_requests_metric() -> float:
        text = client.get("/metrics").body.decode()
        total = 0.0
        for line in text.splitlines():
            if line.startswith("serve_batched_requests_total{"):
                total += float(line.rsplit(" ", 1)[1])
        return total

    # The registry is process-global (other tests' servers feed the same
    # counters), so the consistency check below is on the delta.
    metric_before = batched_requests_metric()

    solo = {
        json.dumps([path, body], sort_keys=True): client.post(path, body)
        for path, body in dict(
            (json.dumps([p, b], sort_keys=True), (p, b))
            for p, b in bodies
        ).values()
    }
    for oracle in solo.values():
        assert oracle.status == 200

    before_threads = threading.active_count()
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        responses = list(
            pool.map(lambda item: client.post(item[0], item[1]), bodies)
        )

    # 1. Every request answered, byte-identical to its solo oracle.
    assert all(r.status == 200 for r in responses)
    for (path, body), response in zip(bodies, responses):
        key = json.dumps([path, body], sort_keys=True)
        assert response.body == solo[key].body

    # 2. The burst actually coalesced.
    assert max(r.batch_size for r in responses) > 1

    # 3. Batch accounting is exact: sizes observed on responses are the
    #    sizes the batcher recorded, and they sum to the request count.
    stats = server.server.batcher.stats()
    solo_requests = len(solo)
    assert (
        stats["batched_requests"] == REQUESTS + solo_requests
    )
    assert stats["batches"] <= stats["batched_requests"]

    # 4. The admission queue drained back to empty.
    assert server.server.batcher.depth == 0

    # 5. The serve_* metrics agree with the batcher's own accounting.
    assert batched_requests_metric() - metric_before == float(
        stats["batched_requests"]
    )

    # 6. No thread leak: the worker pool is bounded, not per-request.
    assert threading.active_count() <= before_threads + CONCURRENCY + 4
