"""Single-process observability surface: ids, traces, logs, SLOs.

These tests drive one ``ServerThread`` (no router) and check the
request-scoped observability contract end to end on the wire: request
and trace ids in response headers, ``/debug/trace`` span stitching,
``/debug/obs`` snapshots, SLO gauges in ``/metrics``, structured log
records, and — crucially — that coalesced responses stay byte-identical
to the solo oracle *with tracing enabled* (trace data rides in headers
and sidecars, never in response bodies).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.distributed import mint_trace_context, stitch_trace
from repro.obs.log import read_request_log


def _burst(client, path, bodies):
    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        return list(pool.map(lambda body: client.post(path, body), bodies))


def _spans_for(client, trace_id, names, attempts=50):
    """Poll /debug/trace until the stitched trace contains ``names``."""
    for _ in range(attempts):
        spans = client.get("/debug/trace").json()["spans"]
        stitched = stitch_trace(spans, trace_id)
        present = {span["name"] for span in stitched}
        if names <= present:
            return stitched
        time.sleep(0.05)
    raise AssertionError(
        f"trace {trace_id!r} never grew spans {names - present}"
    )


class TestRequestIds:
    def test_request_id_minted_even_without_tracing(self, client):
        response = client.post("/evaluate", {"design": "a11"})
        assert response.status == 200
        assert response.request_id
        assert response.trace_id == ""

    def test_client_echoes_request_id_back(self, client, server):
        response = client.request(
            "POST",
            "/evaluate",
            body=json.dumps({"design": "a11"}).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": "caller-chosen-7",
            },
        )
        assert response.request_id == "caller-chosen-7"


class TestTracedServer:
    @pytest.fixture
    def traced(self, serve_factory):
        return serve_factory.server(
            batch_window_ms=25.0, max_batch=32, trace=True
        )

    @pytest.fixture
    def traced_client(self, serve_factory, traced):
        return serve_factory.client(traced)

    def test_response_carries_trace_id(self, traced_client):
        response = traced_client.post("/evaluate", {"design": "a11"})
        assert response.status == 200
        assert len(response.trace_id) == 32
        assert response.batch_size >= 1

    def test_debug_trace_stitches_request_batch_and_kernel(
        self, traced_client
    ):
        response = traced_client.post("/evaluate", {"design": "a11"})
        stitched = _spans_for(
            traced_client,
            response.trace_id,
            {"serve.request", "serve.batch", "engine.fused_point_eval"},
        )
        request_span = next(
            s for s in stitched if s["name"] == "serve.request"
        )
        assert request_span["attributes"]["request_id"] == (
            response.request_id
        )
        # Self-minted admission context: the span carries its own wire
        # id, not a parent's.
        assert "ctx_span" in request_span["attributes"]
        batch_span = next(s for s in stitched if s["name"] == "serve.batch")
        links = batch_span["attributes"]["links"]
        assert any(
            link["request_id"] == response.request_id for link in links
        )

    def test_propagated_traceparent_continues_callers_trace(
        self, traced_client
    ):
        ctx = mint_trace_context()
        response = traced_client.request(
            "POST",
            "/evaluate",
            body=json.dumps({"design": "a11"}).encode(),
            headers={
                "Content-Type": "application/json",
                "traceparent": ctx.to_traceparent(),
            },
        )
        assert response.trace_id == ctx.trace_id
        stitched = _spans_for(
            traced_client, ctx.trace_id, {"serve.request"}
        )
        request_span = next(
            s for s in stitched if s["name"] == "serve.request"
        )
        # Received context: recorded as the sender's span id.
        assert request_span["attributes"]["parent_ctx"] == ctx.span_id

    def test_debug_obs_snapshot_shape(self, traced_client):
        traced_client.post("/evaluate", {"design": "a11"})
        snapshot = traced_client.get("/debug/obs").json()
        assert snapshot["role"] == "server"
        assert snapshot["tracing"] is True
        assert snapshot["draining"] is False
        # The snapshot request sees itself in flight; the finished
        # evaluate must be gone.
        in_flight = {entry["endpoint"] for entry in snapshot["in_flight"]}
        assert "evaluate" not in in_flight
        assert snapshot["spans_recorded"] > 0
        recent = snapshot["recent"]
        assert recent and recent[-1]["endpoint"] == "evaluate"
        assert "evaluate" in snapshot["slo"]

    def test_metrics_expose_slo_gauges(self, traced_client):
        traced_client.post("/evaluate", {"design": "a11"})
        text = traced_client.get("/metrics").body.decode("utf-8")
        for series in (
            "serve_slo_error_burn_rate",
            "serve_slo_latency_burn_rate",
            "serve_slo_ok",
        ):
            assert f"# TYPE {series} gauge" in text
        assert 'serve_slo_ok{endpoint="evaluate"} 1' in text

    def test_coalescing_stays_byte_identical_with_tracing_on(
        self, traced_client
    ):
        body = {"design": "a11", "n_chips": 2e7}
        solo = traced_client.post("/evaluate", body)
        assert solo.status == 200
        responses = _burst(traced_client, "/evaluate", [body] * 8)
        assert all(r.status == 200 for r in responses)
        assert max(r.batch_size for r in responses) > 1
        for response in responses:
            assert response.body == solo.body
        # Trace data never leaks into bodies; ids stay per-request.
        assert len({r.request_id for r in responses}) == len(responses)
        assert len({r.trace_id for r in responses}) == len(responses)


class TestRequestLog:
    def test_log_records_carry_correlation_and_breakdown(
        self, serve_factory, tmp_path
    ):
        path = tmp_path / "requests.jsonl"
        thread = serve_factory.server(
            batch_window_ms=25.0, max_batch=32, log_json=str(path)
        )
        client = serve_factory.client(thread)
        response = client.post("/evaluate", {"design": "a11"})
        assert response.status == 200
        # Logging alone (no tracer) still mints a trace id for
        # correlation across the log.
        assert response.trace_id
        thread.stop()
        records = read_request_log(str(path))
        record = next(
            r for r in records if r["request_id"] == response.request_id
        )
        assert record["trace_id"] == response.trace_id
        assert record["endpoint"] == "evaluate"
        assert record["status"] == 200
        assert record["outcome"] == "ok"
        assert record["batch_size"] >= 1
        breakdown = record["breakdown"]
        assert set(breakdown) >= {
            "queue_ms", "batch_wait_ms", "compute_ms", "serialize_ms",
        }
        assert record["latency_ms"] >= breakdown["compute_ms"]
