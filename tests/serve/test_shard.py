"""Sharded serve: sticky routes, cross-worker byte-identity, lifecycle.

The tentpole contracts pinned here:

* the router's :func:`routing_key` is a faithful shadow of the worker
  batcher's group key — requests the batcher would coalesce never split
  across workers — and it never raises, whatever the body;
* a response served through the shard router is byte-identical to the
  same request's response from a single-process server (the PR 7
  contract survives sharding);
* a concurrent burst of coalescable requests still fuses (X-Batch-Size
  > 1) even though every request enters through the parent router on
  its own connection;
* ``/metrics`` aggregates per-worker families under ``worker="N"``
  labels with no duplicate series; ``/healthz`` reports the fleet;
* a SIGKILLed worker is reaped, its shm lease released, and a
  replacement spawned; a rolling drain completes every accepted
  request, refuses new ones with 503/draining, and leaves behind no
  worker process and no shared-memory segment.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    ShardConfig,
    ShardThread,
    rendezvous_worker,
    routing_key,
)


def _segments():
    return set(glob.glob("/dev/shm/repro_shm_*"))


def _burst(client, path, bodies):
    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        return list(pool.map(lambda body: client.post(path, body), bodies))


# -- routing (pure unit tests) -----------------------------------------------


class TestRoutingKey:
    def test_coalescable_evaluate_requests_share_a_key(self):
        # Different designs and knob *values* coalesce; only the knob
        # shape is routed on.
        base = json.dumps({"design": "a11", "queue_weeks": 2.0}).encode()
        other = json.dumps({"design": "zen2", "queue_weeks": 9.0}).encode()
        assert routing_key("evaluate", base) == routing_key(
            "evaluate", other
        )

    def test_knob_shape_changes_the_key(self):
        plain = json.dumps({"design": "a11"}).encode()
        with_knob = json.dumps({"design": "a11", "d0_scale": 1.2}).encode()
        assert routing_key("evaluate", plain) != routing_key(
            "evaluate", with_knob
        )

    def test_capacity_node_order_does_not_split_a_group(self):
        forward = json.dumps(
            {"design": "a11", "capacity": {"7nm": 0.5, "14nm": 0.9}}
        ).encode()
        backward = json.dumps(
            {"design": "zen2", "capacity": {"14nm": 0.1, "7nm": 0.2}}
        ).encode()
        assert routing_key("evaluate", forward) == routing_key(
            "evaluate", backward
        )

    def test_mc_numeric_representation_does_not_split_a_group(self):
        as_int = json.dumps({"design": "a11", "n_chips": 10000000}).encode()
        as_float = json.dumps({"design": "zen2", "n_chips": 1e7}).encode()
        defaulted = json.dumps({"design": "raven"}).encode()
        assert (
            routing_key("mc", as_int)
            == routing_key("mc", as_float)
            == routing_key("mc", defaulted)
        )

    def test_mc_seed_changes_the_key(self):
        a = json.dumps({"design": "a11", "seed": 1}).encode()
        b = json.dumps({"design": "a11", "seed": 2}).encode()
        assert routing_key("mc", a) != routing_key("mc", b)

    def test_never_raises_on_junk(self):
        for body in (
            b"",
            b"not json",
            b"[1, 2, 3]",
            b'{"design": null, "capacity": false, "pairs": 7}',
            b'{"samples": "many", "queue_weeks": []}',
            "\xff\xfe".encode("latin-1"),
        ):
            for endpoint in ("evaluate", "mc", "splits", "other"):
                key = routing_key(endpoint, body)
                assert isinstance(key, bytes)
                assert key == routing_key(endpoint, body)  # deterministic


class TestRendezvous:
    def test_deterministic(self):
        key = routing_key("evaluate", b'{"design": "a11"}')
        picks = {rendezvous_worker(key, [0, 1, 2, 3]) for _ in range(10)}
        assert len(picks) == 1

    def test_spreads_distinct_keys(self):
        keys = [
            routing_key("mc", json.dumps({"seed": seed}).encode())
            for seed in range(64)
        ]
        slots = {rendezvous_worker(key, [0, 1, 2, 3]) for key in keys}
        assert len(slots) > 1  # not everything lands on one worker

    def test_removing_a_slot_only_moves_its_keys(self):
        keys = [
            routing_key("mc", json.dumps({"seed": seed}).encode())
            for seed in range(64)
        ]
        before = {key: rendezvous_worker(key, [0, 1, 2]) for key in keys}
        after = {key: rendezvous_worker(key, [0, 1]) for key in keys}
        for key in keys:
            if before[key] != 2:
                assert after[key] == before[key]

    def test_empty_worker_set_is_an_error(self):
        with pytest.raises(ValueError):
            rendezvous_worker(b"key", [])


# -- a live two-worker shard -------------------------------------------------


@pytest.fixture(scope="module")
def shard():
    """One 2-worker shard shared by the read-mostly tests below.

    The respawn test runs against it too (last in file); the rolling
    drain test boots its own.
    """
    before = _segments()
    thread = ShardThread(
        ShardConfig(
            workers=2,
            server=ServerConfig(batch_window_ms=25.0),
            respawn_backoff_s=0.05,
            respawn_backoff_cap_s=0.2,
        )
    ).start()
    yield thread
    pids = [w.pid for w in thread.supervisor.workers]
    thread.stop()
    # Full drain: no worker survives, no shm segment leaks.
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
    assert _segments() <= before


@pytest.fixture()
def shard_client(shard):
    return ServeClient(shard.host, shard.port, timeout=120.0)


@pytest.fixture(scope="module")
def solo_oracle():
    """A single-process server: the byte-identity reference."""
    with ServerThread(ServerConfig(batch_window_ms=25.0)) as thread:
        yield ServeClient(thread.host, thread.port, timeout=120.0)


def test_cross_worker_byte_identity(shard_client, solo_oracle):
    """Routed through the shard == served solo, byte for byte."""
    cases = [
        ("/evaluate", {"design": "a11"}),
        ("/evaluate", {"design": "zen2", "scenario": "shortage_2021"}),
        ("/evaluate", {"design": "raven", "queue_weeks": 4.0}),
        ("/mc", {"design": "a11", "samples": 64, "seed": 7}),
        ("/splits", {"design": "a11", "pairs": [["7nm", "14nm"]]}),
    ]
    for path, body in cases:
        sharded = shard_client.post(path, body)
        solo = solo_oracle.post(path, body)
        assert sharded.status == solo.status == 200, (path, body)
        assert sharded.body == solo.body, (path, body)


def test_sticky_burst_still_coalesces(shard_client, solo_oracle):
    """Same-group requests on separate connections fuse on one worker."""
    body = {"design": "a11", "n_chips": 2e7}
    solo = solo_oracle.post("/evaluate", body)
    assert solo.status == 200

    responses = _burst(shard_client, "/evaluate", [body] * 8)
    assert all(r.status == 200 for r in responses)
    # Coalescing proves stickiness: a group split across workers could
    # never produce a batch larger than its biggest worker-local share.
    assert max(r.batch_size for r in responses) > 1
    for response in responses:
        assert response.body == solo.body


def test_metrics_aggregates_all_workers(shard_client):
    shard_client.post("/evaluate", {"design": "a11"})
    scrape = shard_client.get("/metrics")
    assert scrape.status == 200
    text = scrape.body.decode()
    for label in ('worker="0"', 'worker="1"', 'worker="router"'):
        assert label in text, text
    assert "serve_requests_total" in text
    assert "serve_routed_total" in text
    # Valid exposition: no series (name + label set) appears twice.
    series = [
        line.rsplit(" ", 1)[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    ]
    assert len(series) == len(set(series))


def test_healthz_reports_the_fleet(shard_client):
    health = shard_client.get("/healthz").json()
    assert health["status"] == "ok"
    workers = health["workers"]
    assert [entry["worker"] for entry in workers] == [0, 1]
    for entry in workers:
        assert entry["alive"] is True
        assert entry["status"] == "ok"
        assert entry["pid"] > 0
        assert entry["restarts"] == 0
        assert entry["warm_cache"] in ("shared", "inline")


def test_worker_labels_differ_from_single_process_healthz(shard_client):
    """Worker-only fields never leak into the aggregate entries' shape."""
    health = shard_client.get("/healthz").json()
    assert set(health) == {"status", "workers"}


# Keep this test last in the module: it restarts a worker and bumps its
# restart counter, which the fleet assertions above pin at zero.
def test_killed_worker_is_respawned(shard, shard_client):
    victim = shard.supervisor.workers[0]
    old_pid = victim.pid
    os.kill(old_pid, signal.SIGKILL)

    deadline = time.monotonic() + 90.0
    while time.monotonic() < deadline:
        entry = shard_client.get("/healthz").json()["workers"][0]
        if entry["alive"] and entry["restarts"] >= 1:
            break
        time.sleep(0.1)
    else:
        pytest.fail("worker 0 was not respawned within 90 s")
    assert victim.pid != old_pid

    # The pool serves again, on both route targets.
    response = shard_client.post("/evaluate", {"design": "a11"})
    assert response.status == 200


# -- rolling drain (own boot: the test stops the server) ---------------------


def test_rolling_drain_completes_in_flight_and_rejects_new():
    before = _segments()
    thread = ShardThread(
        ShardConfig(
            workers=2,
            server=ServerConfig(batch_window_ms=400.0),
        )
    ).start()
    client = ServeClient(thread.host, thread.port, timeout=120.0)
    try:
        # Two groups that land on different workers: knob shapes give
        # distinct routing keys; with 2 slots and several shapes at
        # least two keys must split.
        shapes = [
            {"design": "a11"},
            {"design": "a11", "queue_weeks": 2.0},
            {"design": "a11", "d0_scale": 1.0},
            {"design": "a11", "wafer_rate_scale": 1.0},
        ]
        slots = [0, 1]
        by_slot = {}
        for body in shapes:
            key = routing_key("evaluate", json.dumps(body).encode())
            by_slot.setdefault(rendezvous_worker(key, slots), body)
        assert len(by_slot) == 2, by_slot
        bodies = list(by_slot.values()) * 2

        pool = ThreadPoolExecutor(max_workers=len(bodies))
        futures = [
            pool.submit(client.post, "/evaluate", body) for body in bodies
        ]
        time.sleep(0.1)  # let every request enter its batch window

        stopper = threading.Thread(target=thread.stop)
        stopper.start()

        # While the drain runs, fresh requests get an explicit
        # 503/draining, not a refused connection.
        saw_draining = False
        while stopper.is_alive():
            try:
                probe = client.post("/evaluate", {"design": "zen2"})
            except OSError:
                break  # listener finally closed: drain is ending
            if probe.status == 503 and probe.error_code == "draining":
                saw_draining = True
                break
            time.sleep(0.02)
        stopper.join(timeout=120.0)
        assert not stopper.is_alive()
        assert saw_draining

        # Every request accepted before the drain completed normally.
        responses = [future.result(timeout=120.0) for future in futures]
        pool.shutdown(wait=True)
        assert [r.status for r in responses] == [200] * len(bodies)
    finally:
        thread.stop()

    # Nothing survives the drain: no worker processes, no segments.
    for worker in thread.supervisor.workers:
        with pytest.raises(ProcessLookupError):
            os.kill(worker.pid, 0)
    assert _segments() <= before
