"""Fixtures for the serve suite: in-process servers on ephemeral ports.

``serve_factory`` boots a real :class:`ServerThread` (own event loop,
real TCP socket on 127.0.0.1) with test-chosen batching knobs and tears
it down — gracefully — at test exit. Tests talk to it over actual HTTP
via :class:`ServeClient`, so status codes, headers, and the raw response
bytes (the byte-identity contract) are all exercised on the wire.
"""

from __future__ import annotations

from typing import Iterator, List

import pytest

from repro.serve import ServeClient, ServerConfig, ServerThread


class _ServeFactory:
    def __init__(self) -> None:
        self._servers: List[ServerThread] = []

    def server(self, **config) -> ServerThread:
        """Boot a server with the given ServerConfig overrides."""
        config.setdefault("port", 0)
        thread = ServerThread(ServerConfig(**config)).start()
        self._servers.append(thread)
        return thread

    def client(self, thread: ServerThread, timeout: float = 60.0) -> ServeClient:
        return ServeClient(thread.host, thread.port, timeout=timeout)

    def stop_all(self) -> None:
        for thread in self._servers:
            thread.stop()
        self._servers.clear()


@pytest.fixture
def serve_factory() -> Iterator[_ServeFactory]:
    factory = _ServeFactory()
    try:
        yield factory
    finally:
        factory.stop_all()


@pytest.fixture
def server(serve_factory: _ServeFactory) -> ServerThread:
    """A default-ish server: 25 ms window, batch cap 32."""
    return serve_factory.server(batch_window_ms=25.0, max_batch=32)


@pytest.fixture
def client(serve_factory: _ServeFactory, server: ServerThread) -> ServeClient:
    return serve_factory.client(server)
