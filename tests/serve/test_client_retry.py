"""Client-side backpressure handling: opt-in 429 retries, typed 503s.

Pure unit tests: the wire exchange is stubbed so the retry policy is
pinned without a server — deterministic sleeps via an injected RNG.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.client import (
    ServeClient,
    ServeResponse,
    ServerDrainingError,
)

_DRAINING = ServeResponse(
    status=503,
    headers={},
    body=b'{"error": {"code": "draining", "message": "bye"}}',
)
_BUSY = ServeResponse(
    status=429,
    headers={"retry-after": "2"},
    body=b'{"error": {"code": "queue_full", "message": "later"}}',
)
_OK = ServeResponse(status=200, body=b'{"fine": true}')


class _Script:
    """Replays a fixed response sequence and records the sleeps."""

    def __init__(self, client, responses):
        self.responses = list(responses)
        self.exchanges = 0
        self.sleeps = []
        client._exchange = self._exchange
        client._sleep = self.sleeps.append

    def _exchange(self, method, path, body, headers):
        self.exchanges += 1
        return self.responses.pop(0)


def _client(**kwargs):
    kwargs.setdefault("_rng", random.Random(7))
    return ServeClient("localhost", 1, **kwargs)


def test_default_client_never_retries_or_raises():
    client = _client()
    script = _Script(client, [_DRAINING])
    response = client.request("POST", "/evaluate")
    assert response.status == 503
    assert script.exchanges == 1
    assert script.sleeps == []


def test_429_is_retried_after_jittered_retry_after():
    client = _client(max_retries=3)
    script = _Script(client, [_BUSY, _BUSY, _OK])
    response = client.request("POST", "/evaluate")
    assert response.status == 200
    assert script.exchanges == 3
    assert len(script.sleeps) == 2
    for slept in script.sleeps:
        # Retry-After 2s, full jitter in [0.5x, 1.5x].
        assert 1.0 <= slept <= 3.0


def test_retry_after_is_clamped():
    client = _client(max_retries=1, max_retry_after=0.25)
    script = _Script(
        client,
        [
            ServeResponse(
                status=429, headers={"retry-after": "3600"}, body=b"{}"
            ),
            _OK,
        ],
    )
    assert client.request("POST", "/mc").status == 200
    assert script.sleeps[0] <= 0.375  # 1.5x the 0.25s clamp


def test_retries_exhaust_to_the_last_429():
    client = _client(max_retries=2)
    script = _Script(client, [_BUSY, _BUSY, _BUSY])
    response = client.request("POST", "/evaluate")
    assert response.status == 429
    assert script.exchanges == 3  # initial + 2 retries


def test_draining_503_raises_typed_error_when_retrying():
    client = _client(max_retries=2)
    script = _Script(client, [_DRAINING])
    with pytest.raises(ServerDrainingError) as excinfo:
        client.request("POST", "/evaluate")
    assert excinfo.value.response.status == 503
    assert script.exchanges == 1  # no retry against a draining server


def test_non_draining_503_is_returned_not_raised():
    client = _client(max_retries=2)
    plain_503 = ServeResponse(
        status=503,
        body=b'{"error": {"code": "worker_unavailable", "message": "x"}}',
    )
    _Script(client, [plain_503])
    response = client.request("POST", "/evaluate")
    assert response.status == 503
    assert response.error_code == "worker_unavailable"


def test_negative_max_retries_is_rejected():
    with pytest.raises(ValueError):
        ServeClient("localhost", 1, max_retries=-1)
