"""POST /scenarios over the wire: coalescing, seed isolation, metrics.

Three pins ride on this endpoint. Coalesced responses must be
byte-identical to the solo oracle (the cube is shared, the slices are
not re-derived). The per-request ``seed`` lives in the batcher group
key, so requests with different seeds must never fuse — each one's body
still matches its own solo oracle. And every fused batch feeds the
``serve_batch_fill`` histogram exposed at GET /metrics.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor


def _burst(client, path, bodies):
    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        return list(pool.map(lambda body: client.post(path, body), bodies))


def test_scenarios_solo_response_shape(client):
    solo = client.post(
        "/scenarios",
        {"design": "a11", "scenarios": "fab-outage", "samples": 64},
    )
    assert solo.status == 200
    assert solo.batch_size == 1
    payload = json.loads(solo.body)
    assert payload["scenarios"] == [
        "fab-outage:mild",
        "fab-outage:moderate",
        "fab-outage:severe",
        "fab-outage:extreme",
    ]
    assert sorted(payload["studies"]) == sorted(payload["scenarios"])
    assert "ttm_weeks" in json.dumps(payload["studies"])


def test_scenarios_coalesce_across_designs_bit_identically(client):
    bodies = [
        {
            "design": name,
            "scenarios": ["baseline", "logistics:severe"],
            "samples": 64,
            "seed": 7,
        }
        for name in ("a11", "zen2", "raven")
    ]
    solos = {
        body["design"]: client.post("/scenarios", body) for body in bodies
    }
    assert all(r.status == 200 for r in solos.values())

    responses = _burst(client, "/scenarios", bodies * 3)
    assert all(r.status == 200 for r in responses)
    assert max(r.batch_size for r in responses) > 1
    for body, response in zip(bodies * 3, responses):
        assert response.body == solos[body["design"]].body


def test_differing_seeds_never_fuse(client):
    seeds = (1, 2)
    bodies = [
        {"design": "a11", "scenarios": "baseline", "samples": 64,
         "seed": seed}
        for seed in seeds
    ]
    solos = {body["seed"]: client.post("/scenarios", body)
             for body in bodies}
    assert solos[1].body != solos[2].body  # the seed matters

    responses = _burst(client, "/scenarios", bodies * 3)
    assert all(r.status == 200 for r in responses)
    for body, response in zip(bodies * 3, responses):
        # Seed is in the group key: a batch never mixes seeds, so each
        # response is byte-identical to its own seed's solo oracle...
        assert response.body == solos[body["seed"]].body
        # ...and no batch can exceed its seed-group's population.
        assert response.batch_size <= 3


def test_mc_seed_in_group_key(client):
    bodies = [
        {"design": "a11", "samples": 128, "seed": seed}
        for seed in (10, 11)
    ]
    solos = {body["seed"]: client.post("/mc", body) for body in bodies}
    assert solos[10].body != solos[11].body

    responses = _burst(client, "/mc", bodies * 3)
    assert all(r.status == 200 for r in responses)
    for body, response in zip(bodies * 3, responses):
        assert response.body == solos[body["seed"]].body
        assert response.batch_size <= 3


def test_invalid_selector_rejected(client):
    response = client.post(
        "/scenarios", {"design": "a11", "scenarios": "apocalypse"}
    )
    assert response.status == 400


def test_batch_fill_histogram_exposed(client):
    body = {"design": "a11", "scenarios": "baseline", "samples": 64}
    responses = _burst(client, "/scenarios", [body] * 4)
    assert all(r.status == 200 for r in responses)

    metrics = client.get("/metrics")
    assert metrics.status == 200
    text = metrics.body.decode("utf-8")
    assert "serve_batch_fill" in text
    fill_lines = [
        line
        for line in text.splitlines()
        if line.startswith("serve_batch_fill_bucket")
        and 'endpoint="scenarios"' in line
    ]
    assert fill_lines, "no scenarios-labelled fill buckets"
    # The +Inf bucket carries every observation; at least one batch ran.
    inf = [line for line in fill_lines if '+Inf' in line]
    assert inf and float(inf[0].rsplit(" ", 1)[1]) >= 1.0
