"""Failure paths: bad input, backpressure, deadlines, graceful shutdown."""

from __future__ import annotations

import socket
import threading
import time


def test_malformed_json_is_400(client):
    response = client.request("POST", "/evaluate", body=b"{not json")
    assert response.status == 400
    payload = response.json()
    assert payload["error"]["code"] == "invalid_json"
    assert "JSON" in payload["error"]["message"]


def test_non_object_body_is_400(client):
    response = client.request("POST", "/evaluate", body=b"[1, 2, 3]")
    assert response.status == 400
    assert response.json()["error"]["code"] == "invalid_request"


def test_missing_design_is_400(client):
    response = client.post("/evaluate", {"n_chips": 1e7})
    assert response.status == 400
    assert "design" in response.json()["error"]["message"]


def test_bad_field_types_are_400(client):
    for body in (
        {"design": "a11", "n_chips": "lots"},
        {"design": "a11", "n_chips": -5},
        {"design": "a11", "capacity": {}},
        {"design": "a11", "metrics": []},
        {"design": "a11", "metrics": ["latency"]},
    ):
        response = client.post("/evaluate", body)
        assert response.status == 400, body


def _raw_exchange(host, port, request_bytes):
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(request_bytes)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def test_oversized_body_is_413(server):
    head = (
        "POST /evaluate HTTP/1.1\r\n"
        "Host: test\r\n"
        "Content-Length: 5000000\r\n"
        "\r\n"
    ).encode()
    raw = _raw_exchange(server.host, server.port, head)
    assert b"413" in raw.split(b"\r\n", 1)[0]
    assert b"payload_too_large" in raw


def test_garbage_request_line_is_400(server):
    raw = _raw_exchange(server.host, server.port, b"NONSENSE\r\n\r\n")
    assert b"400" in raw.split(b"\r\n", 1)[0]


def test_bad_content_length_is_400(server):
    head = (
        b"POST /evaluate HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
    )
    raw = _raw_exchange(server.host, server.port, head)
    assert b"400" in raw.split(b"\r\n", 1)[0]


def test_queue_overflow_is_429_with_retry_after(serve_factory):
    # A huge window parks admitted requests in a pending group, so the
    # third request overflows the 2-deep admission queue.
    server = serve_factory.server(
        batch_window_ms=30_000.0, max_batch=64, max_queue=2
    )
    client = serve_factory.client(server)
    results = []

    def blocked():
        results.append(client.post("/evaluate", {"design": "a11"}))

    threads = [threading.Thread(target=blocked) for _ in range(2)]
    for thread in threads:
        thread.start()
    deadline = time.time() + 10.0
    while server.server.batcher.depth < 2 and time.time() < deadline:
        time.sleep(0.01)
    assert server.server.batcher.depth == 2

    rejected = client.post("/evaluate", {"design": "a11"})
    assert rejected.status == 429
    assert rejected.json()["error"]["code"] == "queue_full"
    assert int(rejected.headers["retry-after"]) >= 1

    # Graceful stop flushes the parked group: the blocked callers get
    # real answers, not errors.
    server.stop()
    for thread in threads:
        thread.join(timeout=30.0)
    assert [r.status for r in results] == [200, 200]
    assert results[0].body == results[1].body


def test_deadline_exceeded_is_504(serve_factory):
    server = serve_factory.server(
        batch_window_ms=30_000.0, max_batch=64
    )
    client = serve_factory.client(server)
    started = time.time()
    response = client.post(
        "/evaluate", {"design": "a11"}, deadline_ms=100
    )
    elapsed = time.time() - started
    assert response.status == 504
    assert response.json()["error"]["code"] == "deadline_exceeded"
    assert elapsed < 10.0  # returned at the deadline, not the window
    text = client.get("/metrics").body.decode()
    assert 'serve_rejected_total{reason="deadline"}' in text


def test_deadline_of_one_member_does_not_fail_neighbors(serve_factory):
    server = serve_factory.server(batch_window_ms=300.0, max_batch=64)
    client = serve_factory.client(server)
    results = {}

    def call(name, deadline):
        results[name] = client.post(
            "/evaluate", {"design": "a11"}, deadline_ms=deadline
        )

    threads = [
        threading.Thread(target=call, args=("patient", 60_000)),
        threading.Thread(target=call, args=("hasty", 50)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert results["hasty"].status == 504
    assert results["patient"].status == 200


def test_invalid_deadline_header_is_400(client):
    response = client.request(
        "POST",
        "/evaluate",
        body=b'{"design": "a11"}',
        headers={"X-Deadline-Ms": "soon"},
    )
    assert response.status == 400


def test_draining_batcher_rejects_with_503(serve_factory):
    server = serve_factory.server(batch_window_ms=5.0)
    client = serve_factory.client(server)
    assert client.post("/evaluate", {"design": "a11"}).status == 200
    # Flip the batcher's drain flag directly: the listener is still up,
    # so the rejection travels the HTTP path the way an in-flight
    # connection would see it during shutdown.
    server.server.batcher._draining = True
    try:
        response = client.post("/evaluate", {"design": "a11"})
        assert response.status == 503
        assert response.json()["error"]["code"] == "draining"
    finally:
        server.server.batcher._draining = False


def test_graceful_shutdown_completes_in_flight_work(serve_factory):
    server = serve_factory.server(batch_window_ms=500.0, max_batch=64)
    client = serve_factory.client(server)
    results = []

    def call():
        results.append(client.post("/evaluate", {"design": "zen2"}))

    thread = threading.Thread(target=call)
    thread.start()
    deadline = time.time() + 10.0
    while server.server.batcher.depth < 1 and time.time() < deadline:
        time.sleep(0.01)
    server.stop()  # drains: the parked request must still complete
    thread.join(timeout=30.0)
    assert results and results[0].status == 200

    # The socket is gone afterwards.
    try:
        client.get("/healthz")
    except OSError:
        pass
    else:  # pragma: no cover - depends on OS socket reuse timing
        raise AssertionError("server accepted a connection after stop()")
