"""Acceptance: one request through a 2-worker shard yields ONE trace.

The tentpole contract of the distributed-observability PR: a single
``POST /evaluate`` through ``ttm-cas serve --workers 2 --trace``
produces a stitched trace containing the router's admission span, the
worker's request span (joined via the propagated traceparent), the
coalescing batch span with per-member links, and at least one engine
kernel span — spanning at least two distinct OS processes. The
router's drain also merges every worker's spans into one Chrome trace
with a named lane per process.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.distributed import stitch_trace
from repro.serve import (
    ServeClient,
    ServerConfig,
    ServerThread,
    ShardConfig,
    ShardThread,
)


@pytest.fixture(scope="module")
def traced_shard():
    thread = ShardThread(
        ShardConfig(
            workers=2,
            server=ServerConfig(batch_window_ms=25.0, trace=True),
            respawn_backoff_s=0.05,
            respawn_backoff_cap_s=0.2,
        )
    ).start()
    yield thread
    thread.stop()


@pytest.fixture()
def shard_client(traced_shard):
    return ServeClient(traced_shard.host, traced_shard.port, timeout=120.0)


def _stitched(client, trace_id, names, attempts=100):
    """Poll the router's /debug/trace until ``names`` all appear."""
    present = set()
    for _ in range(attempts):
        spans = client.get("/debug/trace").json()["spans"]
        stitched = stitch_trace(spans, trace_id)
        present = {span["name"] for span in stitched}
        if names <= present:
            return stitched
        time.sleep(0.05)
    raise AssertionError(
        f"trace {trace_id!r} never grew spans {names - present}"
    )


def test_one_request_one_stitched_cross_process_trace(shard_client):
    response = shard_client.post("/evaluate", {"design": "a11"})
    assert response.status == 200
    assert response.request_id
    assert len(response.trace_id) == 32

    stitched = _stitched(
        shard_client,
        response.trace_id,
        {
            "serve.router",
            "serve.request",
            "serve.batch",
            "engine.fused_point_eval",
        },
    )

    router = next(s for s in stitched if s["name"] == "serve.router")
    request = next(s for s in stitched if s["name"] == "serve.request")
    batch = next(s for s in stitched if s["name"] == "serve.batch")

    # The router minted the context at admission; the worker recorded
    # the router's wire span id as its parent — the cross-process seam.
    assert request["attributes"]["parent_ctx"] == (
        router["attributes"]["ctx_span"]
    )
    assert router["attributes"]["trace_id"] == response.trace_id
    assert request["attributes"]["trace_id"] == response.trace_id
    assert router["attributes"]["request_id"] == response.request_id

    # Batch membership: the request span names the batch, the batch
    # links back to the request.
    assert request["attributes"]["batch_span_id"] == batch["span_id"]
    assert any(
        link["request_id"] == response.request_id
        for link in batch["attributes"]["links"]
    )

    # The engine kernel span nests under the batch, in-process.
    engine = next(
        s for s in stitched if s["name"] == "engine.fused_point_eval"
    )
    assert engine["parent_id"] == batch["span_id"]

    # Genuinely distributed: router and worker are different processes.
    assert len({span["process_id"] for span in stitched}) >= 2


def test_debug_obs_aggregates_router_and_workers(shard_client):
    shard_client.post("/evaluate", {"design": "a11"})
    snapshot = shard_client.get("/debug/obs").json()
    assert snapshot["role"] == "router"
    assert snapshot["tracing"] is True
    assert snapshot["workers_alive"] == 2
    workers = snapshot["workers"]
    assert len(workers) == 2
    for entry in workers:
        assert entry["alive"] and entry["reachable"]
        assert entry["role"] == "worker"
    # The router keeps its own log ring and SLO ledger.
    assert any(
        record["endpoint"] == "evaluate" for record in snapshot["recent"]
    )
    assert "evaluate" in snapshot["slo"]


def test_aggregated_metrics_include_slo_and_quantile_sources(shard_client):
    shard_client.post("/evaluate", {"design": "a11"})
    text = shard_client.get("/metrics").body.decode("utf-8")
    assert "# TYPE serve_slo_ok gauge" in text
    # Every part of the merged exposition is worker-labelled; the
    # router's own SLO ledger rides under worker="router".
    assert (
        'serve_slo_ok{endpoint="evaluate",worker="router"} 1' in text
    )
    # Per-worker histogram buckets survive aggregation (the quantile
    # source for `ttm-cas obs`).
    assert "serve_request_seconds_bucket" in text


def test_coalesced_bytes_identical_to_solo_with_tracing_on(shard_client):
    body = {"design": "a11", "n_chips": 2e7}
    with ServerThread(ServerConfig(batch_window_ms=25.0)) as solo_thread:
        solo = ServeClient(
            solo_thread.host, solo_thread.port, timeout=120.0
        ).post("/evaluate", body)
    assert solo.status == 200

    with ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(
            pool.map(
                lambda _: shard_client.post("/evaluate", body), range(8)
            )
        )
    assert all(r.status == 200 for r in responses)
    assert max(r.batch_size for r in responses) > 1
    for response in responses:
        assert response.body == solo.body


def test_drain_writes_one_merged_chrome_trace(tmp_path):
    trace_path = tmp_path / "shard-trace.json"
    thread = ShardThread(
        ShardConfig(
            workers=2,
            server=ServerConfig(batch_window_ms=25.0, trace=True),
            trace_out=str(trace_path),
        )
    ).start()
    try:
        client = ServeClient(thread.host, thread.port, timeout=120.0)
        response = client.post("/evaluate", {"design": "a11"})
        assert response.status == 200
        _stitched(client, response.trace_id, {"serve.request"})
    finally:
        thread.stop()

    chrome = json.loads(trace_path.read_text())
    events = chrome["traceEvents"]
    lanes = {
        event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    assert "router" in lanes
    assert any(lane.startswith("worker ") for lane in lanes)
    complete = [event for event in events if event["ph"] == "X"]
    assert any(event["name"] == "serve.router" for event in complete)
    assert any(event["name"] == "serve.request" for event in complete)
    assert len({event["pid"] for event in complete}) >= 2
