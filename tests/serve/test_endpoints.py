"""Endpoint behavior: routes, payload shapes, and engine agreement."""

from __future__ import annotations

import json

from repro.design.library import zen2_monolithic
from repro.engine.batch_split import batch_split
from repro.serve.protocol import canonical_json


def test_healthz_reports_ok(client):
    response = client.get("/healthz")
    assert response.status == 200
    assert response.json() == {"status": "ok"}


def test_metrics_exposes_serve_family(client):
    # Drive one request so the counters have fired at least once.
    assert client.post("/evaluate", {"design": "a11"}).status == 200
    text = client.get("/metrics").body.decode("utf-8")
    for series in (
        "serve_requests_total",
        "serve_request_seconds",
        "serve_queue_depth",
        "serve_batches_total",
        "serve_batched_requests_total",
        "serve_batch_size",
        "serve_rejected_total",
    ):
        assert f"# TYPE {series}" in text
    assert 'serve_requests_total{endpoint="evaluate",status="200"}' in text


def test_evaluate_metric_subset(client):
    response = client.post(
        "/evaluate", {"design": "a11", "metrics": ["ttm"]}
    )
    assert response.status == 200
    payload = response.json()
    assert set(payload["metrics"]) == {"ttm"}
    assert payload["metrics"]["ttm"]["total_weeks"] > 0


def test_evaluate_full_metrics_structure(client):
    payload = client.post("/evaluate", {"design": "zen2"}).json()
    assert set(payload["metrics"]) == {"cas", "cost", "ttm"}
    ttm = payload["metrics"]["ttm"]
    assert (
        ttm["design_weeks"] + ttm["tapeout_weeks"] < ttm["total_weeks"]
    )
    cost = payload["metrics"]["cost"]
    assert cost["total_usd"] > cost["wafer_usd"]
    assert cost["usd_per_chip"] * 1e7 != 0


def test_evaluate_capacity_scalar_and_mapping(client):
    base = client.post("/evaluate", {"design": "a11"}).json()
    squeezed = client.post(
        "/evaluate", {"design": "a11", "capacity": 0.25}
    ).json()
    assert (
        squeezed["metrics"]["ttm"]["total_weeks"]
        > base["metrics"]["ttm"]["total_weeks"]
    )
    per_node = client.post(
        "/evaluate", {"design": "a11", "capacity": {"7nm": 0.25}}
    )
    assert per_node.status == 200


def test_evaluate_inline_design(client):
    inline = {
        "name": "tiny",
        "dies": [
            {
                "name": "die0",
                "process": "28nm",
                "blocks": [
                    {"name": "core", "transistors": 5e6, "instances": 2}
                ],
            }
        ],
    }
    response = client.post("/evaluate", {"design": inline})
    assert response.status == 200
    assert response.json()["design"] == "tiny"


def test_evaluate_library_reference(client):
    response = client.post(
        "/evaluate",
        {"design": {"library": "zen2-monolithic", "process": "7nm"}},
    )
    assert response.status == 200


def test_mc_study_shape(client):
    payload = client.post(
        "/mc", {"design": "raven", "samples": 64, "seed": 9}
    ).json()
    assert payload["samples"] == 64
    assert payload["seed"] == 9
    assert "curves" in payload["study"] or payload["study"]


def test_splits_agrees_with_direct_batch_split(client, model, cost_model):
    pairs = [("7nm", "14nm")]
    served = client.post(
        "/splits",
        {
            "design": {"library": "zen2-monolithic"},
            "pairs": [list(pair) for pair in pairs],
        },
    ).json()
    direct = batch_split(
        zen2_monolithic, pairs, model, cost_model, 1e7
    )
    best = direct.best_evaluation(0)
    assert served["best"][0]["split"] == best.split
    assert served["best"][0]["ttm_weeks"] == best.ttm_weeks
    assert served["best"][0]["cas"] == best.cas


def test_responses_are_canonical_json(client):
    response = client.post("/evaluate", {"design": "a11"})
    assert response.body == canonical_json(json.loads(response.body))


def test_unknown_route_404(client):
    response = client.get("/nope")
    assert response.status == 404
    assert response.json()["error"]["code"] == "not_found"


def test_wrong_method_405_with_allow(client):
    response = client.request("GET", "/evaluate")
    assert response.status == 405
    assert response.headers["allow"] == "POST"
    response = client.request(
        "POST", "/metrics", body=b"{}"
    )
    assert response.status == 405
    assert response.headers["allow"] == "GET"


def test_unknown_design_and_scenario_are_400(client):
    response = client.post("/evaluate", {"design": "pentium"})
    assert response.status == 400
    assert "pentium" in response.json()["error"]["message"]
    response = client.post(
        "/evaluate", {"design": "a11", "scenario": "boom"}
    )
    assert response.status == 400
    assert "boom" in response.json()["error"]["message"]


def test_unavailable_node_is_400_not_500(client):
    # 10 nm exists in the database but has zero production capacity.
    response = client.post(
        "/evaluate", {"design": {"library": "a11", "process": "10nm"}}
    )
    assert response.status == 400


def test_cli_wires_serve_subcommand():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "serve",
            "--port",
            "0",
            "--batch-window-ms",
            "5",
            "--max-batch",
            "16",
            "--backend",
            "compiled",
        ]
    )
    assert args.port == 0
    assert args.batch_window_ms == 5.0
    assert args.max_batch == 16
    assert args.backend == "compiled"
    assert args.handler.__name__ == "_cmd_serve"
