"""Unit tests for the coalescing micro-batcher (no HTTP, no engine)."""

from __future__ import annotations

import asyncio
from typing import Any, Hashable, List, Sequence, Tuple

import pytest

from repro.serve.batcher import (
    CoalescingBatcher,
    QueueFullError,
    ServerClosingError,
)


class Recorder:
    """A batch function that records every call it receives."""

    def __init__(self, fail_on: Any = None) -> None:
        self.calls: List[Tuple[Hashable, Tuple[Any, ...]]] = []
        self.fail_on = fail_on

    def __call__(self, key: Hashable, payloads: Sequence[Any]) -> List[Any]:
        self.calls.append((key, tuple(payloads)))
        if self.fail_on is not None and self.fail_on in payloads:
            raise ValueError(f"poisoned by {self.fail_on!r}")
        return [("done", payload) for payload in payloads]


def run(main):
    """Run an async test body (a zero-arg coroutine function)."""
    return asyncio.run(main())


def test_burst_coalesces_into_one_batch():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.05, max_batch=32)
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(8))
        )
        await batcher.drain()
        return results

    results = run(main)
    assert len(recorder.calls) == 1
    assert recorder.calls[0] == ("k", tuple(range(8)))
    # Every submitter got its own slice and the shared batch size.
    assert results == [(("done", i), 8) for i in range(8)]


def test_max_batch_flushes_immediately():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=10.0, max_batch=4)
        # A window of 10 s would stall forever if max_batch didn't flush.
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(4))
        )
        await batcher.drain()
        return results

    results = run(main)
    assert len(recorder.calls) == 1
    assert [size for _, size in results] == [4, 4, 4, 4]


def test_distinct_keys_never_fuse():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.02, max_batch=32)
        await asyncio.gather(
            batcher.submit("a", 1),
            batcher.submit("b", 2),
            batcher.submit("a", 3),
        )
        await batcher.drain()

    run(main)
    by_key = {key: payloads for key, payloads in recorder.calls}
    assert by_key == {"a": (1, 3), "b": (2,)}


def test_window_zero_disables_coalescing():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.0, max_batch=32)
        await asyncio.gather(*(batcher.submit("k", i) for i in range(5)))
        await batcher.drain()

    run(main)
    assert len(recorder.calls) == 5
    assert all(len(payloads) == 1 for _, payloads in recorder.calls)


def test_queue_full_raises_and_depth_recovers():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(
            recorder, window_s=5.0, max_batch=64, max_queue=3
        )
        futures = [batcher.enqueue("k", i) for i in range(3)]
        with pytest.raises(QueueFullError):
            batcher.enqueue("k", 99)
        assert batcher.depth == 3
        await batcher.drain()
        assert batcher.depth == 0
        return await asyncio.gather(*futures)

    results = run(main)
    assert [payload for (_, payload), _ in results] == [0, 1, 2]


def test_draining_rejects_new_work():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.01)
        await batcher.drain()
        with pytest.raises(ServerClosingError):
            batcher.enqueue("k", 1)

    run(main)


def test_drain_completes_pending_groups():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=60.0, max_batch=64)
        futures = [batcher.enqueue("k", i) for i in range(3)]
        # The window is a minute out; drain must flush it now.
        await batcher.drain()
        return await asyncio.gather(*futures)

    results = run(main)
    assert len(recorder.calls) == 1
    assert [size for _, size in results] == [3, 3, 3]


def test_poisoned_batch_retries_solo_and_isolates_failure():
    recorder = Recorder(fail_on=2)

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.05, max_batch=32)
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(4)),
            return_exceptions=True,
        )
        await batcher.drain()
        return results

    results = run(main)
    # One fused attempt + one solo retry per member.
    assert len(recorder.calls) == 1 + 4
    assert recorder.calls[0][1] == (0, 1, 2, 3)
    # The poisoned member fails alone; its neighbors all succeed.
    assert isinstance(results[2], ValueError)
    for i in (0, 1, 3):
        (tag, payload), _size = results[i]
        assert (tag, payload) == ("done", i)


def test_single_payload_failure_propagates_without_retry():
    recorder = Recorder(fail_on=7)

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.0)
        with pytest.raises(ValueError):
            await batcher.submit("k", 7)
        await batcher.drain()

    run(main)
    assert len(recorder.calls) == 1


def test_abandoned_future_skips_delivery():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.05, max_batch=32)
        abandoned = batcher.enqueue("k", 0)
        kept = batcher.enqueue("k", 1)
        abandoned.cancel()  # the server's deadline path
        result = await kept
        await batcher.drain()
        return result

    (tag, payload), size = run(main)
    assert (tag, payload) == ("done", 1)
    assert size == 2  # the abandoned request still rode in the batch


def test_stats_track_batches_and_requests():
    recorder = Recorder()

    async def main():
        batcher = CoalescingBatcher(recorder, window_s=0.05, max_batch=32)
        await asyncio.gather(*(batcher.submit("k", i) for i in range(6)))
        await batcher.submit("other", 1)
        await batcher.drain()
        return batcher.stats()

    stats = run(main)
    assert stats == {"batches": 2, "batched_requests": 7}


def test_invalid_parameters_rejected():
    recorder = Recorder()
    with pytest.raises(ValueError):
        CoalescingBatcher(recorder, window_s=-1.0)
    with pytest.raises(ValueError):
        CoalescingBatcher(recorder, max_batch=0)
    with pytest.raises(ValueError):
        CoalescingBatcher(recorder, max_queue=0)
