"""Tests for the fabrication phase (Eqs. 3-5)."""

import pytest

from repro.design.chip import ChipDesign
from repro.design.library.generic import monolithic_design
from repro.design.library.zen2 import compute_die, io_die
from repro.errors import InvalidParameterError, NodeUnavailableError
from repro.market.conditions import MarketConditions
from repro.market.foundry import Foundry
from repro.technology.wafer import wafers_required
from repro.ttm.fabrication import (
    die_wafer_demand,
    fabrication_weeks,
    node_fabrication,
    wafer_demand_by_node,
)


@pytest.fixture(scope="module")
def design_7nm():
    return monolithic_design("single", "7nm", ntt=4.3e9, nut=5e8)


class TestWaferDemand:
    def test_matches_wafers_required(self, foundry, design_7nm, db):
        die = design_7nm.dies[0]
        node = db["7nm"]
        expected = wafers_required(
            1e7, die.area_on(node), die.yield_on(node)
        )
        assert die_wafer_demand(die, node, 1e7) == pytest.approx(expected)

    def test_counts_dies_per_package(self, foundry, db):
        design = ChipDesign(name="zen", dies=(compute_die("7nm"),))
        demand = wafer_demand_by_node(design, foundry, 1e6)
        single = ChipDesign(
            name="one", dies=(compute_die("7nm", count=1),)
        )
        demand_single = wafer_demand_by_node(single, foundry, 1e6)
        assert demand["7nm"] == pytest.approx(2 * demand_single["7nm"])

    def test_same_node_dies_share_demand(self, foundry):
        design = ChipDesign(
            name="all7", dies=(compute_die("7nm"), io_die("7nm"))
        )
        demand = wafer_demand_by_node(design, foundry, 1e6)
        assert set(demand) == {"7nm"}
        individual = sum(
            die_wafer_demand(die, foundry.node("7nm"), 1e6)
            for die in design.dies
        )
        assert demand["7nm"] == pytest.approx(individual)

    def test_negative_chips_rejected(self, foundry, design_7nm, db):
        with pytest.raises(InvalidParameterError):
            die_wafer_demand(design_7nm.dies[0], db["7nm"], -1.0)


class TestNodeFabrication:
    def test_eq5_production_time(self, foundry, design_7nm):
        stages = node_fabrication(design_7nm, foundry, 1e7)
        assert len(stages) == 1
        stage = stages[0]
        assert stage.production_weeks == pytest.approx(
            stage.wafers / foundry.wafer_rate_per_week("7nm")
        )
        assert stage.latency_weeks == 18.0
        assert stage.queue_weeks == 0.0

    def test_queue_included(self, db, design_7nm):
        queued = Foundry(
            technology=db,
            conditions=MarketConditions(queue_weeks={"7nm": 2.0}),
        )
        stages = node_fabrication(design_7nm, queued, 1e7)
        assert stages[0].queue_weeks == pytest.approx(2.0)
        assert stages[0].total_weeks == pytest.approx(
            2.0 + stages[0].production_weeks + 18.0
        )

    def test_eq3_takes_the_slowest_node(self, foundry):
        mixed = ChipDesign(
            name="mixed", dies=(compute_die("7nm"), io_die("14nm"))
        )
        stages = {s.process: s for s in node_fabrication(mixed, foundry, 1e7)}
        assert fabrication_weeks(mixed, foundry, 1e7) == pytest.approx(
            max(stage.total_weeks for stage in stages.values())
        )
        # 7 nm is the slower line for this design (longer latency).
        assert stages["7nm"].total_weeks > stages["14nm"].total_weeks

    def test_out_of_production_node_rejected(self, foundry):
        design = monolithic_design("dead", "20nm", ntt=1e9, nut=1e8)
        with pytest.raises(NodeUnavailableError):
            fabrication_weeks(design, foundry, 1e6)

    def test_capacity_drop_slows_production_only(self, foundry, design_7nm):
        full = node_fabrication(design_7nm, foundry, 1e7)[0]
        half = node_fabrication(
            design_7nm, foundry.at_capacity(0.5), 1e7
        )[0]
        assert half.production_weeks == pytest.approx(
            2 * full.production_weeks
        )
        assert half.latency_weeks == full.latency_weeks
        assert half.wafers == pytest.approx(full.wafers)
