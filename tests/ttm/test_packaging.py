"""Tests for the packaging phase (Eq. 7)."""

import pytest

from repro.design.chip import ChipDesign
from repro.design.library.generic import monolithic_design
from repro.design.library.zen2 import interposer_die, zen2
from repro.errors import InvalidParameterError
from repro.ttm.packaging import (
    packaging_breakdown,
    packaging_terms,
    packaging_weeks,
)


@pytest.fixture(scope="module")
def design():
    return monolithic_design("chip", "28nm", ntt=4.3e9, nut=5e8)


class TestEq7Terms:
    def test_latency_is_the_constant_term(self, db, design):
        breakdown = packaging_breakdown(design, db, 1e6)
        assert breakdown.latency_weeks == 6.0

    def test_explicit_term_formulas(self, db, design):
        n = 1e6
        die = design.dies[0]
        node = db["28nm"]
        breakdown = packaging_breakdown(design, db, n)
        expected_testing = (
            n / die.yield_on(node) * die.ntt * node.testing_effort
        )
        expected_assembly = n * die.area_on(node) * node.packaging_effort
        assert breakdown.testing_weeks == pytest.approx(expected_testing)
        assert breakdown.assembly_weeks == pytest.approx(expected_assembly)

    def test_total_is_sum_of_terms(self, db, design):
        latency, testing, assembly = packaging_terms(design, db, 1e6)
        assert packaging_weeks(design, db, 1e6) == pytest.approx(
            latency + testing + assembly
        )

    def test_scales_linearly_with_volume(self, db, design):
        one = packaging_breakdown(design, db, 1e6)
        ten = packaging_breakdown(design, db, 1e7)
        assert ten.testing_weeks == pytest.approx(10 * one.testing_weeks)
        assert ten.assembly_weeks == pytest.approx(10 * one.assembly_weeks)
        assert ten.latency_weeks == one.latency_weeks

    def test_yield_loss_inflates_testing(self, db):
        """More dies flow through the testers than chips ship (Sec. 3.4)."""
        big = monolithic_design("big", "28nm", ntt=8e9, nut=1e8)
        node = db["28nm"]
        die = big.dies[0]
        breakdown = packaging_breakdown(big, db, 1e6)
        without_loss = 1e6 * die.ntt * node.testing_effort
        assert breakdown.testing_weeks > without_loss


class TestChiplets:
    def test_multi_die_sums_per_die(self, db):
        design = zen2()
        breakdown = packaging_breakdown(design, db, 1e6)
        manual_testing = 0.0
        manual_assembly = 0.0
        for die in design.dies:
            node = db[die.process]
            manual_testing += (
                1e6 * die.count / die.yield_on(node) * die.ntt * node.testing_effort
            )
            manual_assembly += (
                1e6 * die.count * die.area_on(node) * node.packaging_effort
            )
        assert breakdown.testing_weeks == pytest.approx(manual_testing)
        assert breakdown.assembly_weeks == pytest.approx(manual_assembly)

    def test_passive_interposer_skips_testing_but_pays_assembly(self, db):
        base = zen2()
        with_interposer = base.with_die(interposer_die(273.0))
        plain = packaging_breakdown(base, db, 1e6)
        loaded = packaging_breakdown(with_interposer, db, 1e6)
        assert loaded.testing_weeks == pytest.approx(plain.testing_weeks)
        assert loaded.assembly_weeks > plain.assembly_weeks

    def test_more_dies_per_package_cost_more_assembly(self, db):
        one_die = ChipDesign(name="one", dies=(zen2().die("compute").with_count(1),))
        two_die = ChipDesign(name="two", dies=(zen2().die("compute"),))
        one = packaging_breakdown(one_die, db, 1e6)
        two = packaging_breakdown(two_die, db, 1e6)
        assert two.assembly_weeks == pytest.approx(2 * one.assembly_weeks)


class TestValidation:
    def test_negative_volume_rejected(self, db, design):
        with pytest.raises(InvalidParameterError):
            packaging_breakdown(design, db, -1.0)

    def test_negative_latency_rejected(self, db, design):
        with pytest.raises(InvalidParameterError):
            packaging_breakdown(design, db, 1e6, tap_latency_weeks=-1.0)

    def test_custom_latency_honored(self, db, design):
        assert packaging_breakdown(
            design, db, 1e6, tap_latency_weeks=2.0
        ).latency_weeks == 2.0
