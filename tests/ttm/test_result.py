"""Tests for the TTM result types."""

import pytest

from repro.ttm.result import NodeSchedule, TTMResult


def _schedule(process="7nm", tapeout=2.0, queue=1.0, production=3.0,
              latency=18.0, wafers=1000.0):
    return NodeSchedule(
        process=process,
        tapeout_weeks=tapeout,
        queue_weeks=queue,
        production_weeks=production,
        latency_weeks=latency,
        wafers=wafers,
        ready_weeks=tapeout + queue + production + latency,
    )


class TestNodeSchedule:
    def test_fabrication_weeks(self):
        schedule = _schedule()
        assert schedule.fabrication_weeks == pytest.approx(22.0)


class TestTTMResult:
    def _result(self):
        nodes = {
            "7nm": _schedule("7nm", production=5.0),
            "14nm": _schedule("14nm", production=1.0, latency=15.0),
        }
        return TTMResult(
            design="test",
            n_chips=1e6,
            schedule="pipelined",
            design_weeks=1.0,
            tapeout_weeks=2.0,
            fabrication_weeks=24.0,
            packaging_weeks=8.0,
            nodes=nodes,
        )

    def test_total_weeks(self):
        assert self._result().total_weeks == pytest.approx(35.0)

    def test_supply_dependent_weeks_excludes_upstream(self):
        assert self._result().supply_dependent_weeks == pytest.approx(32.0)

    def test_total_wafers(self):
        assert self._result().total_wafers == pytest.approx(2000.0)

    def test_bottleneck_process(self):
        assert self._result().bottleneck_process == "7nm"

    def test_phase_breakdown_order(self):
        phases = [name for name, _ in self._result().phase_breakdown()]
        assert phases == ["design", "tapeout", "fabrication", "packaging"]

    def test_as_dict_contains_headline_numbers(self):
        flat = self._result().as_dict()
        assert flat["total_weeks"] == pytest.approx(35.0)
        assert flat["total_wafers"] == pytest.approx(2000.0)
