"""Tests for the top-level TTM model (Eq. 1) and its paper findings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.design.library.a11 import a11
from repro.design.library.generic import monolithic_design
from repro.design.library.zen2 import zen2
from repro.errors import InvalidParameterError
from repro.ttm.model import TTMModel


class TestStructure:
    def test_total_is_sum_of_phases(self, model):
        result = model.time_to_market(a11("28nm"), 1e7)
        assert result.total_weeks == pytest.approx(
            result.design_weeks
            + result.tapeout_weeks
            + result.fabrication_weeks
            + result.packaging_weeks
        )

    def test_single_die_pipelined_equals_sequential(self, foundry):
        design = monolithic_design("chip", "7nm", ntt=4e9, nut=5e8)
        pipelined = TTMModel(foundry=foundry, schedule="pipelined")
        sequential = TTMModel(foundry=foundry, schedule="sequential")
        assert pipelined.total_weeks(design, 1e7) == pytest.approx(
            sequential.total_weeks(design, 1e7)
        )

    def test_pipelined_never_slower_than_sequential(self, foundry):
        design = zen2()
        pipelined = TTMModel(foundry=foundry, schedule="pipelined")
        sequential = TTMModel(foundry=foundry, schedule="sequential")
        assert pipelined.total_weeks(design, 1e7) <= sequential.total_weeks(
            design, 1e7
        )

    def test_design_weeks_passed_through(self, model):
        design = monolithic_design("chip", "7nm", ntt=4e9, nut=5e8)
        with_design = design.__class__(
            name="chip", dies=design.dies, design_weeks=10.0
        )
        base = model.total_weeks(design, 1e6)
        assert model.total_weeks(with_design, 1e6) == pytest.approx(base + 10.0)

    def test_per_node_schedules_exposed(self, model):
        result = model.time_to_market(zen2(), 1e7)
        assert set(result.nodes) == {"7nm", "14nm"}
        assert result.bottleneck_process == "7nm"

    def test_wafer_demand_matches_result(self, model):
        design = a11("28nm")
        result = model.time_to_market(design, 1e7)
        demand = model.wafer_demand(design, 1e7)
        assert result.total_wafers == pytest.approx(sum(demand.values()))


class TestPaperFindings:
    """Orderings the paper reports for the A11 study (Sec. 6.2)."""

    @pytest.fixture(scope="class")
    def ttm_10m(self, model):
        nodes = (
            "250nm", "180nm", "130nm", "90nm", "65nm",
            "40nm", "28nm", "14nm", "7nm", "5nm",
        )
        return {p: model.total_weeks(a11(p), 10e6) for p in nodes}

    def test_28nm_is_fastest_for_10m_chips(self, ttm_10m):
        assert min(ttm_10m, key=ttm_10m.get) == "28nm"

    def test_250nm_is_catastrophic(self, ttm_10m):
        assert ttm_10m["250nm"] > 2 * ttm_10m["180nm"]

    def test_180nm_beats_130_and_90(self, ttm_10m):
        """Higher wafer rate wins despite lower density (Fig. 10)."""
        assert ttm_10m["180nm"] < ttm_10m["130nm"] < ttm_10m["90nm"]

    def test_advanced_nodes_get_slower_toward_5nm(self, ttm_10m):
        assert ttm_10m["14nm"] < ttm_10m["7nm"] < ttm_10m["5nm"]

    def test_headline_band(self, ttm_10m):
        """Re-release on legacy vs advanced: paper quotes +73%..+116%."""
        best = min(ttm_10m.values())
        gain_7nm = ttm_10m["7nm"] / best - 1.0
        gain_5nm = ttm_10m["5nm"] / best - 1.0
        assert 0.4 < gain_7nm < 1.0
        assert 0.8 < gain_5nm < 1.5
        assert gain_5nm > gain_7nm

    def test_small_runs_favor_legacy(self, model):
        """Fig. 10's 1K row: legacy nodes win tiny productions."""
        legacy = model.total_weeks(a11("180nm"), 1e3)
        advanced = model.total_weeks(a11("5nm"), 1e3)
        assert legacy < advanced

    def test_mixed_zen2_faster_than_all_7nm(self, model):
        """Sec. 6.5: the original Zen 2 beats the all-7nm chiplet design."""
        mixed = model.total_weeks(zen2(), 50e6)
        all_7nm = model.total_weeks(zen2("7nm", "7nm"), 50e6)
        assert mixed < all_7nm


class TestBehaviour:
    def test_ttm_monotone_in_volume(self, model):
        design = a11("28nm")
        volumes = [1e3, 1e5, 1e7, 1e8]
        results = [model.total_weeks(design, n) for n in volumes]
        assert results == sorted(results)

    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(min_value=0.05, max_value=1.0))
    def test_capacity_loss_never_speeds_things_up(self, model, fraction):
        design = a11("28nm")
        full = model.total_weeks(design, 1e7)
        reduced = model.at_capacity(fraction).total_weeks(design, 1e7)
        assert reduced >= full - 1e-9

    def test_invalid_volume_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            model.total_weeks(a11("28nm"), 0.0)

    def test_invalid_schedule_rejected(self, foundry):
        with pytest.raises(InvalidParameterError):
            TTMModel(foundry=foundry, schedule="magic")

    def test_invalid_team_rejected(self, foundry):
        with pytest.raises(InvalidParameterError):
            TTMModel(foundry=foundry, engineers=0)

    def test_block_parallel_option_reduces_tapeout(self, foundry):
        serial = TTMModel(foundry=foundry)
        parallel = TTMModel(foundry=foundry, block_parallel=True)
        design = a11("5nm")
        assert (
            parallel.time_to_market(design, 1e6).tapeout_weeks
            < serial.time_to_market(design, 1e6).tapeout_weeks
        )

    def test_edge_corrected_needs_more_time(self, foundry):
        plain = TTMModel(foundry=foundry)
        corrected = TTMModel(foundry=foundry, edge_corrected=True)
        design = a11("28nm")
        assert corrected.total_weeks(design, 1e7) > plain.total_weeks(
            design, 1e7
        )
