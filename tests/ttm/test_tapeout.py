"""Tests for the tapeout phase model (Eq. 2)."""

import pytest

from repro.design.block import Block, ip_block
from repro.design.chip import ChipDesign
from repro.design.die import Die
from repro.design.library.zen2 import compute_die, io_die
from repro.errors import InvalidParameterError
from repro.ttm.tapeout import (
    design_tapeout_engineer_weeks,
    die_tapeout_calendar_weeks,
    die_tapeout_engineer_weeks,
    node_tapeout_calendar_weeks,
    sequential_tapeout_calendar_weeks,
)


class TestTable4Anchors:
    """The published Zen-2 tapeout times are exact calibration anchors."""

    @pytest.mark.parametrize(
        "factory,process,expected",
        [
            (compute_die, "14nm", 3.6),
            (compute_die, "7nm", 10.4),
            (io_die, "14nm", 4.0),
            (io_die, "7nm", 11.5),
        ],
    )
    def test_paper_values(self, db, factory, process, expected):
        die = factory(process)
        weeks = die_tapeout_calendar_weeks(die, db[process], engineers=100)
        assert weeks == pytest.approx(expected, abs=0.1)


class TestDieTapeout:
    def test_effort_is_nut_times_coefficient(self, db):
        die = Die(
            name="x",
            process="7nm",
            blocks=(Block(name="a", transistors=1e8),),
        )
        expected = 1e8 * db["7nm"].tapeout_effort
        assert die_tapeout_engineer_weeks(die, db["7nm"]) == pytest.approx(expected)

    def test_verified_ip_is_free(self, db):
        die = Die(name="x", process="7nm", blocks=(ip_block("sram", 1e9),))
        assert die_tapeout_calendar_weeks(die, db["7nm"], 100) == 0.0

    def test_passive_die_is_free(self, db):
        die = Die(name="interposer", process="65nm", area_mm2=300.0)
        assert die_tapeout_calendar_weeks(die, db["65nm"], 100) == 0.0

    def test_serial_sums_blocks(self, db):
        die = Die(
            name="x",
            process="7nm",
            blocks=(
                Block(name="a", transistors=1e8),
                Block(name="b", transistors=2e8),
            ),
        )
        expected = 3e8 * db["7nm"].tapeout_effort / 100
        assert die_tapeout_calendar_weeks(die, db["7nm"], 100) == pytest.approx(
            expected
        )

    def test_block_parallel_takes_slowest_plus_top(self, db):
        die = Die(
            name="x",
            process="7nm",
            blocks=(
                Block(name="a", transistors=1e8),
                Block(name="b", transistors=2e8),
            ),
            top_level_transistors=5e7,
        )
        expected = (2e8 + 5e7) * db["7nm"].tapeout_effort / 100
        weeks = die_tapeout_calendar_weeks(
            die, db["7nm"], 100, block_parallel=True
        )
        assert weeks == pytest.approx(expected)

    def test_parallel_never_slower_than_serial(self, db):
        die = Die(
            name="x",
            process="7nm",
            blocks=(
                Block(name="a", transistors=1e8),
                Block(name="b", transistors=2e8),
            ),
        )
        serial = die_tapeout_calendar_weeks(die, db["7nm"], 100)
        parallel = die_tapeout_calendar_weeks(
            die, db["7nm"], 100, block_parallel=True
        )
        assert parallel <= serial

    def test_bigger_team_is_faster(self, db):
        die = Die(
            name="x", process="7nm", blocks=(Block(name="a", transistors=1e8),)
        )
        assert die_tapeout_calendar_weeks(
            die, db["7nm"], 200
        ) == pytest.approx(die_tapeout_calendar_weeks(die, db["7nm"], 100) / 2)

    def test_invalid_team_size(self, db):
        die = Die(
            name="x", process="7nm", blocks=(Block(name="a", transistors=1e8),)
        )
        with pytest.raises(InvalidParameterError):
            die_tapeout_calendar_weeks(die, db["7nm"], 0)

    def test_wrong_node_rejected(self, db):
        die = Die(
            name="x", process="7nm", blocks=(Block(name="a", transistors=1e8),)
        )
        with pytest.raises(InvalidParameterError):
            die_tapeout_engineer_weeks(die, db["5nm"])


class TestDesignTapeout:
    def _mixed_design(self):
        return ChipDesign(
            name="mixed", dies=(compute_die("7nm"), io_die("14nm"))
        )

    def test_eq2_sums_across_nodes(self, db):
        design = self._mixed_design()
        expected = (
            4.75e8 * db["7nm"].tapeout_effort
            + 5.23e8 * db["14nm"].tapeout_effort
        )
        assert design_tapeout_engineer_weeks(design, db) == pytest.approx(expected)

    def test_per_node_calendar_is_slowest_die(self, db):
        design = ChipDesign(
            name="two-on-7nm", dies=(compute_die("7nm"), io_die("7nm"))
        )
        per_node = node_tapeout_calendar_weeks(design, db, 100)
        # The I/O die (523 M NUT) is slower than the compute die (475 M).
        assert per_node["7nm"] == pytest.approx(11.5, abs=0.1)

    def test_sequential_serializes_everything(self, db):
        design = self._mixed_design()
        total = sequential_tapeout_calendar_weeks(design, db, 100)
        per_node = node_tapeout_calendar_weeks(design, db, 100)
        assert total == pytest.approx(sum(per_node.values()))
