"""Tests for the experiment registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import registry


class TestRegistry:
    PAPER_ARTIFACTS = {
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "table3", "table4", "fig13", "fig14",
    }
    EXTENSIONS = {
        "interposer",
        "profit",
        "ramp",
        "codesign",
        "accel-scaling",
        "robustness",
        "mc-disruption",
    }

    def test_every_paper_artifact_registered(self):
        assert set(registry.experiment_keys()) == (
            self.PAPER_ARTIFACTS | self.EXTENSIONS
        )

    def test_extensions_labelled(self):
        for key in self.EXTENSIONS:
            assert "[extension]" in registry.get(key).title

    def test_lookup(self):
        experiment = registry.get("table3")
        assert experiment.key == "table3"
        assert callable(experiment.runner)

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            registry.get("fig99")

    def test_runners_produce_table_method(self):
        """Quick experiments run end-to-end through the registry."""
        for key in ("fig3", "table3", "table4"):
            result = registry.get(key).runner()
            assert isinstance(result.table(), str)


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_nodes_command(self, capsys):
        assert main(["nodes"]) == 0
        out = capsys.readouterr().out
        assert "250nm" in out and "5nm" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lint_command_clean_database(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "evaluation.md"
        assert main(["report", "-o", str(target)]) == 0
        text = target.read_text()
        assert "# ttm-cas evaluation report" in text
        assert "## table4" in text
        assert "## fig14" in text
