"""Tests for the cache study's capacity-share assumption (Figs. 4-6)."""

import pytest

from repro.experiments import fig04_cache_scatter

SIZES = (1, 32, 256, 1024)


class TestCapacityShare:
    def test_full_line_allocation_flattens_the_figure(self, model):
        """With the whole 14 nm line at the customer's disposal, the
        wafer throughput of a few-mm^2 die never binds and the TTM
        spread collapses — the documented reason the study models a 5%
        allocation."""
        shared = fig04_cache_scatter.run(model, sizes_kb=SIZES)
        whole_line = fig04_cache_scatter.run(
            model, sizes_kb=SIZES, capacity_share=1.0
        )

        def spread(result):
            ttms = [p.ttm_weeks for p in result.points]
            return max(ttms) - min(ttms)

        assert spread(shared) > 3 * spread(whole_line)

    def test_share_does_not_change_ipc(self, model):
        shared = fig04_cache_scatter.run(model, sizes_kb=SIZES)
        whole_line = fig04_cache_scatter.run(
            model, sizes_kb=SIZES, capacity_share=1.0
        )
        for a, b in zip(shared.points, whole_line.points):
            assert a.ipc == b.ipc

    def test_smaller_share_longer_ttm(self, model):
        generous = fig04_cache_scatter.run(
            model, sizes_kb=(1024,), capacity_share=0.2
        )
        scarce = fig04_cache_scatter.run(
            model, sizes_kb=(1024,), capacity_share=0.02
        )
        assert (
            scarce.point(1024, 1024).ttm_weeks
            > generous.point(1024, 1024).ttm_weeks
        )


class TestPipelinedSchedules:
    def test_io_die_ready_before_compute(self, model):
        """The Zen-2 narrative: the 12 nm-class I/O die finishes its
        tapeout+fab pipeline well before the 7 nm compute dies."""
        from repro.design.library.zen2 import zen2

        result = model.time_to_market(zen2(), 25e6)
        assert result.nodes["14nm"].ready_weeks < result.nodes["7nm"].ready_weeks
        assert result.bottleneck_process == "7nm"

    def test_node_schedule_components_consistent(self, model):
        from repro.design.library.zen2 import zen2

        result = model.time_to_market(zen2(), 25e6)
        for schedule in result.nodes.values():
            assert schedule.ready_weeks == pytest.approx(
                schedule.tapeout_weeks + schedule.fabrication_weeks
            )
