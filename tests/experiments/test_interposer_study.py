"""Tests for the interposer-node exploration extension."""

import pytest

from repro.experiments import interposer_study

NODES = ("250nm", "65nm", "40nm")


@pytest.fixture(scope="module")
def result(model, cost_model):
    return interposer_study.run(
        model, cost_model, interposer_nodes=NODES
    )


class TestInterposerStudy:
    def test_covers_requested_nodes(self, result):
        assert tuple(o.process for o in result.options) == NODES

    def test_40nm_beats_65nm_under_crunch(self, result):
        """The paper's what-if: the higher-rate 40 nm interposer ships
        sooner when capacity is scarce."""
        assert (
            result.option("40nm").crunch_ttm_weeks
            < result.option("65nm").crunch_ttm_weeks
        )

    def test_40nm_more_agile_under_crunch(self, result):
        """Paper: +126% max CAS moving the interposer 65 nm -> 40 nm."""
        gain = (
            result.option("40nm").crunch_cas
            / result.option("65nm").crunch_cas
        )
        assert gain > 1.5

    def test_40nm_costs_more(self, result):
        """The faster interposer node bills pricier wafers."""
        assert result.option("40nm").cost_usd > result.option("65nm").cost_usd

    def test_250nm_interposer_is_a_disaster(self, result):
        """41 kW/month cannot feed 100 M interposers."""
        slowest = max(result.options, key=lambda o: o.crunch_ttm_weeks)
        assert slowest.process == "250nm"
        assert slowest.ttm_weeks > result.option("65nm").ttm_weeks

    def test_crunch_always_slower_than_nominal(self, result):
        for option in result.options:
            assert option.crunch_ttm_weeks >= option.ttm_weeks

    def test_best_under_crunch(self, result):
        best = result.best_under_crunch()
        assert best.crunch_ttm_weeks == min(
            o.crunch_ttm_weeks for o in result.options
        )

    def test_unknown_node(self, result):
        with pytest.raises(KeyError):
            result.option("3nm")

    def test_table_renders(self, result):
        assert "interposer node" in result.table()
