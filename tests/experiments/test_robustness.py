"""Tests for the calibration-robustness extension."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments import robustness


@pytest.fixture(scope="module")
def result(model):
    return robustness.run(model, samples=24)


class TestRobustness:
    def test_all_findings_tracked(self, result):
        assert set(result.survival) == {
            "A11 optimum stays in the mature pocket",
            "180nm beats 130nm and 90nm",
            "mixed Zen 2 beats all-7nm chiplet",
            "A11 more agile at 7nm than 5nm",
        }

    def test_fractions_are_probabilities(self, result):
        for fraction in result.survival.values():
            assert 0.0 <= fraction <= 1.0

    def test_structural_findings_are_robust(self, result):
        """The pocket, the mixed-process win and the CAS ordering are
        driven by order-of-magnitude structure, not by fine calibration:
        they must survive the overwhelming majority of perturbations."""
        assert result.survival["A11 optimum stays in the mature pocket"] > 0.9
        assert result.survival["mixed Zen 2 beats all-7nm chiplet"] > 0.8
        assert result.survival["A11 more agile at 7nm than 5nm"] > 0.9

    def test_legacy_ordering_is_the_fragile_one(self, result):
        """180 nm's few-week margin over 130/90 nm is the finding most
        exposed to calibration error — and still holds in most worlds."""
        fragile = result.survival["180nm beats 130nm and 90nm"]
        assert fragile == min(result.survival.values())
        assert fragile > 0.3

    def test_reproducible_by_seed(self, model):
        first = robustness.run(model, samples=8, seed=7)
        second = robustness.run(model, samples=8, seed=7)
        assert first.survival == second.survival

    def test_zero_noise_preserves_everything(self, model):
        clean = robustness.run(model, samples=4, noise=1e-6)
        assert all(value == 1.0 for value in clean.survival.values())

    def test_validation(self, model):
        with pytest.raises(InvalidParameterError):
            robustness.run(model, samples=0)
        with pytest.raises(InvalidParameterError):
            robustness.run(model, noise=1.5)

    def test_table_renders(self, result):
        assert "survives" in result.table()
