"""Tests for the profit-study extension experiment."""

import pytest

from repro.experiments import profit_study_a11


@pytest.fixture(scope="module")
def result(model, cost_model):
    return profit_study_a11.run(model, cost_model)


class TestProfitExperiment:
    def test_race_profit_optimum_is_ttm_optimum(self, result):
        """In a smartphone-class race, time beats wafer savings."""
        assert (
            result.race.most_profitable.process
            == result.race.fastest.process
            == "28nm"
        )

    def test_race_optimum_is_not_the_cheapest(self, result):
        assert (
            result.race.most_profitable.process
            != result.race.cheapest.process
        )

    def test_embedded_optimum_drifts_toward_cheap(self, result):
        """With a long window the optimum leaves the TTM-optimal node."""
        embedded_best = result.embedded.most_profitable
        race_best = result.race.most_profitable
        assert embedded_best.cost_usd <= race_best.cost_usd

    def test_all_race_profits_positive(self, result):
        for point in result.race.points:
            assert point.profit_usd > 0.0

    def test_5nm_race_revenue_suffers_most(self, result):
        revenues = {p.process: p.revenue_usd for p in result.race.points}
        assert revenues["5nm"] == min(revenues.values())

    def test_table_renders(self, result):
        text = result.table()
        assert "profit-optimal" in text
        assert "race detail" in text
