"""End-to-end gate: every registered experiment runs with defaults.

This is the test-suite twin of ``ttm-cas run all``: each registry entry
must execute with its default parameters and produce a non-trivial
printable table. Individual experiment tests check the science; this one
catches wiring regressions (a renamed kwarg, a registry entry pointing at
a stale runner) across the whole harness at once.
"""

import pytest

from repro.experiments import registry

# The two heaviest artifacts get dedicated benchmarks; everything else
# must stay cheap enough to run here with full defaults.
HEAVY = {"fig8", "fig14"}


@pytest.mark.parametrize(
    "key", [k for k in registry.experiment_keys() if k not in HEAVY]
)
def test_experiment_runs_with_defaults(key):
    experiment = registry.get(key)
    result = experiment.runner()
    table = result.table()
    assert isinstance(table, str)
    assert len(table.splitlines()) >= 2


def test_heavy_experiments_registered():
    for key in HEAVY:
        assert key in registry.experiment_keys()
