"""Figs. 4 and 5 reproduction checks (cache design space)."""

import pytest

from repro.experiments import fig04_cache_scatter, fig05_ipc_tradeoffs

SIZES = (1, 4, 16, 32, 64, 128, 512, 1024)


@pytest.fixture(scope="module")
def fig4(model):
    return fig04_cache_scatter.run(model, sizes_kb=SIZES)


@pytest.fixture(scope="module")
def fig5(model, cost_model):
    return fig05_ipc_tradeoffs.run(model, cost_model, sizes_kb=SIZES)


class TestFig04:
    def test_full_grid(self, fig4):
        assert len(fig4.points) == len(SIZES) ** 2

    def test_ipc_range_matches_paper(self, fig4):
        ipcs = [p.ipc for p in fig4.points]
        assert 0.08 < min(ipcs) < 0.13
        assert 0.22 < max(ipcs) < 0.30

    def test_bigger_caches_higher_ipc(self, fig4):
        assert fig4.point(64, 64).ipc > fig4.point(1, 1).ipc

    def test_bigger_caches_longer_ttm(self, fig4):
        """Growing die area pushes TTM up (the scatter's x-y tension)."""
        assert fig4.point(1024, 1024).ttm_weeks > fig4.point(1, 1).ttm_weeks

    def test_doubling_small_caches_near_free(self, fig4):
        """1->2x at the small end costs little TTM but buys real IPC."""
        small = fig4.point(1, 1)
        doubled = fig4.point(4, 4)
        assert doubled.ipc > small.ipc * 1.2
        assert doubled.ttm_weeks < small.ttm_weeks * 1.02

    def test_point_lookup_error(self, fig4):
        with pytest.raises(KeyError):
            fig4.point(3, 3)

    def test_table_renders(self, fig4):
        assert "IPC/TTM" in fig4.table()


class TestFig05:
    def test_optima_differ(self, fig5):
        """The paper's core point: IPC/TTM and IPC/cost peak at
        different cache configurations."""
        ttm_opt = fig5.best_ipc_per_ttm
        cost_opt = fig5.best_ipc_per_cost
        assert (ttm_opt.icache_kb, ttm_opt.dcache_kb) != (
            cost_opt.icache_kb,
            cost_opt.dcache_kb,
        )

    def test_cost_optimum_prefers_bigger_caches(self, fig5):
        """IPC/cost tolerates more area than IPC/TTM (64/128 vs 32/32
        in the paper)."""
        ttm_opt = fig5.best_ipc_per_ttm
        cost_opt = fig5.best_ipc_per_cost
        assert (
            cost_opt.icache_kb + cost_opt.dcache_kb
            > ttm_opt.icache_kb + ttm_opt.dcache_kb
        )

    def test_cross_penalty_asymmetry(self, fig5):
        """Paper: TTM-optimum loses ~4% IPC/cost; cost-optimum loses
        ~18% IPC/TTM — optimizing for TTM is the safer pick."""
        cost_loss_at_ttm_opt, ttm_loss_at_cost_opt = fig5.cross_penalties()
        assert ttm_loss_at_cost_opt > cost_loss_at_ttm_opt
        assert cost_loss_at_ttm_opt < 0.15
        assert 0.002 < ttm_loss_at_cost_opt < 0.40

    def test_normalization(self, fig5):
        assert max(p.ipc_per_ttm_norm for p in fig5.points) == pytest.approx(1.0)
        assert max(p.ipc_per_cost_norm for p in fig5.points) == pytest.approx(1.0)

    def test_table_renders(self, fig5):
        text = fig5.table()
        assert "max IPC/TTM" in text
        assert "max IPC/cost" in text
