"""Fig. 3 reproduction checks."""

import pytest

from repro.experiments import fig03_chip_ab


@pytest.fixture(scope="module")
def result(model):
    return fig03_chip_ab.run(model, fractions=(0.25, 0.5, 0.75, 1.0))


class TestFig03:
    def test_both_chips_present(self, result):
        assert set(result.ttm) == {"Chip A", "Chip B"}
        assert set(result.cas) == {"Chip A", "Chip B"}

    def test_chip_a_ttm_steeper(self, result):
        """Chip A's TTM climbs faster as capacity drops (the figure's
        defining feature)."""
        slope_a = result.ttm["Chip A"][0] - result.ttm["Chip A"][-1]
        slope_b = result.ttm["Chip B"][0] - result.ttm["Chip B"][-1]
        assert slope_a > slope_b

    def test_chip_b_higher_ttm_at_full_capacity(self, result):
        """Agility is not the same as being fast at max rate."""
        assert result.ttm["Chip B"][-1] > result.ttm["Chip A"][-1]

    def test_chip_b_more_agile_everywhere(self, result):
        for a, b in zip(result.cas["Chip A"], result.cas["Chip B"]):
            assert b > a

    def test_ttm_decreases_with_capacity(self, result):
        for series in result.ttm.values():
            assert list(series) == sorted(series, reverse=True)

    def test_cas_increases_with_capacity(self, result):
        for series in result.cas.values():
            assert list(series) == sorted(series)

    def test_table_renders(self, result):
        text = result.table()
        assert "Chip A TTM" in text
        assert "100" in text


class TestEngines:
    def test_portfolio_matches_loop(self, model):
        fractions = (0.25, 0.5, 0.75, 1.0)
        fused = fig03_chip_ab.run(
            model, fractions=fractions, engine="portfolio"
        )
        oracle = fig03_chip_ab.run(model, fractions=fractions, engine="loop")
        assert set(fused.ttm) == set(oracle.ttm)
        for name in oracle.ttm:
            for got, expected in zip(fused.ttm[name], oracle.ttm[name]):
                assert got == pytest.approx(expected, rel=1e-9)
            for got, expected in zip(fused.cas[name], oracle.cas[name]):
                assert got == pytest.approx(expected, rel=1e-9)

    def test_unknown_engine_rejected(self, model):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="engine"):
            fig03_chip_ab.run(model, fractions=(0.5, 1.0), engine="warp")
