"""Fig. 14 reproduction checks (multi-process manufacturing)."""

import pytest

from repro.experiments import fig14_multiprocess

# A reduced grid keeps the study fast while covering the node spectrum.
PROCESSES = ("180nm", "65nm", "40nm", "28nm", "14nm", "7nm")
GRID = tuple(s / 20 for s in range(1, 21))


@pytest.fixture(scope="module")
def result(model, cost_model):
    return fig14_multiprocess.run(
        model, cost_model, processes=PROCESSES, split_grid=GRID
    )


class TestFig14:
    def test_matrix_covers_all_pairs(self, result):
        n = len(PROCESSES)
        assert len(result.study.pairs) == n * (n + 1) // 2

    def test_fastest_combo_is_28_40(self, result):
        """Sec. 7: 28 nm + 40 nm (the two highest-capacity nodes) wins."""
        fastest = result.study.fastest()
        assert {fastest.primary, fastest.secondary} == {"28nm", "40nm"}

    def test_fastest_multi_beats_fastest_single(self, result):
        singles = result.study.single_process_results()
        best_single = min(r.best.ttm_weeks for r in singles.values())
        assert result.study.fastest().best.ttm_weeks < best_single

    def test_headline_signs(self, result):
        """Sec. 7 headline: more agile, faster than the cheapest process,
        for a small cost increase (paper: +47% / 8% / +1.6%)."""
        headline = result.headline
        assert headline["agility_gain"] > 0.2
        assert headline["ttm_gain_vs_cheapest"] > 0.0
        assert 0.0 < headline["cost_increase"] < 0.25

    def test_matrices_extracted(self, result):
        ttm = result.matrix("ttm")
        cost = result.matrix("cost")
        split = result.matrix("split")
        assert set(ttm) == set(cost) == set(split)
        assert all(0.0 < s <= 1.0 for s in split.values())

    def test_single_process_diagonal_order(self, result):
        """Single-process TTM ordering matches the Fig. 14a diagonal:
        28 nm fastest, 180 nm slowest of this subset."""
        singles = {
            p: r.best.ttm_weeks
            for p, r in result.study.single_process_results().items()
        }
        assert min(singles, key=singles.get) == "28nm"
        assert singles["180nm"] == max(singles.values())

    def test_pair_lookup(self, result):
        pair = result.pair("28nm", "40nm")
        assert pair.primary == "28nm"

    def test_table_renders(self, result):
        text = result.table()
        assert "fastest" in text and "agility_gain" in text


class TestEngineOptions:
    # Scoped down to three nodes: these compare whole studies, so a
    # small grid keeps the scalar oracle affordable.
    PROCESSES = ("65nm", "40nm", "28nm")
    GRID = tuple(s / 10 for s in range(1, 11))

    def test_scalar_engine_matches_batched_default(self, model, cost_model):
        batched = fig14_multiprocess.run(
            model, cost_model, processes=self.PROCESSES, split_grid=self.GRID
        )
        scalar = fig14_multiprocess.run(
            model,
            cost_model,
            processes=self.PROCESSES,
            split_grid=self.GRID,
            engine="scalar",
        )
        for key, result in batched.study.pairs.items():
            oracle = scalar.study.pairs[key].best
            assert result.best.split == oracle.split
            assert result.best.ttm_weeks == pytest.approx(
                oracle.ttm_weeks, rel=1e-9
            )
            assert result.best.cas == pytest.approx(oracle.cas, rel=1e-9)

    def test_refine_never_loses_agility(self, model, cost_model):
        coarse = fig14_multiprocess.run(
            model, cost_model, processes=self.PROCESSES, split_grid=self.GRID
        )
        refined = fig14_multiprocess.run(
            model,
            cost_model,
            processes=self.PROCESSES,
            split_grid=self.GRID,
            refine=True,
        )
        for key, result in refined.study.pairs.items():
            assert result.best.cas >= coarse.study.pairs[key].best.cas
