"""Figs. 7 and 8 reproduction checks (A11 re-release and sensitivity)."""

import pytest

from repro.experiments import fig07_a11_ttm_cost, fig08_a11_sensitivity
from repro.experiments.fig07_a11_ttm_cost import headline_band


@pytest.fixture(scope="module")
def fig7(model, cost_model):
    return fig07_a11_ttm_cost.run(model, cost_model, band_samples=128)


@pytest.fixture(scope="module")
def fig8(model):
    return fig08_a11_sensitivity.run(
        model, processes=("250nm", "28nm", "7nm", "5nm"), base_samples=96
    )


class TestFig07:
    def test_28nm_fastest(self, fig7):
        assert fig7.fastest.process == "28nm"

    def test_headline_band_brackets_the_paper(self, fig7):
        """Paper: +73% (7nm) .. +116% (5nm) over the best node."""
        gain_7nm, gain_5nm = headline_band(fig7)
        assert 0.4 < gain_7nm < 1.0
        assert 0.8 < gain_5nm < 1.5

    def test_tapeout_grows_toward_advanced_nodes(self, fig7):
        tapeouts = [node.tapeout_weeks for node in fig7.nodes]
        assert tapeouts == sorted(tapeouts)

    def test_packaging_shrinks_toward_advanced_nodes(self, fig7):
        packaging = [node.packaging_weeks for node in fig7.nodes]
        assert packaging == sorted(packaging, reverse=True)

    def test_legacy_rerelease_most_expensive(self, fig7):
        costs = {node.process: node.cost_usd for node in fig7.nodes}
        assert costs["250nm"] == max(costs.values())

    def test_confidence_bands_bracket_the_point(self, fig7):
        for node in fig7.nodes:
            band = node.bands[0.10]
            assert band.lower < node.total_weeks < band.upper

    def test_wider_variance_wider_band(self, fig7):
        for node in fig7.nodes:
            assert (
                node.bands[0.25].interval_width
                > node.bands[0.10].interval_width
            )

    def test_bands_optional(self, model, cost_model):
        quick = fig07_a11_ttm_cost.run(
            model, cost_model, processes=("28nm",), with_bands=False
        )
        assert quick.nodes[0].bands == {}

    def test_table_renders(self, fig7):
        assert "28nm" in fig7.table()


class TestFig08:
    def test_legacy_dominated_by_ntt(self, fig8):
        """Fig. 8: at 250 nm total transistor count drives the variance."""
        assert fig8.dominant_factor("250nm") == "NTT"

    def test_mid_nodes_dominated_by_latency(self, fig8):
        assert fig8.dominant_factor("28nm") == "Lfab"
        assert fig8.dominant_factor("7nm") == "Lfab"

    def test_5nm_nut_rises(self, fig8):
        """The exponential tapeout effort makes NUT matter at 5 nm."""
        assert fig8.total_effect("NUT", "5nm") > 0.2
        assert fig8.total_effect("NUT", "250nm") < 0.05

    def test_mu_w_matters_only_at_legacy(self, fig8):
        assert fig8.total_effect("muW", "250nm") > fig8.total_effect("muW", "7nm")

    def test_indices_in_unit_interval(self, fig8):
        for process in fig8.processes:
            for factor in ("NTT", "NUT", "D0", "muW", "Lfab", "LOSAT"):
                assert 0.0 <= fig8.total_effect(factor, process) <= 1.0

    def test_table_renders(self, fig8):
        text = fig8.table()
        assert "NTT" in text and "LOSAT" in text
