"""Figs. 9 and 10 reproduction checks (A11 CAS curves and TTM matrix)."""

import pytest

from repro.experiments import fig09_a11_cas, fig10_a11_matrix


@pytest.fixture(scope="module")
def fig9(model):
    return fig09_a11_cas.run(model, fractions=(0.25, 0.5, 0.75, 1.0))


@pytest.fixture(scope="module")
def fig10(model):
    return fig10_a11_matrix.run(model)


class TestFig09:
    def test_7nm_has_highest_cas(self, fig9):
        ranking = fig9.ranking_at_full_capacity()
        assert ranking[0] == "7nm"

    def test_14nm_above_5nm(self, fig9):
        full = fig9.at_full_capacity()
        assert full["14nm"] > full["5nm"]

    def test_40nm_lowest(self, fig9):
        ranking = fig9.ranking_at_full_capacity()
        assert ranking[-1] == "40nm"

    def test_curves_fall_with_capacity(self, fig9):
        for series in fig9.series.values():
            assert list(series) == sorted(series)

    def test_table_renders(self, fig9):
        assert "7nm" in fig9.table()

    def test_optional_cas_bands(self, model):
        """The shaded-region CIs bracket the point CAS per node."""
        banded = fig09_a11_cas.run(
            model,
            processes=("7nm", "5nm"),
            fractions=(1.0,),
            with_bands=True,
            band_samples=48,
        )
        for process in ("7nm", "5nm"):
            point = banded.series[process][-1]
            band = banded.bands[process][0.10]
            assert band.lower < point < band.upper
            wide = banded.bands[process][0.25]
            assert wide.interval_width > band.interval_width


class TestFig10:
    def test_shape(self, fig10):
        assert len(fig10.processes) == 10
        assert len(fig10.quantities) == 6
        assert len(fig10.ttm) == 60

    def test_small_runs_prefer_legacy(self, fig10):
        """Row 1K: the fastest node sits in the legacy half."""
        assert fig10.fastest_for(1e3) in {
            "250nm", "180nm", "130nm", "90nm", "65nm", "40nm", "28nm"
        }

    def test_mass_production_prefers_28nm(self, fig10):
        assert fig10.fastest_for(1e7) == "28nm"

    def test_ttm_monotone_in_volume_per_node(self, fig10):
        for process in fig10.processes:
            series = [fig10.ttm[(process, n)] for n in fig10.quantities]
            assert series == sorted(series)

    def test_180nm_beats_130_90_even_at_100m(self, fig10):
        """Paper: 180 nm outruns 130/90 nm 'even up to 100M chips'."""
        row = {p: fig10.ttm[(p, 1e8)] for p in ("180nm", "130nm", "90nm")}
        assert row["180nm"] < row["130nm"]
        assert row["180nm"] < row["90nm"]

    def test_volume_insensitive_nodes_at_small_runs(self, fig10):
        """At tiny volumes TTM is all latency: rows 1K and 10K match."""
        for process in fig10.processes:
            assert fig10.ttm[(process, 1e3)] == pytest.approx(
                fig10.ttm[(process, 1e4)], rel=0.02
            )

    def test_table_marks_fastest(self, fig10):
        assert "fastest" in fig10.table()
