"""Tables 3 and 4 reproduction checks."""

import pytest

from repro.experiments import table3_accelerators, table4_zen2_dies


@pytest.fixture(scope="module")
def table3():
    return table3_accelerators.run()


@pytest.fixture(scope="module")
def table4():
    return table4_zen2_dies.run()


class TestTable3:
    PAPER = {
        # key: (speedup, T_tapeout weeks, C_tapeout $M)
        "sorting-stream": (16.71, 3.5, 6.8),
        "sorting-iterative": (3.07, 1.6, 4.6),
        "dft-stream": (56.36, 2.9, 6.1),
        "dft-iterative": (20.81, 1.5, 4.6),
    }

    def test_four_rows(self, table3):
        assert len(table3.rows) == 4

    @pytest.mark.parametrize("key", list(PAPER))
    def test_speedups_near_paper(self, table3, key):
        expected = self.PAPER[key][0]
        assert table3.row(key).speedup == pytest.approx(expected, rel=0.15)

    @pytest.mark.parametrize("key", list(PAPER))
    def test_tapeout_weeks_near_paper(self, table3, key):
        expected = self.PAPER[key][1]
        assert table3.row(key).tapeout_weeks == pytest.approx(expected, rel=0.10)

    @pytest.mark.parametrize("key", list(PAPER))
    def test_tapeout_costs_near_paper(self, table3, key):
        expected = self.PAPER[key][2] * 1e6
        assert table3.row(key).tapeout_cost_usd == pytest.approx(
            expected, rel=0.05
        )

    def test_area_ratios_match_paper(self, table3):
        """18.18x / 7.53x / 14.87x / 7.24x relative to Ariane."""
        expected = {
            "sorting-stream": 18.18,
            "sorting-iterative": 7.53,
            "dft-stream": 14.87,
            "dft-iterative": 7.24,
        }
        for key, ratio in expected.items():
            assert table3.row(key).area_relative_to_ariane == pytest.approx(
                ratio, rel=0.01
            )

    def test_streaming_costs_more_than_iterative(self, table3):
        assert (
            table3.row("sorting-stream").tapeout_cost_usd
            > table3.row("sorting-iterative").tapeout_cost_usd
        )

    def test_unknown_row(self, table3):
        with pytest.raises(KeyError):
            table3.row("npu")

    def test_table_renders(self, table3):
        assert "Sorting Stream" in table3.table()


class TestTable4:
    PAPER = {
        # (die, node): (NTT, NUT, area mm^2, tapeout weeks)
        ("compute", "14nm"): (3.8e9, 4.75e8, 206.0, 3.6),
        ("compute", "7nm"): (3.8e9, 4.75e8, 74.0, 10.4),
        ("io", "14nm"): (2.1e9, 5.23e8, 125.0, 4.0),
        ("io", "7nm"): (2.1e9, 5.23e8, 38.0, 11.5),
    }

    @pytest.mark.parametrize("die,process", list(PAPER))
    def test_counts_exact(self, table4, die, process):
        ntt, nut, _, _ = self.PAPER[(die, process)]
        row = table4.row(die, process)
        assert row.ntt == pytest.approx(ntt)
        assert row.nut == pytest.approx(nut)

    @pytest.mark.parametrize("die,process", list(PAPER))
    def test_areas_exact(self, table4, die, process):
        area = self.PAPER[(die, process)][2]
        assert table4.row(die, process).area_mm2 == area

    @pytest.mark.parametrize("die,process", list(PAPER))
    def test_tapeout_weeks_near_paper(self, table4, die, process):
        weeks = self.PAPER[(die, process)][3]
        assert table4.row(die, process).tapeout_weeks == pytest.approx(
            weeks, abs=0.1
        )

    def test_unknown_row(self, table4):
        with pytest.raises(KeyError):
            table4.row("gpu", "7nm")

    def test_table_renders(self, table4):
        assert "compute" in table4.table()
