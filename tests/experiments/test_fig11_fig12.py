"""Figs. 11 and 12 reproduction checks (queue-time effects)."""

import pytest

from repro.experiments import fig11_queue_ttm, fig12_queue_cas

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def fig11(model):
    return fig11_queue_ttm.run(model, fractions=FRACTIONS)


@pytest.fixture(scope="module")
def fig12(model):
    return fig12_queue_cas.run(model, fractions=FRACTIONS)


class TestFig11:
    def test_four_queue_levels(self, fig11):
        assert set(fig11.series) == {0.0, 1.0, 2.0, 4.0}

    def test_longer_queue_longer_ttm_everywhere(self, fig11):
        for i in range(len(FRACTIONS)):
            column = [fig11.series[q][i] for q in (0.0, 1.0, 2.0, 4.0)]
            assert column == sorted(column)

    def test_quote_exact_at_full_capacity(self, fig11):
        """At max rate a q-week quote adds exactly q weeks."""
        at_full = fig11.at_full_capacity()
        assert at_full[1.0] - at_full[0.0] == pytest.approx(1.0, abs=0.01)
        assert at_full[4.0] - at_full[0.0] == pytest.approx(4.0, abs=0.01)

    def test_queue_amplified_at_low_capacity(self, fig11):
        """The same quote costs 4x more weeks at 25% capacity."""
        gap_full = fig11.series[4.0][-1] - fig11.series[0.0][-1]
        gap_low = fig11.series[4.0][0] - fig11.series[0.0][0]
        assert gap_low == pytest.approx(4 * gap_full, rel=0.05)

    def test_table_renders(self, fig11):
        assert "queue" in fig11.table()


class TestFig12:
    def test_queue_reduces_max_cas(self, fig12):
        peaks = fig12.max_cas()
        assert peaks[0.0] > peaks[1.0] > peaks[2.0] > peaks[4.0]

    def test_one_week_drop_is_severe(self, fig12):
        """Paper: 1 week of queue cut the max CAS by ~37%. Our backlog
        model is more punishing (see EXPERIMENTS.md); assert the drop is
        at least paper-sized and strictly below total collapse."""
        drop = fig12.one_week_drop()
        assert 0.3 < drop < 0.95

    def test_curves_fall_with_capacity(self, fig12):
        for series in fig12.series.values():
            assert list(series) == sorted(series)

    def test_table_renders(self, fig12):
        assert "queue" in fig12.table()
