"""Fig. 13 reproduction checks (chiplets & mixed-process)."""

import pytest

from repro.experiments import fig13_chiplets
from repro.design.library.zen2 import zen2


@pytest.fixture(scope="module")
def result(model, cost_model):
    return fig13_chiplets.run(
        model,
        cost_model,
        quantities=(25e6, 50e6),
        fractions=(0.25, 0.5, 0.75, 1.0),
    )


class TestFig13TTM:
    def test_eight_variants(self, result):
        assert len(result.variants) == 8

    def test_mixed_faster_than_all_7nm(self, result):
        assert result.ttm["Zen 2"][-1] < result.ttm["7nm chiplet"][-1]

    def test_chiplets_beat_monolithic(self, result):
        assert result.ttm["7nm chiplet"][-1] < result.ttm["7nm monolithic"][-1]
        assert (
            result.ttm["12nm-class chiplet"][-1]
            < result.ttm["12nm-class monolithic"][-1]
        )

    def test_interposer_strictly_slower(self, result):
        for base, loaded in (
            ("Zen 2", "Zen 2 w/ interposer"),
            ("7nm chiplet", "7nm chiplet w/ interposer"),
            ("12nm-class chiplet", "12nm-class chiplet w/ interposer"),
        ):
            assert result.ttm[loaded][-1] > result.ttm[base][-1]


class TestFig13Cost:
    def test_mixed_costs_more_than_single_7nm(self, result):
        assert result.cost["Zen 2"][-1] > result.cost["7nm chiplet"][-1]

    def test_chiplets_cheaper_than_monolithic(self, result):
        assert result.cost["7nm chiplet"][-1] < result.cost["7nm monolithic"][-1]

    def test_interposer_costs_extra(self, result):
        assert (
            result.cost["Zen 2 w/ interposer"][-1] > result.cost["Zen 2"][-1]
        )


class TestFig13CAS:
    def test_mixed_most_agile_at_full_capacity(self, result):
        full = result.cas_at_full_capacity()
        assert full["Zen 2"] == max(
            full[name]
            for name in (
                "Zen 2",
                "7nm chiplet",
                "7nm monolithic",
                "12nm-class chiplet",
                "12nm-class monolithic",
            )
        )

    def test_agility_gains_in_paper_band(self, result):
        """Abstract: mixed is 24%-51% more agile than single-process
        chiplet / monolithic equivalents."""
        gains = fig13_chiplets.agility_gains(result)
        assert 0.1 < gains["7nm chiplet"] < 0.6
        assert 0.2 < gains["7nm monolithic"] < 0.8

    def test_chiplet_more_agile_than_monolithic(self, result):
        full = result.cas_at_full_capacity()
        assert full["7nm chiplet"] > full["7nm monolithic"]


class TestNodeDisruption:
    def test_mixed_design_vulnerable_on_both_nodes(self, model):
        """Sec. 6.5: mixed-process designs add vulnerability — a deep
        disruption on either of their nodes delays the chip."""
        outcomes = fig13_chiplets.node_disruption(
            zen2(), model, n_chips=50e6, capacity=0.05
        )
        assert outcomes["7nm"] > outcomes["nominal"]
        assert outcomes["14nm"] > outcomes["nominal"]

    def test_single_process_design_immune_to_other_nodes(self, model):
        outcomes = fig13_chiplets.node_disruption(
            zen2("7nm", "7nm"), model, n_chips=50e6, capacity=0.05
        )
        assert set(outcomes) == {"nominal", "7nm"}

    def test_table_renders(self, result):
        assert "Zen 2" in result.table()


class TestEngines:
    def test_portfolio_matches_loop(self, model, cost_model):
        kwargs = dict(
            quantities=(10e6, 50e6),
            fractions=(0.3, 0.6, 1.0),
        )
        fused = fig13_chiplets.run(
            model, cost_model, engine="portfolio", **kwargs
        )
        oracle = fig13_chiplets.run(model, cost_model, engine="loop", **kwargs)
        assert fused.variants == oracle.variants
        for name in oracle.variants:
            for panel in ("ttm", "cost", "cas"):
                fused_series = getattr(fused, panel)[name]
                oracle_series = getattr(oracle, panel)[name]
                for got, expected in zip(fused_series, oracle_series):
                    assert got == pytest.approx(expected, rel=1e-9)

    def test_unknown_engine_rejected(self, model, cost_model):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="engine"):
            fig13_chiplets.run(model, cost_model, engine="warp")
