"""Tests for the accelerator block-size scaling extension."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.experiments import accelerator_scaling


@pytest.fixture(scope="module")
def result():
    return accelerator_scaling.run()


class TestScaling:
    def test_all_accelerators_covered(self, result):
        assert set(result.series) == {
            "sorting-stream",
            "sorting-iterative",
            "dft-stream",
            "dft-iterative",
        }

    def test_table3_column_recovered_at_2048(self, result):
        """The sweep passes through Table 3's operating point."""
        assert result.speedup("sorting-stream", 2048) == pytest.approx(
            15.95, abs=0.05
        )
        assert result.speedup("dft-iterative", 2048) == pytest.approx(
            20.36, abs=0.05
        )

    def test_streaming_speedups_grow_with_size(self, result):
        assert result.trend("dft-stream") == "growing"

    def test_iterative_sorter_degrades_with_size(self, result):
        """Its pass count grows as log^2(n) against the core's n log n."""
        assert result.trend("sorting-iterative") == "shrinking"
        values = result.series["sorting-iterative"]
        assert list(values) == sorted(values, reverse=True)

    def test_iterative_sorter_matches_closed_form(self, result):
        """speedup = 2 * cycles_per_op / (log2(n) + 1)."""
        for size in result.block_sizes:
            expected = 2.0 * 16.0 / (math.log2(size) + 1.0)
            assert result.speedup("sorting-iterative", size) == pytest.approx(
                expected
            )

    def test_iterative_dft_is_flat(self, result):
        assert result.trend("dft-iterative") == "flat"

    def test_dft_stream_saturates_toward_asymptote(self, result):
        """As n grows the pipeline fill amortizes: limit = 2 * 28 = 56x."""
        largest = result.series["dft-stream"][-1]
        assert largest == pytest.approx(56.0, rel=0.01)
        assert largest < 56.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            accelerator_scaling.run(block_sizes=())

    def test_table_renders(self, result):
        text = result.table()
        assert "trend" in text and "2048" in text
