"""Fig. 6 reproduction checks (optimal cache matrix)."""

import pytest

from repro.experiments import fig06_cache_matrix

PROCESSES = ("250nm", "65nm", "28nm", "7nm")
QUANTITIES = (1e4, 1e6, 1e8)
SIZES = (1, 4, 16, 64, 256, 1024)


@pytest.fixture(scope="module")
def result(model):
    return fig06_cache_matrix.run(
        model, processes=PROCESSES, quantities=QUANTITIES, sizes_kb=SIZES
    )


class TestFig06:
    def test_matrix_complete(self, result):
        assert len(result.cells) == len(PROCESSES) * len(QUANTITIES)

    def test_mass_production_shrinks_caches(self, result):
        """More chips -> wafer throughput binds -> smaller optimum."""
        for process in PROCESSES:
            small_run = result.cell(process, 1e4)
            mass_run = result.cell(process, 1e8)
            assert (
                mass_run.icache_kb + mass_run.dcache_kb
                <= small_run.icache_kb + small_run.dcache_kb
            )

    def test_advanced_nodes_afford_bigger_caches_at_volume(self, result):
        """Denser nodes make cache area cheap (Fig. 6's column trend)."""
        legacy = result.cell("250nm", 1e8)
        advanced = result.cell("7nm", 1e8)
        assert (
            advanced.icache_kb + advanced.dcache_kb
            >= legacy.icache_kb + legacy.dcache_kb
        )

    def test_optimum_beats_the_corners(self, result, model):
        """Each cell's pick must dominate extreme configurations."""
        from repro.design.library.ariane import ariane_manycore
        from repro.perf.ipc import IPCModel

        perf = IPCModel()
        study_model = model.at_capacity(0.05)  # the experiment's default
        cell = result.cell("28nm", 1e6)
        best_metric = cell.ipc / cell.ttm_weeks
        for icache, dcache in ((1, 1), (1024, 1024)):
            design = ariane_manycore(
                "28nm", cores=16, icache_kb=icache, dcache_kb=dcache
            )
            metric = perf.ipc(icache, dcache) / study_model.total_weeks(
                design, 1e6
            )
            assert best_metric >= metric - 1e-12

    def test_cache_area_fraction_in_unit_interval(self, result):
        for cell in result.cells.values():
            assert 0.0 < cell.cache_area_fraction < 1.0

    def test_table_renders(self, result):
        text = result.table()
        assert "250nm" in text and "/" in text
