"""Tests for the codesign search's optional production-split stage."""

import pytest

from repro.experiments import codesign_search

#: A tiny joint space keeps the grid search fast; the production stage
#: is the thing under test.
SMALL = dict(
    processes=("40nm", "28nm"),
    cores=(8,),
    caches_kb=(16, 32),
)


@pytest.fixture(scope="module")
def result(model, cost_model):
    return codesign_search.run(model, cost_model, **SMALL)


@pytest.fixture(scope="module")
def with_production(model, cost_model):
    return codesign_search.run(
        model,
        cost_model,
        **SMALL,
        split_processes=("65nm", "40nm", "28nm"),
        split_grid=tuple(s / 10 for s in range(1, 11)),
    )


class TestProductionStage:
    def test_default_run_has_no_production_plan(self, result):
        assert result.production is None
        assert "production:" not in result.table()

    def test_production_plan_covers_requested_nodes(self, with_production):
        plan = with_production.production
        assert plan is not None
        assert plan.primary in ("65nm", "40nm", "28nm")
        assert plan.secondary in ("65nm", "40nm", "28nm")
        assert 0.0 < plan.best.split <= 1.0
        assert plan.best.cas > 0.0

    def test_winning_architecture_is_unchanged(self, result, with_production):
        # The production stage is appended after the search; it must not
        # perturb the architectural winner.
        assert with_production.best == result.best
        assert with_production.evaluated == result.evaluated

    def test_table_reports_the_plan(self, with_production):
        assert "production:" in with_production.table()

    def test_refine_split_keeps_a_valid_plan(self, model, cost_model):
        refined = codesign_search.run(
            model,
            cost_model,
            **SMALL,
            split_processes=("40nm", "28nm"),
            split_grid=tuple(s / 10 for s in range(1, 11)),
            refine_split=True,
        )
        plan = refined.production
        assert plan is not None
        assert 0.0 < plan.best.split <= 1.0
