"""Tests for the codesign search's optional production-split stage."""

import pytest

from repro.experiments import codesign_search

#: A tiny joint space keeps the grid search fast; the production stage
#: is the thing under test.
SMALL = dict(
    processes=("40nm", "28nm"),
    cores=(8,),
    caches_kb=(16, 32),
)


@pytest.fixture(scope="module")
def result(model, cost_model):
    return codesign_search.run(model, cost_model, **SMALL)


@pytest.fixture(scope="module")
def with_production(model, cost_model):
    return codesign_search.run(
        model,
        cost_model,
        **SMALL,
        split_processes=("65nm", "40nm", "28nm"),
        split_grid=tuple(s / 10 for s in range(1, 11)),
    )


class TestProductionStage:
    def test_default_run_has_no_production_plan(self, result):
        assert result.production is None
        assert "production:" not in result.table()

    def test_production_plan_covers_requested_nodes(self, with_production):
        plan = with_production.production
        assert plan is not None
        assert plan.primary in ("65nm", "40nm", "28nm")
        assert plan.secondary in ("65nm", "40nm", "28nm")
        assert 0.0 < plan.best.split <= 1.0
        assert plan.best.cas > 0.0

    def test_winning_architecture_is_unchanged(self, result, with_production):
        # The production stage is appended after the search; it must not
        # perturb the architectural winner.
        assert with_production.best == result.best
        assert with_production.evaluated == result.evaluated

    def test_table_reports_the_plan(self, with_production):
        assert "production:" in with_production.table()

    def test_refine_split_keeps_a_valid_plan(self, model, cost_model):
        refined = codesign_search.run(
            model,
            cost_model,
            **SMALL,
            split_processes=("40nm", "28nm"),
            split_grid=tuple(s / 10 for s in range(1, 11)),
            refine_split=True,
        )
        plan = refined.production
        assert plan is not None
        assert 0.0 < plan.best.split <= 1.0


class TestEngines:
    def test_portfolio_matches_scalar(self, model, cost_model):
        fused = codesign_search.run(
            model, cost_model, **SMALL, engine="portfolio"
        )
        oracle = codesign_search.run(
            model, cost_model, **SMALL, engine="scalar"
        )
        assert fused.best.process == oracle.best.process
        assert fused.best.cores == oracle.best.cores
        assert fused.best.icache_kb == oracle.best.icache_kb
        assert fused.best.dcache_kb == oracle.best.dcache_kb
        assert fused.best.ttm_weeks == pytest.approx(
            oracle.best.ttm_weeks, rel=1e-9
        )
        assert fused.best.cost_usd == pytest.approx(
            oracle.best.cost_usd, rel=1e-9
        )
        assert fused.feasible == oracle.feasible
        assert fused.evaluated == oracle.evaluated

    def test_unknown_engine_rejected(self, model, cost_model):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="engine"):
            codesign_search.run(model, cost_model, **SMALL, engine="warp")
