"""Shared fixtures for the test suite.

Session-scoped fixtures hold the (immutable) default database and models
so hundreds of tests don't rebuild them; all of these objects are frozen
dataclasses, so sharing is safe.
"""

from __future__ import annotations

import pytest

from repro import CostModel, TTMModel
from repro.market.foundry import Foundry
from repro.technology.database import TechnologyDatabase


@pytest.fixture(scope="session")
def db() -> TechnologyDatabase:
    """The default twelve-node technology database."""
    return TechnologyDatabase.default()


@pytest.fixture(scope="session")
def foundry(db: TechnologyDatabase) -> Foundry:
    """A nominal foundry (full capacity, empty queues)."""
    return Foundry.nominal(db)


@pytest.fixture(scope="session")
def model(foundry: Foundry) -> TTMModel:
    """The default TTM model under nominal conditions."""
    return TTMModel(foundry=foundry)


@pytest.fixture(scope="session")
def cost_model(db: TechnologyDatabase) -> CostModel:
    """The default cost model."""
    return CostModel(technology=db)
