"""Tests for Pareto-front utilities."""

import pytest

from repro.analysis.pareto import dominates, knee_point, pareto_front
from repro.errors import InvalidParameterError


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((2.0, 2.0), (1.0, 1.0), (True, True))

    def test_better_on_one_axis_equal_elsewhere(self):
        assert dominates((2.0, 1.0), (1.0, 1.0), (True, True))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0), (True, True))

    def test_tradeoffs_do_not_dominate(self):
        assert not dominates((2.0, 0.0), (1.0, 1.0), (True, True))

    def test_minimize_direction(self):
        assert dominates((1.0,), (2.0,), (False,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            dominates((1.0,), (1.0, 2.0), (True, True))


class TestParetoFront:
    POINTS = [(1.0, 5.0), (2.0, 4.0), (3.0, 1.0), (2.0, 2.0), (0.5, 0.5)]

    def test_non_dominated_subset(self):
        front = pareto_front(
            self.POINTS, objectives=lambda p: p, maximize=(True, True)
        )
        assert set(front) == {(1.0, 5.0), (2.0, 4.0), (3.0, 1.0)}

    def test_empty_input(self):
        assert pareto_front([], objectives=lambda p: p, maximize=(True,)) == []

    def test_single_point_is_its_own_front(self):
        assert pareto_front(
            [(1.0, 1.0)], objectives=lambda p: p, maximize=(True, True)
        ) == [(1.0, 1.0)]


class TestKneePoint:
    def test_balanced_point_wins(self):
        points = [(1.0, 0.1), (0.7, 0.7), (0.1, 1.0)]
        assert knee_point(points, objectives=lambda p: p) == (0.7, 0.7)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            knee_point([], objectives=lambda p: p)

    def test_non_positive_objectives_rejected(self):
        with pytest.raises(InvalidParameterError):
            knee_point([(0.0, 0.0)], objectives=lambda p: p)


class TestParetoMask:
    def test_matches_pairwise_dominates(self):
        import numpy as np

        from repro.analysis.pareto import pareto_mask

        rng = np.random.default_rng(5)
        vectors = rng.uniform(0.0, 1.0, (40, 3))
        maximize = (True, False, True)
        mask = pareto_mask(vectors, maximize)
        for i, row in enumerate(vectors):
            dominated = any(
                dominates(other, row, maximize)
                for j, other in enumerate(vectors)
                if j != i
            )
            assert mask[i] == (not dominated)

    def test_duplicates_survive_together(self):
        from repro.analysis.pareto import pareto_mask

        mask = pareto_mask([(1.0, 2.0), (1.0, 2.0)], (True, True))
        assert list(mask) == [True, True]

    def test_empty_input(self):
        from repro.analysis.pareto import pareto_mask

        assert pareto_mask([], (True,)).size == 0

    def test_length_mismatch_rejected(self):
        from repro.analysis.pareto import pareto_mask

        with pytest.raises(InvalidParameterError):
            pareto_mask([(1.0, 2.0)], (True,))
