"""Tests for the grid-search engine and the codesign experiment."""

import pytest

from repro.analysis.search import SearchSpace, grid_search
from repro.errors import InvalidParameterError


class TestSearchSpace:
    def test_size_and_points(self):
        space = SearchSpace({"a": (1, 2, 3), "b": ("x", "y")})
        assert space.size == 6
        points = space.points()
        assert len(points) == 6
        assert {"a": 1, "b": "x"} in points

    def test_deterministic_order(self):
        space = SearchSpace({"a": (1, 2)})
        assert space.points() == space.points()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SearchSpace({})
        with pytest.raises(InvalidParameterError):
            SearchSpace({"a": ()})


class TestGridSearch:
    SPACE = SearchSpace({"x": tuple(range(-5, 6)), "y": tuple(range(-5, 6))})

    def test_finds_global_maximum(self):
        result = grid_search(
            self.SPACE,
            objective=lambda cfg: -(cfg["x"] ** 2) - (cfg["y"] - 2) ** 2,
        )
        assert result.best == {"x": 0, "y": 2}
        assert result.best_score == 0
        assert result.feasible == result.evaluated == 121

    def test_minimize_direction(self):
        result = grid_search(
            self.SPACE,
            objective=lambda cfg: cfg["x"] ** 2 + cfg["y"] ** 2,
            maximize=False,
        )
        assert result.best == {"x": 0, "y": 0}

    def test_constraints_respected(self):
        result = grid_search(
            self.SPACE,
            objective=lambda cfg: cfg["x"] + cfg["y"],
            constraints=[lambda cfg: cfg["x"] <= 2, lambda cfg: cfg["y"] <= 1],
        )
        assert result.best == {"x": 2, "y": 1}
        assert result.feasible < result.evaluated
        assert 0.0 < result.feasible_fraction < 1.0

    def test_infeasible_space_raises_with_counts(self):
        with pytest.raises(InvalidParameterError, match="no feasible point"):
            grid_search(
                self.SPACE,
                objective=lambda cfg: 0.0,
                constraints=[lambda cfg: False],
            )

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_parallel_executors_match_serial(self, executor):
        objective = lambda cfg: -(cfg["x"] ** 2) - (cfg["y"] - 2) ** 2
        serial = grid_search(self.SPACE, objective=objective)
        parallel = grid_search(
            self.SPACE, objective=objective, executor=executor, max_workers=2
        )
        assert parallel.best == serial.best
        assert parallel.best_score == serial.best_score
        assert parallel.feasible == serial.feasible

    def test_tie_resolution_is_grid_order_under_every_executor(self):
        space = SearchSpace({"x": (1, 2, 3)})
        for executor in ("serial", "thread"):
            result = grid_search(
                space, objective=lambda cfg: 0.0, executor=executor
            )
            assert result.best == {"x": 1}


class TestCodesignExperiment:
    @pytest.fixture(scope="class")
    def result(self, model, cost_model):
        from repro.experiments import codesign_search

        return codesign_search.run(
            model,
            cost_model,
            processes=("65nm", "28nm", "7nm"),
            cores=(4, 16),
            caches_kb=(8, 32, 128),
        )

    def test_budget_binds_some_points(self, result):
        assert 0 < result.feasible < result.evaluated

    def test_winner_within_budget(self, result):
        assert result.best.cost_usd <= result.budget_usd

    def test_winner_beats_every_feasible_corner(self, result, model, cost_model):
        from repro.design.library.ariane import ariane_manycore
        from repro.perf.ipc import IPCModel

        perf = IPCModel()
        study_model = model.at_capacity(0.05)
        for process in ("65nm", "28nm", "7nm"):
            design = ariane_manycore(process, cores=4, icache_kb=8, dcache_kb=8)
            if cost_model.total_usd(design, result.n_chips) > result.budget_usd:
                continue
            metric = (
                4 * perf.ipc(8, 8)
                / study_model.total_weeks(design, result.n_chips)
            )
            assert result.best.throughput_per_week >= metric - 1e-12

    def test_more_cores_preferred_for_throughput(self, result):
        """Throughput/week rewards core count (IPC barely depends on it)."""
        assert result.best.cores == 16

    def test_table_renders(self, result):
        assert "thpt/wk" in result.table()
