"""Tests for the portfolio stress assessment."""

import pytest

from repro.analysis.portfolio import (
    PortfolioAssessment,
    PortfolioEntry,
    assess_portfolio,
)
from repro.design.library import a11, raven_multicore, zen2
from repro.errors import InvalidParameterError
from repro.market import scenarios


@pytest.fixture(scope="module")
def assessment(model):
    portfolio = {
        "soc": PortfolioEntry(design=a11("28nm"), n_chips=10e6),
        "chiplet": PortfolioEntry(design=zen2(), n_chips=10e6),
        "mcu": PortfolioEntry(design=raven_multicore("180nm"), n_chips=100e6),
    }
    stress = {
        "shortage": scenarios.shortage_2021(),
        "advanced_drought": scenarios.advanced_drought(0.5),
        "fab_fire_28nm": scenarios.fab_fire("28nm", 0.3),
    }
    return assess_portfolio(model, portfolio, stress)


class TestAssessment:
    def test_matrix_complete(self, assessment):
        assert set(assessment.products) == {"soc", "chiplet", "mcu"}
        assert set(assessment.scenarios) == {
            "shortage",
            "advanced_drought",
            "fab_fire_28nm",
        }
        assert len(assessment.delta_weeks) == 9

    def test_deltas_never_negative(self, assessment):
        for delta in assessment.delta_weeks.values():
            assert delta >= -1e-9

    def test_global_queue_hits_everyone_equally(self, assessment):
        """A 4-week quote at full capacity adds ~4 weeks to every line."""
        for product in assessment.products:
            assert assessment.delta(product, "shortage") == pytest.approx(
                4.0, abs=0.1
            )

    def test_mcu_immune_to_advanced_drought(self, assessment):
        assert assessment.delta("mcu", "advanced_drought") == pytest.approx(
            0.0, abs=1e-6
        )

    def test_soc_exposed_to_its_own_node(self, assessment):
        assert assessment.delta("soc", "fab_fire_28nm") > 1.0
        assert assessment.most_exposed_product("fab_fire_28nm") == "soc"

    def test_chiplet_hit_by_advanced_drought(self, assessment):
        assert assessment.delta("chiplet", "advanced_drought") > 0.0

    def test_worst_scenario_lookup(self, assessment):
        assert assessment.worst_scenario_for("mcu") == "shortage"

    def test_cas_reported_for_everyone(self, assessment):
        for product in assessment.products:
            assert assessment.cas[product] > 0.0

    def test_table_renders(self, assessment):
        text = assessment.table()
        assert "nominal wk" in text and "mcu" in text


class TestValidation:
    def test_empty_portfolio_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            assess_portfolio(model, {}, {"s": scenarios.nominal()})

    def test_empty_scenarios_rejected(self, model):
        entry = PortfolioEntry(design=a11("28nm"), n_chips=1e6)
        with pytest.raises(InvalidParameterError):
            assess_portfolio(model, {"soc": entry}, {})

    def test_non_positive_volume_rejected(self):
        with pytest.raises(InvalidParameterError):
            PortfolioEntry(design=a11("28nm"), n_chips=0.0)


class TestEngines:
    def test_portfolio_matches_scalar(self, model):
        portfolio = {
            "soc": PortfolioEntry(design=a11("28nm"), n_chips=10e6),
            "chiplet": PortfolioEntry(design=zen2(), n_chips=10e6),
        }
        stress = {
            "shortage": scenarios.shortage_2021(),
            "fab_fire_28nm": scenarios.fab_fire("28nm", 0.3),
        }
        fused = assess_portfolio(model, portfolio, stress, engine="portfolio")
        oracle = assess_portfolio(model, portfolio, stress, engine="scalar")
        assert fused.products == oracle.products
        assert fused.scenarios == oracle.scenarios
        for product in oracle.products:
            assert fused.nominal_ttm[product] == pytest.approx(
                oracle.nominal_ttm[product], rel=1e-9
            )
            assert fused.cas[product] == pytest.approx(
                oracle.cas[product], rel=1e-9
            )
            for scenario in oracle.scenarios:
                assert fused.delta(product, scenario) == pytest.approx(
                    oracle.delta(product, scenario), rel=1e-9, abs=1e-9
                )

    def test_unknown_engine_rejected(self, model):
        entry = PortfolioEntry(design=a11("28nm"), n_chips=1e6)
        with pytest.raises(InvalidParameterError, match="engine"):
            assess_portfolio(
                model,
                {"soc": entry},
                {"s": scenarios.nominal()},
                engine="warp",
            )
