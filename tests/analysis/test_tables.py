"""Tests for the text-table renderer."""

import pytest

from repro.analysis.tables import format_cell, format_table
from repro.errors import InvalidParameterError


class TestFormatCell:
    def test_strings_pass_through(self):
        assert format_cell("28nm") == "28nm"

    def test_integers_unchanged(self):
        assert format_cell(42) == "42"

    def test_small_floats_rounded(self):
        assert format_cell(3.14159) == "3.14"

    def test_large_floats_compact(self):
        assert format_cell(1234567.0) == "1.23e+06"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_bools_render_as_words(self):
        assert format_cell(True) == "True"


class TestFormatTable:
    def test_alignment_and_rule(self):
        table = format_table(["a", "bb"], [[1, 2], [10, 20]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All lines share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(InvalidParameterError):
            format_table([], [])

    def test_empty_body_allowed(self):
        table = format_table(["a"], [])
        assert "a" in table
