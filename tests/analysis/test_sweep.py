"""Tests for the sweep helpers."""

import pytest

from repro.analysis.sweep import (
    argmax,
    argmin,
    capacity_fractions,
    chip_quantities,
    normalized,
    sweep,
    sweep_pairs,
)
from repro.errors import InvalidParameterError


class TestCapacityFractions:
    def test_endpoints_and_count(self):
        fractions = capacity_fractions(0.2, 1.0, 5)
        assert fractions == pytest.approx((0.2, 0.4, 0.6, 0.8, 1.0))

    def test_strictly_positive(self):
        assert all(f > 0 for f in capacity_fractions())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            capacity_fractions(0.0, 1.0, 5)
        with pytest.raises(InvalidParameterError):
            capacity_fractions(0.5, 0.2, 5)
        with pytest.raises(InvalidParameterError):
            capacity_fractions(count=1)


class TestChipQuantities:
    def test_paper_volumes(self):
        assert chip_quantities() == (1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


class TestNormalized:
    def test_peak_becomes_one(self):
        assert normalized([1.0, 2.0, 4.0]) == pytest.approx([0.25, 0.5, 1.0])

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            normalized([])
        with pytest.raises(InvalidParameterError):
            normalized([0.0, -1.0])


class TestArgBest:
    def test_argmax(self):
        assert argmax(["a", "bbb", "cc"], key=len) == "bbb"

    def test_argmin(self):
        assert argmin(["a", "bbb", "cc"], key=len) == "a"

    def test_first_winner_kept_on_ties(self):
        assert argmax(["aa", "bb"], key=len) == "aa"

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            argmax([], key=len)


class TestSweep:
    def test_order_preserved(self):
        result = sweep([3, 1, 2], evaluate=lambda x: x * x)
        assert list(result) == [3, 1, 2]
        assert result[2] == 4


class TestSweepPairs:
    def test_pairs_in_order(self):
        pairs = sweep_pairs([3, 1, 2], evaluate=lambda x: x * x)
        assert pairs == ((3, 9), (1, 1), (2, 4))

    def test_duplicate_values_keep_separate_results(self):
        calls = iter(range(10))
        pairs = sweep_pairs([5, 5, 5], evaluate=lambda _: next(calls))
        assert pairs == ((5, 0), (5, 1), (5, 2))

    def test_dict_wrapper_collapses_duplicates_last_wins(self):
        calls = iter(range(10))
        result = sweep([5, 5], evaluate=lambda _: next(calls))
        assert result == {5: 1}

    def test_thread_executor_matches_serial(self):
        values = list(range(8))
        serial = sweep_pairs(values, evaluate=lambda x: x + 1)
        threaded = sweep_pairs(
            values, evaluate=lambda x: x + 1, executor="thread", max_workers=3
        )
        assert serial == threaded

    def test_unknown_executor_rejected(self):
        with pytest.raises(InvalidParameterError):
            sweep_pairs([1], evaluate=lambda x: x, executor="warp")
