"""Tests for JSON export of experiment results."""

import dataclasses
import json

import pytest

from repro.analysis.export import to_json, to_jsonable
from repro.errors import InvalidParameterError


@dataclasses.dataclass(frozen=True)
class _Inner:
    value: float


@dataclasses.dataclass(frozen=True)
class _Outer:
    name: str
    inner: _Inner
    series: tuple
    mapping: dict


class TestToJsonable:
    def test_nested_dataclasses(self):
        outer = _Outer(
            name="x",
            inner=_Inner(1.5),
            series=(1, 2),
            mapping={"a": _Inner(2.0)},
        )
        data = to_jsonable(outer)
        assert data == {
            "name": "x",
            "inner": {"value": 1.5},
            "series": [1, 2],
            "mapping": {"a": {"value": 2.0}},
        }

    def test_tuple_keys_flattened(self):
        assert to_jsonable({("28nm", 1e6): 3.0}) == {"28nm|1000000.0": 3.0}

    def test_numeric_keys_stringified(self):
        assert to_jsonable({0.1: "a"}) == {"0.1": "a"}

    def test_unknown_objects_stringified(self):
        class Weird:
            def __repr__(self):
                return "weird!"

        assert to_jsonable(Weird()) == "weird!"

    def test_primitives_pass_through(self):
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True


class TestToJson:
    def test_valid_json(self):
        text = to_json(_Outer("x", _Inner(1.0), (1,), {}))
        assert json.loads(text)["name"] == "x"

    def test_indent_validation(self):
        with pytest.raises(InvalidParameterError):
            to_json({"a": 1}, indent=-1)


class TestExperimentExport:
    def test_real_result_exports(self):
        """A full experiment result survives the JSON round trip."""
        from repro.experiments import table4_zen2_dies

        result = table4_zen2_dies.run()
        data = json.loads(to_json(result))
        assert len(data["rows"]) == 4
        assert data["rows"][0]["die"] == "compute"

    def test_cli_json_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "table4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "rows" in data
