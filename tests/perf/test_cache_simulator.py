"""Tests for the set-associative LRU cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.perf.cache.simulator import (
    Cache,
    CacheConfig,
    CacheStats,
    simulate_miss_ratio,
)


def _cache(size=1024, line=64, ways=2):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, associativity=ways))


class TestConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=8192, line_bytes=64, associativity=4)
        assert config.num_sets == 32
        assert config.size_kb == 8.0

    def test_set_index_and_tag_partition_the_address(self):
        config = CacheConfig(size_bytes=8192, line_bytes=64, associativity=4)
        address = 0x12345678
        line = address // 64
        assert config.set_index(address) == line % 32
        assert config.tag(address) == line // 32

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=4)
        with pytest.raises(InvalidParameterError):
            CacheConfig(size_bytes=1024, line_bytes=48, associativity=4)

    def test_too_small_for_one_set_rejected(self):
        with pytest.raises(InvalidParameterError):
            CacheConfig(size_bytes=128, line_bytes=64, associativity=4)


class TestAccessSemantics:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_same_line_is_one_entry(self):
        cache = _cache(line=64)
        cache.access(0)
        assert cache.access(63) is True
        assert cache.access(64) is False

    def test_lru_eviction_order(self):
        # Direct construction of a conflict set: 2-way, addresses that
        # collide map to the same set every `num_sets * line` bytes.
        cache = _cache(size=256, line=64, ways=2)  # 2 sets
        stride = 2 * 64  # same-set stride
        a, b, c = 0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_full_associativity_holds_working_set(self):
        cache = _cache(size=512, line=64, ways=8)  # 1 set, 8 ways
        for i in range(8):
            cache.access(i * 64)
        for i in range(8):
            assert cache.access(i * 64) is True

    def test_resident_lines_never_exceed_capacity(self):
        cache = _cache(size=1024, line=64, ways=2)
        for i in range(1000):
            cache.access(i * 64 * 7)
        assert cache.resident_lines <= 1024 // 64

    def test_negative_address_rejected(self):
        with pytest.raises(InvalidParameterError):
            _cache().access(-1)

    def test_reset(self):
        cache = _cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines == 0


class TestStats:
    def test_miss_ratio(self):
        stats = CacheStats(accesses=10, misses=4)
        assert stats.miss_ratio == pytest.approx(0.4)

    def test_empty_cache_zero_ratio(self):
        assert CacheStats().miss_ratio == 0.0

    def test_mpki(self):
        stats = CacheStats(accesses=10, misses=4)
        assert stats.mpki(instructions=1000) == pytest.approx(4.0)

    def test_mpki_requires_instructions(self):
        with pytest.raises(InvalidParameterError):
            CacheStats().mpki(0)


class TestMissRatioHelper:
    def test_looping_fit_vs_thrash(self):
        """A working set that fits hits; one that doesn't, thrashes.

        Line-sized strides remove spatial locality, so the cyclic sweep
        over a too-large set misses on every access under LRU.
        """
        from repro.perf.cache.traces import looping_trace

        fits = simulate_miss_ratio(
            looping_trace(20000, working_set_bytes=2048, stride_bytes=64),
            size_kb=4,
        )
        thrashes = simulate_miss_ratio(
            looping_trace(20000, working_set_bytes=65536, stride_bytes=64),
            size_kb=4,
        )
        assert fits < 0.02
        assert thrashes > 0.9

    def test_empty_trace_rejected(self):
        with pytest.raises(InvalidParameterError):
            simulate_miss_ratio(iter(()), size_kb=4)

    @settings(max_examples=10, deadline=None)
    @given(size_kb=st.sampled_from([2, 4, 8, 16, 32]))
    def test_bigger_cache_never_worse_on_loops(self, size_kb):
        from repro.perf.cache.traces import looping_trace

        small = simulate_miss_ratio(
            looping_trace(8000, working_set_bytes=16384), size_kb=size_kb
        )
        big = simulate_miss_ratio(
            looping_trace(8000, working_set_bytes=16384), size_kb=size_kb * 4
        )
        assert big <= small + 1e-9
