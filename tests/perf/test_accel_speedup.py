"""Tests for accelerator speed-up evaluation (Table 3's shape)."""

import pytest

from repro.design.library.accelerators import ACCELERATORS, AcceleratorSpec
from repro.errors import InvalidParameterError
from repro.perf.accel.scalar import ScalarCoreModel, merge_sort
from repro.perf.accel.speedup import (
    accelerator_cycles,
    evaluate_speedup,
    scalar_cycles,
)


class TestScalarBaseline:
    def test_merge_sort_is_correct(self):
        data = [5.0, 3.0, 9.0, 1.0, 1.0, -2.0]
        assert merge_sort(data) == sorted(data)

    def test_cycle_models_scale_nlogn(self):
        core = ScalarCoreModel()
        assert core.sort_cycles(2048) == pytest.approx(16.0 * 2048 * 11)
        assert core.fft_cycles(2048) == pytest.approx(28.0 * 2048 * 11)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ScalarCoreModel(sort_cycles_per_op=0.0)
        with pytest.raises(InvalidParameterError):
            ScalarCoreModel().sort_cycles(100)  # not a power of two


class TestTable3Shape:
    """Paper values: 16.71x / 3.07x / 56.36x / 20.81x."""

    @pytest.fixture(scope="class")
    def speedups(self):
        return {
            spec.key: evaluate_speedup(spec).speedup for spec in ACCELERATORS
        }

    def test_all_accelerators_beat_the_core(self, speedups):
        assert all(value > 1.0 for value in speedups.values())

    def test_streaming_beats_iterative(self, speedups):
        assert speedups["sorting-stream"] > speedups["sorting-iterative"]
        assert speedups["dft-stream"] > speedups["dft-iterative"]

    def test_dft_gains_exceed_sorting_gains(self, speedups):
        assert speedups["dft-stream"] > speedups["sorting-stream"]
        assert speedups["dft-iterative"] > speedups["sorting-iterative"]

    def test_within_paper_bands(self, speedups):
        assert speedups["sorting-stream"] == pytest.approx(16.71, rel=0.10)
        assert speedups["sorting-iterative"] == pytest.approx(3.07, rel=0.15)
        assert speedups["dft-stream"] == pytest.approx(56.36, rel=0.05)
        assert speedups["dft-iterative"] == pytest.approx(20.81, rel=0.05)


class TestDispatch:
    def test_cycles_positive_for_all_specs(self):
        for spec in ACCELERATORS:
            assert accelerator_cycles(spec, 2048) > 0
            assert scalar_cycles(spec, 2048, ScalarCoreModel()) > 0

    def test_unknown_kind_rejected(self):
        bogus = AcceleratorSpec(
            key="x", display_name="X", kind="crypto", style="stream",
            transistors=1e6,
        )
        with pytest.raises(InvalidParameterError):
            accelerator_cycles(bogus, 2048)
        with pytest.raises(InvalidParameterError):
            scalar_cycles(bogus, 2048, ScalarCoreModel())

    def test_result_fields(self):
        result = evaluate_speedup(ACCELERATORS[0])
        assert result.block_size == 2048
        assert result.speedup == pytest.approx(
            result.scalar_cycles / result.accelerator_cycles
        )
