"""Tests for the CPI-stack IPC model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.perf.ipc import IPCModel, ipc_bounds


class TestIPCModel:
    def test_perfect_caches_hit_base_cpi(self):
        model = IPCModel(base_cpi=2.0, miss_penalty_cycles=0.0)
        assert model.ipc(1, 1) == pytest.approx(0.5)

    def test_monotone_in_both_caches(self):
        model = IPCModel()
        assert model.ipc(2, 32) > model.ipc(1, 32)
        assert model.ipc(16, 64) > model.ipc(16, 32)

    def test_paper_range(self):
        """Fig. 4's IPC spans roughly 0.10 .. 0.27."""
        worst, best = ipc_bounds(IPCModel())
        assert 0.08 < worst < 0.13
        assert 0.24 < best < 0.30

    def test_original_ariane_config_in_range(self):
        ipc = IPCModel().ipc(16, 32)
        assert 0.20 < ipc < 0.26

    def test_cpi_formula(self):
        model = IPCModel(base_cpi=3.0, miss_penalty_cycles=100.0)
        from repro.perf.cache.spec_data import dcache_mpki, icache_mpki

        expected = 3.0 + (icache_mpki(8) + dcache_mpki(8)) * 0.1
        assert model.cpi(8, 8) == pytest.approx(expected)

    def test_ipc_from_mpki(self):
        model = IPCModel(base_cpi=2.0, miss_penalty_cycles=100.0)
        assert model.ipc_from_mpki(5.0, 5.0) == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            IPCModel(base_cpi=0.0)
        with pytest.raises(InvalidParameterError):
            IPCModel(miss_penalty_cycles=-1.0)
        with pytest.raises(InvalidParameterError):
            IPCModel().ipc_from_mpki(-1.0, 0.0)

    @given(
        icache=st.sampled_from([1, 4, 16, 64, 256, 1024]),
        dcache=st.sampled_from([1, 4, 16, 64, 256, 1024]),
    )
    def test_ipc_always_below_one_for_inorder(self, icache, dcache):
        assert 0.0 < IPCModel().ipc(icache, dcache) < 1.0
