"""Tests for the simulator-backed IPC path."""

import pytest

from repro.errors import InvalidParameterError
from repro.perf.ipc import IPCModel
from repro.perf.measured import (
    measure_mpki,
    measured_ipc,
    measured_sweep,
)

INSTRUCTIONS = 24_000  # short traces keep the suite fast


class TestMeasureMPKI:
    def test_fields(self):
        result = measure_mpki(16, 32, instructions=INSTRUCTIONS)
        assert result.icache_kb == 16
        assert result.dcache_kb == 32
        assert result.instructions == INSTRUCTIONS
        assert result.icache_mpki > 0.0
        assert result.dcache_mpki > 0.0

    def test_deterministic_by_seed(self):
        a = measure_mpki(16, 32, instructions=INSTRUCTIONS, seed=5)
        b = measure_mpki(16, 32, instructions=INSTRUCTIONS, seed=5)
        assert a == b

    def test_mpki_falls_with_capacity(self):
        small = measure_mpki(2, 2, instructions=INSTRUCTIONS)
        large = measure_mpki(64, 64, instructions=INSTRUCTIONS)
        assert large.icache_mpki < small.icache_mpki
        assert large.dcache_mpki < small.dcache_mpki

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            measure_mpki(16, 32, instructions=0)


class TestMeasuredIPC:
    def test_monotone_in_capacity(self):
        small = measured_ipc(2, 2, instructions=INSTRUCTIONS)
        large = measured_ipc(64, 64, instructions=INSTRUCTIONS)
        assert large > small

    def test_in_plausible_range(self):
        ipc = measured_ipc(16, 32, instructions=INSTRUCTIONS)
        assert 0.05 < ipc < 0.30

    def test_agrees_with_analytic_ordering(self):
        """Measured and analytic paths rank configurations identically
        on a coarse grid — the analytic curve is a faithful stand-in."""
        analytic = IPCModel()
        sizes = (2, 8, 32, 128)
        measured_rank = sorted(
            sizes, key=lambda s: measured_ipc(s, s, instructions=INSTRUCTIONS)
        )
        analytic_rank = sorted(sizes, key=lambda s: analytic.ipc(s, s))
        assert measured_rank == analytic_rank


class TestMeasuredSweep:
    def test_diagonal_sweep(self):
        results = measured_sweep((4, 16, 64), instructions=INSTRUCTIONS)
        assert [r.icache_kb for r in results] == [4, 16, 64]
        mpkis = [r.icache_mpki for r in results]
        assert mpkis == sorted(mpkis, reverse=True)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            measured_sweep(())
