"""Tests for the synthetic trace generators."""

import pytest

from repro.errors import InvalidParameterError
from repro.perf.cache.traces import (
    data_trace,
    instruction_trace,
    looping_trace,
    materialize,
    sequential_trace,
)


class TestSequential:
    def test_stride(self):
        assert list(sequential_trace(4, stride_bytes=8)) == [0, 8, 16, 24]

    def test_base_offset(self):
        assert list(sequential_trace(2, stride_bytes=4, base=100)) == [100, 104]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            list(sequential_trace(0))


class TestLooping:
    def test_period(self):
        trace = list(looping_trace(8, working_set_bytes=16, stride_bytes=4))
        assert trace == [0, 4, 8, 12, 0, 4, 8, 12]


class TestInstructionTrace:
    def test_exact_length(self):
        assert len(list(instruction_trace(1000))) == 1000

    def test_deterministic_by_seed(self):
        a = list(instruction_trace(500, seed=9))
        b = list(instruction_trace(500, seed=9))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(instruction_trace(500, seed=1))
        b = list(instruction_trace(500, seed=2))
        assert a != b

    def test_sequential_runs_within_blocks(self):
        trace = list(instruction_trace(100, block_instructions=10, seed=4))
        # Within a block, consecutive fetches advance by 4 bytes.
        deltas = [b - a for a, b in zip(trace, trace[1:])]
        assert deltas.count(4) >= 80

    def test_addresses_non_negative(self):
        assert all(a >= 0 for a in instruction_trace(1000, seed=3))


class TestDataTrace:
    def test_exact_length(self):
        assert len(list(data_trace(1000))) == 1000

    def test_deterministic_by_seed(self):
        assert list(data_trace(500, seed=9)) == list(data_trace(500, seed=9))

    def test_regions_are_disjoint(self):
        trace = list(data_trace(5000, seed=5))
        heap = [a for a in trace if 1 << 28 <= a < 1 << 29]
        stream = [a for a in trace if 1 << 29 <= a < 1 << 30]
        cold = [a for a in trace if a >= 1 << 30]
        assert len(heap) + len(stream) + len(cold) == len(trace)
        # All three behaviours present at default mixture weights.
        assert heap and stream and cold

    def test_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            list(data_trace(10, stream_fraction=0.9, cold_fraction=0.2))
        with pytest.raises(InvalidParameterError):
            list(data_trace(10, stream_fraction=-0.1))


class TestMaterialize:
    def test_truncates(self):
        assert materialize(sequential_trace(100), limit=3) == [0, 4, 8]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            materialize(sequential_trace(10), limit=0)
