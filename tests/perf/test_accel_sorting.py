"""Tests for the bitonic sorting network models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.perf.accel.sorting import (
    bitonic_compare_exchange_pairs,
    bitonic_sort,
    bitonic_stage_count,
    iterative_sort_cycles,
    streaming_sort_cycles,
)


class TestNetworkStructure:
    def test_stage_count_formula(self):
        # log2(8) = 3 -> 3*4/2 = 6 stages.
        assert bitonic_stage_count(8) == 6
        assert bitonic_stage_count(2048) == 66

    def test_pairs_within_a_stage_are_disjoint(self):
        """Parallelism within a stage is what the cycle models charge for."""
        for stage in bitonic_compare_exchange_pairs(64):
            touched = [i for pair in stage for i in pair]
            assert len(touched) == len(set(touched))

    def test_every_stage_covers_all_lanes(self):
        for stage in bitonic_compare_exchange_pairs(16):
            touched = {i for pair in stage for i in pair}
            assert touched == set(range(16))

    def test_stage_list_length_matches_count(self):
        assert len(bitonic_compare_exchange_pairs(32)) == bitonic_stage_count(32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            bitonic_stage_count(12)
        with pytest.raises(InvalidParameterError):
            bitonic_sort([1.0, 2.0, 3.0])


class TestFunctionalCorrectness:
    def test_sorts_known_input(self):
        data = [5.0, 1.0, 4.0, 2.0, 8.0, 7.0, 3.0, 6.0]
        assert bitonic_sort(data) == sorted(data)

    def test_input_not_mutated(self):
        data = [3.0, 1.0]
        bitonic_sort(data)
        assert data == [3.0, 1.0]

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=2,
            max_size=128,
        ).filter(lambda xs: (len(xs) & (len(xs) - 1)) == 0)
    )
    def test_sorts_arbitrary_power_of_two_lists(self, values):
        assert bitonic_sort(values) == sorted(values)

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_zero_one_principle(self, bits):
        """A network sorting all 0/1 inputs sorts everything."""
        assert bitonic_sort([float(b) for b in bits]) == sorted(float(b) for b in bits)


class TestCycleModels:
    def test_streaming_formula(self):
        assert streaming_sort_cycles(2048) == 2048 * 11 + 66

    def test_iterative_formula(self):
        assert iterative_sort_cycles(2048) == 66 * 2048

    def test_streaming_faster_than_iterative(self):
        for n in (64, 512, 2048):
            assert streaming_sort_cycles(n) < iterative_sort_cycles(n)

    def test_cycles_grow_with_problem_size(self):
        assert streaming_sort_cycles(4096) > streaming_sort_cycles(2048)
        assert iterative_sort_cycles(4096) > iterative_sort_cycles(2048)
