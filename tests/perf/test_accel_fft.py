"""Tests for the radix-2 FFT models."""

import cmath

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.perf.accel.fft import (
    ITERATIVE_II,
    bit_reverse_permutation,
    butterfly_count,
    dft_direct,
    fft,
    iterative_fft_cycles,
    streaming_fft_cycles,
)


class TestBitReverse:
    def test_known_order_n8(self):
        assert bit_reverse_permutation(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_an_involution(self):
        perm = bit_reverse_permutation(64)
        assert [perm[perm[i]] for i in range(64)] == list(range(64))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            bit_reverse_permutation(6)


class TestFunctionalCorrectness:
    def test_impulse_gives_flat_spectrum(self):
        result = fft([1.0] + [0.0] * 7)
        assert all(abs(v - 1.0) < 1e-12 for v in result)

    def test_constant_gives_dc_only(self):
        result = fft([1.0] * 8)
        assert abs(result[0] - 8.0) < 1e-12
        assert all(abs(v) < 1e-12 for v in result[1:])

    def test_matches_direct_dft(self):
        values = [complex(i % 3, (i * 7) % 5) for i in range(32)]
        fast = fft(values)
        slow = dft_direct(values)
        assert max(abs(a - b) for a, b in zip(fast, slow)) < 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0),
            min_size=16,
            max_size=16,
        )
    )
    def test_parseval(self, values):
        """Energy is conserved up to the 1/N convention."""
        spectrum = fft(values)
        time_energy = sum(abs(v) ** 2 for v in values)
        freq_energy = sum(abs(v) ** 2 for v in spectrum) / 16
        assert freq_energy == pytest.approx(time_energy, rel=1e-9, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-10.0, max_value=10.0),
            min_size=8,
            max_size=8,
        )
    )
    def test_linearity(self, values):
        doubled = fft([2.0 * v for v in values])
        single = fft(values)
        assert max(abs(a - 2.0 * b) for a, b in zip(doubled, single)) < 1e-9

    def test_single_tone_lands_in_one_bin(self):
        n = 32
        tone = [cmath.exp(2j * cmath.pi * 5 * t / n) for t in range(n)]
        spectrum = fft(tone)
        assert abs(spectrum[5] - n) < 1e-9
        assert all(abs(v) < 1e-9 for i, v in enumerate(spectrum) if i != 5)

    def test_empty_dft_rejected(self):
        with pytest.raises(InvalidParameterError):
            dft_direct([])


class TestCycleModels:
    def test_butterfly_count(self):
        assert butterfly_count(2048) == 1024 * 11

    def test_streaming_formula(self):
        assert streaming_fft_cycles(2048) == 1024 * 11 + 96

    def test_iterative_formula(self):
        assert iterative_fft_cycles(2048) == pytest.approx(
            1024 * 11 * ITERATIVE_II
        )

    def test_streaming_faster_than_iterative(self):
        for n in (64, 512, 2048):
            assert streaming_fft_cycles(n) < iterative_fft_cycles(n)
