"""Tests for the SPEC2000-shaped MPKI curves, incl. simulator agreement."""

import pytest

from repro.errors import InvalidParameterError
from repro.perf.cache.simulator import simulate_miss_ratio
from repro.perf.cache.spec_data import (
    CACHE_SIZES_KB,
    dcache_mpki,
    icache_mpki,
    mpki_table,
)
from repro.perf.cache.traces import data_trace, instruction_trace


class TestCurveShape:
    def test_monotone_decreasing_in_capacity(self):
        i_values = [icache_mpki(s) for s in CACHE_SIZES_KB]
        d_values = [dcache_mpki(s) for s in CACHE_SIZES_KB]
        assert i_values == sorted(i_values, reverse=True)
        assert d_values == sorted(d_values, reverse=True)

    def test_compulsory_floors(self):
        assert icache_mpki(1 << 20) > 0.25 * 0.99
        assert dcache_mpki(1 << 20) > 0.90 * 0.99

    def test_instruction_curve_falls_faster(self):
        """I-side working sets fit sooner than D-side (classic SPEC)."""
        i_drop = icache_mpki(1) / icache_mpki(64)
        d_drop = dcache_mpki(1) / dcache_mpki(64)
        assert i_drop > d_drop

    def test_data_misses_dominate_at_large_sizes(self):
        assert dcache_mpki(1024) > icache_mpki(1024)

    def test_table_covers_sweep(self):
        table = mpki_table()
        assert set(table) == set(CACHE_SIZES_KB)
        for size, (i_mpki, d_mpki) in table.items():
            assert i_mpki == pytest.approx(icache_mpki(size))
            assert d_mpki == pytest.approx(dcache_mpki(size))

    def test_invalid_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            icache_mpki(0.0)
        with pytest.raises(InvalidParameterError):
            dcache_mpki(-1.0)


class TestSimulatorAgreement:
    """The trace-driven simulator regenerates the same curve *shape*."""

    def test_instruction_misses_fall_with_capacity(self):
        trace = list(instruction_trace(80000, seed=11))
        ratios = [
            simulate_miss_ratio(iter(trace), size_kb=s) for s in (1, 4, 16, 64)
        ]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[0] > 2 * ratios[-1]

    def test_data_misses_fall_with_capacity_but_keep_a_tail(self):
        trace = list(data_trace(80000, seed=12))
        ratios = [
            simulate_miss_ratio(iter(trace), size_kb=s) for s in (1, 4, 16, 64)
        ]
        assert ratios == sorted(ratios, reverse=True)
        # Streaming + cold accesses keep a compulsory floor.
        assert ratios[-1] > 0.05

    def test_data_tail_heavier_than_instruction_tail(self):
        i_trace = list(instruction_trace(60000, seed=13))
        d_trace = list(data_trace(60000, seed=14))
        i_tail = simulate_miss_ratio(iter(i_trace), size_kb=256)
        d_tail = simulate_miss_ratio(iter(d_trace), size_kb=256)
        assert d_tail > i_tail
