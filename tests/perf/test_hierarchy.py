"""Tests for the two-level cache hierarchy."""

import pytest

from repro.errors import InvalidParameterError
from repro.perf.cache.hierarchy import CacheHierarchy, HierarchyIPCModel
from repro.perf.cache.traces import data_trace, instruction_trace

INSTRUCTIONS = 20_000


def _run(l1i=8, l1d=8, l2=512, seed=21, data_refs=30_000):
    """A cache-friendly kernel: the hot data set (~192 KB, touched ~10x)
    exceeds any L1 but fits a healthy L2 — the regime an L2 exists for."""
    hierarchy = CacheHierarchy.build(l1i_kb=l1i, l1d_kb=l1d, l2_kb=l2)
    return hierarchy.run(
        instruction_trace(INSTRUCTIONS, n_functions=2000, seed=seed),
        data_trace(
            data_refs,
            hot_objects=3000,
            stream_fraction=0.03,
            cold_fraction=0.02,
            seed=seed + 1,
        ),
    )


class TestConstruction:
    def test_l2_must_cover_l1(self):
        with pytest.raises(InvalidParameterError):
            CacheHierarchy.build(l1i_kb=64, l1d_kb=64, l2_kb=32)

    def test_empty_instruction_stream_rejected(self):
        hierarchy = CacheHierarchy.build(8, 8, 64)
        with pytest.raises(InvalidParameterError):
            hierarchy.run([], [1, 2, 3])


class TestFilteringBehaviour:
    def test_l2_accessed_only_on_l1_misses(self):
        stats = _run()
        assert stats.l2.accesses == stats.l1_misses

    def test_l2_filters_most_l1_misses(self):
        """A big shared L2 catches the bulk of L1 capacity misses."""
        stats = _run(l1i=4, l1d=4, l2=1024)
        assert stats.l2_hit_ratio > 0.5
        assert stats.memory_accesses < stats.l1_misses

    def test_bigger_l2_fewer_memory_accesses(self):
        small = _run(l2=64)
        large = _run(l2=1024)
        assert large.memory_accesses <= small.memory_accesses

    def test_mpki_accounting(self):
        stats = _run()
        l1i_mpki, l1d_mpki, memory_mpki = stats.mpki()
        assert l1i_mpki == pytest.approx(
            1000.0 * stats.l1i.misses / INSTRUCTIONS
        )
        assert memory_mpki <= l1i_mpki + l1d_mpki

    def test_all_data_references_issued(self):
        stats = _run(data_refs=12_345)
        assert stats.l1d.accesses == 12_345


class TestHierarchyIPC:
    def test_l2_improves_ipc_over_flat_memory_penalty(self):
        """Every L1 miss at memory cost is strictly worse than the
        hierarchy that catches some in L2."""
        stats = _run(l1i=4, l1d=4, l2=512)
        model = HierarchyIPCModel()
        flat = HierarchyIPCModel(
            l2_hit_cycles=model.memory_cycles,
            memory_cycles=model.memory_cycles,
        )
        assert model.ipc(stats) > flat.ipc(stats)

    def test_ipc_in_plausible_range(self):
        """The kernel issues ~1.5 data refs per instruction, so it is
        firmly memory-bound; IPC lands low but must stay physical."""
        assert 0.02 < HierarchyIPCModel().ipc(_run()) < 0.35

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HierarchyIPCModel(base_cpi=0.0)
        with pytest.raises(InvalidParameterError):
            HierarchyIPCModel(l2_hit_cycles=50.0, memory_cycles=10.0)


class TestWaferDiameterIntegration:
    def test_200mm_legacy_needs_more_wafers(self, db, model):
        """The 200 mm ablation: same die, smaller wafers, more of them."""
        from repro.design.library.raven import raven_multicore
        from repro.market.foundry import Foundry
        from repro.ttm.model import TTMModel

        legacy_200 = db.override({"180nm": {"wafer_diameter_mm": 200.0}})
        model_200 = TTMModel(foundry=Foundry.nominal(legacy_200))
        design = raven_multicore("180nm")
        wafers_300 = sum(model.wafer_demand(design, 1e9).values())
        wafers_200 = sum(model_200.wafer_demand(design, 1e9).values())
        assert wafers_200 == pytest.approx(wafers_300 * (300.0 / 200.0) ** 2)
        assert model_200.total_weeks(design, 1e9) > model.total_weeks(
            design, 1e9
        )
