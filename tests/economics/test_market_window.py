"""Tests for the market-window revenue model."""

import pytest
from hypothesis import given, strategies as st

from repro.economics.market_window import (
    MarketWindow,
    mckinsey_loss_fraction,
    triangle_loss_fraction,
)
from repro.errors import InvalidParameterError


def _window(weeks=104.0, peak=10e6):
    return MarketWindow(window_weeks=weeks, peak_weekly_revenue_usd=peak)


class TestLossFractions:
    def test_boundary_values(self):
        for loss in (triangle_loss_fraction, mckinsey_loss_fraction):
            assert loss(0.0, 100.0) == 0.0
            assert loss(100.0, 100.0) == 1.0
            assert loss(150.0, 100.0) == 1.0

    def test_mckinsey_halfway_value(self):
        """The textbook number: d = W/2 loses 62.5%."""
        assert mckinsey_loss_fraction(50.0, 100.0) == pytest.approx(0.625)

    def test_triangle_halfway_value(self):
        assert triangle_loss_fraction(50.0, 100.0) == pytest.approx(0.75)

    def test_triangle_harsher_than_mckinsey(self):
        for delay in (10.0, 30.0, 60.0, 90.0):
            assert triangle_loss_fraction(delay, 100.0) >= (
                mckinsey_loss_fraction(delay, 100.0)
            )

    @given(delay=st.floats(min_value=0.0, max_value=200.0))
    def test_losses_are_fractions(self, delay):
        for loss in (triangle_loss_fraction, mckinsey_loss_fraction):
            assert 0.0 <= loss(delay, 100.0) <= 1.0

    @given(
        d1=st.floats(min_value=0.0, max_value=100.0),
        d2=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_monotone_in_delay(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert triangle_loss_fraction(lo, 100.0) <= triangle_loss_fraction(
            hi, 100.0
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            triangle_loss_fraction(-1.0, 100.0)
        with pytest.raises(InvalidParameterError):
            triangle_loss_fraction(1.0, 0.0)


class TestMarketWindow:
    def test_on_time_revenue_is_triangle_area(self):
        window = _window(weeks=100.0, peak=2e6)
        assert window.on_time_revenue_usd == pytest.approx(1e8)

    def test_revenue_consistent_with_loss(self):
        window = _window()
        assert window.revenue_usd(0.0) == window.on_time_revenue_usd
        assert window.revenue_usd(window.window_weeks) == 0.0

    def test_weekly_curve_peaks_at_midpoint(self):
        window = _window(weeks=100.0, peak=2e6)
        assert window.weekly_revenue_usd(50.0) == pytest.approx(2e6)
        assert window.weekly_revenue_usd(0.0) == 0.0
        assert window.weekly_revenue_usd(100.0) == 0.0

    def test_weekly_curve_integrates_to_lifetime_revenue(self):
        """The delayed weekly curve and the loss formula agree."""
        window = _window(weeks=100.0, peak=2e6)
        delay = 30.0
        step = 0.01
        integral = sum(
            window.weekly_revenue_usd(week * step, delay) * step
            for week in range(int(100.0 / step))
        )
        assert integral == pytest.approx(window.revenue_usd(delay), rel=1e-3)

    def test_delayed_entry_zero_before_launch(self):
        window = _window()
        assert window.weekly_revenue_usd(10.0, delay_weeks=20.0) == 0.0

    def test_marginal_loss_grows_with_slip(self):
        window = _window()
        early = window.marginal_loss_usd_per_week(5.0)
        late = window.marginal_loss_usd_per_week(50.0)
        assert 0.0 < late < early  # decreasing remaining triangle

    def test_marginal_loss_zero_after_window(self):
        window = _window(weeks=10.0)
        assert window.marginal_loss_usd_per_week(10.0) == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MarketWindow(window_weeks=0.0, peak_weekly_revenue_usd=1.0)
        with pytest.raises(InvalidParameterError):
            MarketWindow(window_weeks=10.0, peak_weekly_revenue_usd=0.0)
