"""Tests for profit-optimal node selection."""

import pytest

from repro.design.library.a11 import a11
from repro.economics.market_window import MarketWindow
from repro.economics.profit import profit_study
from repro.errors import InvalidParameterError

NODES = ("180nm", "65nm", "28nm", "14nm", "7nm", "5nm")


def _study(model, cost_model, window_weeks=104.0, peak=60e6, n_chips=10e6):
    window = MarketWindow(
        window_weeks=window_weeks, peak_weekly_revenue_usd=peak
    )
    return profit_study(
        a11, NODES, window, n_chips, model=model, cost_model=cost_model
    )


class TestProfitStudy:
    def test_covers_all_nodes(self, model, cost_model):
        study = _study(model, cost_model)
        assert tuple(p.process for p in study.points) == NODES

    def test_profit_is_revenue_minus_cost(self, model, cost_model):
        study = _study(model, cost_model)
        point = study.point("28nm")
        assert point.profit_usd == pytest.approx(
            point.revenue_usd - point.cost_usd
        )

    def test_fastest_is_28nm(self, model, cost_model):
        assert _study(model, cost_model).fastest.process == "28nm"

    def test_wide_window_rewards_cheap_nodes(self, model, cost_model):
        """A long-lived, modest-revenue product (the MCU/embedded case):
        delay barely dents revenue, so the profit optimum tracks the
        cost optimum instead of the TTM optimum."""
        relaxed = _study(
            model, cost_model, window_weeks=1000.0, peak=2e5
        )
        assert relaxed.most_profitable.process == relaxed.cheapest.process
        assert relaxed.cheapest.process != relaxed.fastest.process

    def test_tight_window_rewards_fast_nodes(self, model, cost_model):
        """In a race, the profit optimum tracks the TTM optimum."""
        race = _study(model, cost_model, window_weeks=60.0)
        assert race.most_profitable.process == race.fastest.process

    def test_head_start_discounts_delay(self, model, cost_model):
        window = MarketWindow(
            window_weeks=104.0, peak_weekly_revenue_usd=60e6
        )
        without = profit_study(a11, ("28nm",), window, 10e6, model, cost_model)
        with_start = profit_study(
            a11, ("28nm",), window, 10e6, model, cost_model,
            head_start_weeks=10.0,
        )
        assert (
            with_start.point("28nm").revenue_usd
            > without.point("28nm").revenue_usd
        )

    def test_missed_window_zero_revenue(self, model, cost_model):
        tiny = _study(model, cost_model, window_weeks=10.0)
        assert tiny.point("5nm").revenue_usd == 0.0
        assert tiny.point("5nm").profit_usd < 0.0

    def test_validation(self, model, cost_model):
        window = MarketWindow(window_weeks=10.0, peak_weekly_revenue_usd=1.0)
        with pytest.raises(InvalidParameterError):
            profit_study(a11, (), window, 1e6, model, cost_model)
        with pytest.raises(InvalidParameterError):
            profit_study(
                a11, ("28nm",), window, 1e6, model, cost_model,
                head_start_weeks=-1.0,
            )

    def test_unknown_point(self, model, cost_model):
        with pytest.raises(KeyError):
            _study(model, cost_model).point("3nm")

    def test_table_renders(self, model, cost_model):
        assert "profit $B" in _study(model, cost_model).table()
