"""Tests for Monte Carlo studies over fixed production splits."""

import numpy as np
import pytest

from repro.design.library.raven import raven_multicore
from repro.errors import InvalidParameterError
from repro.montecarlo import (
    SampledParameter,
    SamplingSpec,
    compare_plans,
    default_supply_spec,
    plan_label,
    run_plan_study,
)
from repro.multiprocess.split import (
    evaluate_split,
    make_plan,
    single_process_plan,
)

N_CHIPS = 1e7


def _plan(split=0.6):
    return make_plan(raven_multicore, "28nm", "40nm", split)


def _spec(variation=0.1):
    return default_supply_spec(n_chips=N_CHIPS, variation=variation)


class TestRunPlanStudy:
    def test_produces_all_metrics(self, model, cost_model):
        result = run_plan_study(
            model,
            _plan(),
            _spec(),
            n_samples=128,
            seed=11,
            cost_model=cost_model,
            chunk_samples=64,
        )
        assert set(result.summaries) == {
            "ttm_weeks",
            "cas",
            "cost_per_chip_usd",
        }
        assert result.n_samples == 128
        assert result.processes == ("28nm", "40nm")
        assert "28nm|40nm@0.60" in result.design

    def test_without_cost_model_skips_cost(self, model):
        result = run_plan_study(
            model, _plan(), _spec(), n_samples=64, seed=1, chunk_samples=64
        )
        assert "cost_per_chip_usd" not in result.summaries

    def test_degenerate_spec_recovers_scalar_oracle(self, model, cost_model):
        # Zero variation collapses every draw to the spec's nominal
        # point; pinning that point at the model's own nominal market
        # (full capacity, empty queues) makes the sampled distribution a
        # point mass at the scalar evaluate_split values — the Monte
        # Carlo path goes through batch_split_samples, never through a
        # separate approximation.
        plan = _plan()
        result = run_plan_study(
            model,
            plan,
            default_supply_spec(
                n_chips=N_CHIPS,
                variation=0.0,
                queue_weeks=0.0,
                capacity=1.0,
            ),
            n_samples=64,
            seed=5,
            cost_model=cost_model,
            chunk_samples=32,
        )
        scalar = evaluate_split(plan, model, cost_model, N_CHIPS)
        assert result["ttm_weeks"].mean == pytest.approx(
            scalar.ttm_weeks, rel=1e-9
        )
        assert result["cas"].mean == pytest.approx(scalar.cas, rel=1e-9)
        assert result["cost_per_chip_usd"].mean == pytest.approx(
            scalar.cost_usd / N_CHIPS, rel=1e-9
        )

    def test_seeded_and_executor_deterministic(self, model):
        kwargs = dict(n_samples=96, seed=23, chunk_samples=32)
        serial = run_plan_study(model, _plan(), _spec(), **kwargs)
        thread = run_plan_study(
            model, _plan(), _spec(), executor="thread", **kwargs
        )
        assert serial.summaries["ttm_weeks"] == thread.summaries["ttm_weeks"]
        assert serial.summaries["cas"] == thread.summaries["cas"]

    def test_rejects_doubly_sampled_capacity(self, model):
        from repro.market import scenarios
        from repro.montecarlo import DisruptionModel, EventEnsemble
        from repro.montecarlo.spec import Factor

        spec = SamplingSpec(
            n_chips=N_CHIPS,
            parameters=(
                SampledParameter(
                    "capacity", Factor("capacity", 0.9, 0.1)
                ),
            ),
        )
        disruptions = DisruptionModel(
            base=scenarios.nominal(),
            ensembles=(
                EventEnsemble(
                    "capacity_shock",
                    probability=0.5,
                    start_week=Factor("start", 4.0, 0.5),
                    duration_weeks=Factor("duration", 10.0, 0.5),
                    severity=Factor("severity", 0.5, 0.5),
                ),
            ),
        )
        with pytest.raises(InvalidParameterError, match="pick one"):
            run_plan_study(
                model,
                _plan(),
                spec,
                n_samples=32,
                seed=1,
                disruptions=disruptions,
            )


class TestComparePlans:
    def test_common_random_numbers_and_labels(self, model):
        plans = [_plan(0.6), single_process_plan(raven_multicore, "28nm")]
        results = compare_plans(
            model, plans, _spec(), n_samples=64, seed=9, chunk_samples=32
        )
        assert set(results) == {plan_label(p) for p in plans}
        for result in results.values():
            assert result.seed == 9

    def test_duplicate_plans_rejected(self, model):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            compare_plans(
                model,
                [_plan(0.6), _plan(0.6)],
                _spec(),
                n_samples=32,
                seed=1,
            )


class TestPlanLabel:
    def test_two_node_label_names_allocation(self):
        assert plan_label(_plan(0.6)).endswith("[28nm|40nm@0.60]")

    def test_single_process_label(self):
        label = plan_label(single_process_plan(raven_multicore, "28nm"))
        assert label.endswith("[28nm]")
