"""Tests for the Monte Carlo study runner.

Covers the acceptance contract of the subsystem: bit-for-bit
reproducibility across executors, scalar-model equivalence of the
sampled evaluation path, and the guarantee that studies never fall back
to scalar ``TTMModel`` calls.
"""

import numpy as np
import pytest

from repro.agility.cas import chip_agility_score
from repro.cost.model import CostModel
from repro.design.library import a11, zen2
from repro.economics import MarketWindow
from repro.errors import InvalidParameterError
from repro.market.conditions import MarketConditions
from repro.market.foundry import Foundry
from repro.montecarlo.spec import (
    SampledParameter,
    SamplingSpec,
    default_supply_spec,
)
from repro.montecarlo.study import chunk_sizes, compare_designs, run_study
from repro.sensitivity.distributions import Factor
from repro.ttm.model import TTMModel


class TestChunkSizes:
    def test_layout(self):
        assert chunk_sizes(10, 4) == (4, 4, 2)
        assert chunk_sizes(8, 4) == (4, 4)
        assert chunk_sizes(3, 100) == (3,)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            chunk_sizes(0, 4)
        with pytest.raises(InvalidParameterError):
            chunk_sizes(4, 0)


class TestExecutorDeterminism:
    """Acceptance: percentiles bit-for-bit identical across executors."""

    @pytest.fixture(scope="class")
    def per_executor(self, model, cost_model):
        spec = default_supply_spec(n_chips=5e6)
        return {
            executor: run_study(
                model,
                a11("7nm"),
                spec,
                n_samples=1500,
                seed=99,
                cost_model=cost_model,
                executor=executor,
                max_workers=2,
                chunk_samples=256,
            )
            for executor in ("serial", "thread", "process")
        }

    def test_serial_equals_thread(self, per_executor):
        assert per_executor["serial"].summaries == per_executor["thread"].summaries

    def test_serial_equals_process(self, per_executor):
        assert per_executor["serial"].summaries == per_executor["process"].summaries

    def test_curves_identical_too(self, per_executor):
        assert per_executor["serial"].curves == per_executor["process"].curves

    def test_same_seed_reproduces(self, model):
        spec = default_supply_spec(n_chips=5e6)
        first = run_study(model, a11("7nm"), spec, 300, seed=5)
        again = run_study(model, a11("7nm"), spec, 300, seed=5)
        other = run_study(model, a11("7nm"), spec, 300, seed=6)
        assert first.summaries == again.summaries
        assert first.summaries != other.summaries


class TestScalarEquivalence:
    """The sampled batch path reproduces per-sample scalar model results."""

    def test_percentiles_match_scalar_reconstruction(self, db):
        n = 64
        seed = 11
        spec = default_supply_spec(n_chips=2e6)
        model = TTMModel.nominal(db)
        cost_model = CostModel.nominal(db)
        design = a11("7nm")
        result = run_study(
            model,
            design,
            spec,
            n_samples=n,
            seed=seed,
            cost_model=cost_model,
            chunk_samples=n,
        )
        # Reconstruct the study's single chunk draw: chunk 0's rng is
        # spawned from the study seed by index.
        rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
        draws = spec.sample(n, rng)
        ttm = np.empty(n)
        cas = np.empty(n)
        cost = np.empty(n)
        for i in range(n):
            overrides = {
                name: {
                    "defect_density_per_cm2": db[name].defect_density_per_cm2
                    * draws.d0_scale[i],
                    "wafer_rate_kwpm": db[name].wafer_rate_kwpm
                    * draws.wafer_rate_scale[i],
                }
                for name in db.names
            }
            sampled_db = db.override(overrides)
            conditions = MarketConditions(
                default_capacity=draws.capacity[i],
                default_queue_weeks=draws.queue_weeks[i],
            )
            scalar = TTMModel(
                foundry=Foundry(technology=sampled_db, conditions=conditions)
            )
            quantity = draws.n_chips[i]
            ttm[i] = scalar.total_weeks(design, quantity)
            cas[i] = chip_agility_score(scalar, design, quantity).cas
            cost[i] = CostModel(technology=sampled_db).chip_creation_cost(
                design, quantity
            ).usd_per_chip
        for metric, scalar_samples in (
            ("ttm_weeks", ttm), ("cas", cas), ("cost_per_chip_usd", cost),
        ):
            summary = result[metric]
            assert summary.mean == pytest.approx(
                np.mean(scalar_samples), rel=1e-9
            )
            for p, value in summary.percentiles.items():
                assert value == pytest.approx(
                    np.percentile(scalar_samples, p), rel=1e-9
                )


class TestNoScalarFallback:
    """Acceptance: a 10k-sample A11 study never calls scalar TTM methods."""

    def test_ten_thousand_samples_stay_on_batch_kernels(
        self, model, cost_model, monkeypatch
    ):
        def forbidden(self, *args, **kwargs):
            raise AssertionError(
                "scalar TTMModel evaluation during a Monte Carlo study"
            )

        monkeypatch.setattr(TTMModel, "time_to_market", forbidden)
        monkeypatch.setattr(TTMModel, "total_weeks", forbidden)
        result = run_study(
            model,
            a11("7nm"),
            default_supply_spec(n_chips=1e7),
            n_samples=10_000,
            seed=7,
            cost_model=cost_model,
        )
        assert result.n_samples == 10_000
        assert result["ttm_weeks"].n_samples == 10_000
        assert np.isfinite(result["ttm_weeks"].mean)


class TestStudyOptions:
    def test_window_adds_revenue_loss_metric(self, model):
        window = MarketWindow(window_weeks=104.0, peak_weekly_revenue_usd=1e7)
        result = run_study(
            model,
            a11("7nm"),
            default_supply_spec(n_chips=5e6),
            n_samples=400,
            seed=1,
            window=window,
        )
        loss = result["revenue_loss_fraction"]
        assert loss.tail == "upper"
        assert 0.0 <= loss.minimum <= loss.maximum <= 1.0

    def test_rejects_double_capacity_sampling(self, model):
        from repro.experiments.mc_disruption import disruption_model

        with pytest.raises(InvalidParameterError, match="capacity"):
            run_study(
                model,
                a11("7nm"),
                default_supply_spec(n_chips=1e6),
                n_samples=10,
                seed=0,
                disruptions=disruption_model(),
            )

    def test_disruption_study_widens_the_ttm_tail(self, model, cost_model):
        from repro.experiments.mc_disruption import (
            disruption_model,
            supply_spec,
        )

        spec = supply_spec(n_chips=5e6)
        calm = run_study(
            model, a11("7nm"), spec, n_samples=800, seed=3,
        )
        disrupted = run_study(
            model,
            a11("7nm"),
            spec,
            n_samples=800,
            seed=3,
            disruptions=disruption_model(),
        )
        assert disrupted["ttm_weeks"].maximum > calm["ttm_weeks"].maximum
        assert disrupted["ttm_weeks"].cvar > calm["ttm_weeks"].cvar

    def test_compare_designs_shares_draws(self, model):
        spec = default_supply_spec(n_chips=5e6)
        results = compare_designs(
            model, (a11("7nm"), zen2()), spec, n_samples=300, seed=4
        )
        assert set(results) == {"A11 @ 7nm", "Zen 2 (mixed chiplets)"}
        for result in results.values():
            assert result.seed == 4
            assert result.n_samples == 300


class TestCompareEngines:
    """The fused portfolio path is bit-for-bit the per-design loop."""

    @pytest.fixture(scope="class")
    def per_engine(self, model, cost_model):
        spec = default_supply_spec(n_chips=5e6)
        designs = (a11("7nm"), zen2(), a11("28nm"))
        return {
            engine: compare_designs(
                model,
                designs,
                spec,
                n_samples=240,
                seed=9,
                cost_model=cost_model,
                chunk_samples=64,
                engine=engine,
            )
            for engine in ("portfolio", "per-design")
        }

    def test_summaries_identical(self, per_engine):
        fused = per_engine["portfolio"]
        oracle = per_engine["per-design"]
        assert set(fused) == set(oracle)
        for name in oracle:
            assert set(fused[name].summaries) == set(oracle[name].summaries)
            for metric, expected in oracle[name].summaries.items():
                got = fused[name][metric]
                assert got.mean == expected.mean
                assert got.std == expected.std
                assert got.minimum == expected.minimum
                assert got.maximum == expected.maximum
                assert got.var == expected.var
                assert got.cvar == expected.cvar
                assert got.percentiles == expected.percentiles

    def test_curves_identical(self, per_engine):
        fused = per_engine["portfolio"]
        oracle = per_engine["per-design"]
        for name in oracle:
            for metric, expected in oracle[name].curves.items():
                got = fused[name].curves[metric]
                assert got.thresholds == expected.thresholds
                assert got.probabilities == expected.probabilities

    def test_disruption_draws_shared(self, model):
        from repro.experiments.mc_disruption import (
            disruption_model,
            supply_spec,
        )

        spec = supply_spec(n_chips=5e6)
        designs = (a11("7nm"), zen2())
        results = {
            engine: compare_designs(
                model,
                designs,
                spec,
                n_samples=160,
                seed=21,
                disruptions=disruption_model(),
                chunk_samples=48,
                engine=engine,
            )
            for engine in ("portfolio", "per-design")
        }
        for name in results["per-design"]:
            expected = results["per-design"][name]["ttm_weeks"]
            got = results["portfolio"][name]["ttm_weeks"]
            assert got.mean == expected.mean
            assert got.maximum == expected.maximum

    def test_unknown_engine_rejected(self, model):
        spec = default_supply_spec(n_chips=5e6)
        with pytest.raises(InvalidParameterError, match="engine"):
            compare_designs(
                model,
                (a11("7nm"),),
                spec,
                n_samples=16,
                seed=1,
                engine="warp",
            )
