"""Stress-library shape and selector-resolution contracts."""

import pytest

from repro.errors import InvalidParameterError
from repro.montecarlo.stress import (
    STRESS_FAMILIES,
    STRESS_LIBRARY,
    graded_stress_scenarios,
    stress_scenarios,
)

SEVERITIES = ("mild", "moderate", "severe", "extreme")


class TestLibraryShape:
    def test_library_count(self):
        # baseline + 7 families x 4 severities.
        assert len(STRESS_LIBRARY) == 29
        assert len(STRESS_FAMILIES) == 8  # includes "baseline"

    def test_every_family_has_full_ladder(self):
        for family in STRESS_FAMILIES:
            if family == "baseline":
                assert "baseline" in STRESS_LIBRARY
                continue
            for severity in SEVERITIES:
                assert f"{family}:{severity}" in STRESS_LIBRARY

    def test_names_match_keys(self):
        for key, scenario in STRESS_LIBRARY.items():
            assert scenario.name == key


class TestSelectors:
    def test_all(self):
        assert stress_scenarios("all").names == tuple(STRESS_LIBRARY)

    def test_family_selects_its_ladder(self):
        names = stress_scenarios("fab-outage").names
        assert names == tuple(
            f"fab-outage:{severity}" for severity in SEVERITIES
        )

    def test_exact_name(self):
        assert stress_scenarios("logistics:severe").names == (
            "logistics:severe",
        )

    def test_mixed_list_dedups_keeps_first_mention_order(self):
        names = stress_scenarios(
            ["baseline", "logistics:mild", "logistics", "baseline"]
        ).names
        assert names == (
            "baseline",
            "logistics:mild",
            "logistics:moderate",
            "logistics:severe",
            "logistics:extreme",
        )

    @pytest.mark.parametrize("bad", ["nope", "fab-outage:apocalyptic", ""])
    def test_unknown_selector(self, bad):
        with pytest.raises(InvalidParameterError):
            stress_scenarios(bad)

    def test_empty_sequence(self):
        with pytest.raises(InvalidParameterError):
            stress_scenarios([])


class TestGradedGrid:
    def test_bench_grid_is_fifty_scenarios(self):
        # The scenario_sweep benchmark grid: 11-point supply ladder,
        # 4-point demand/D0 ladder -> 1 + 4*11 + 3*... = 50 once the
        # demand-touching families take the coarse ladder.
        grid = graded_stress_scenarios(
            tuple((k + 1) / 11 for k in range(11)),
            (0.25, 0.5, 0.75, 1.0),
        )
        assert len(grid.names) == 50
        assert grid.names[0] == "baseline"

    def test_single_ladder_applies_everywhere(self):
        grid = graded_stress_scenarios((0.5, 1.0))
        # baseline + 7 families x 2 intensities.
        assert len(grid.names) == 15

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.0001])
    def test_intensity_bounds(self, bad):
        with pytest.raises(InvalidParameterError):
            graded_stress_scenarios((bad,))
        with pytest.raises(InvalidParameterError):
            graded_stress_scenarios((0.5,), (bad,))
