"""Tests for the Monte Carlo uncertainty engine."""
