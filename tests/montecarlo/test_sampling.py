"""Correlated / variance-reduced sampling contracts.

Four pins: the Gaussian copula hits its Spearman target (within
finite-sample tolerance) while marginals stay uniform; antithetic halves
are *literal* mirrors (``1.0 - u``, exact); Latin-hypercube columns put
exactly one sample per stratum; and specs with every sampling option at
its default keep the legacy draw path bit-for-bit (same RNG consumption,
same matrices), so existing studies cannot shift.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.montecarlo.sampling import (
    RankCorrelation,
    correlate_uniforms,
    latin_hypercube,
    mirror_uniforms,
    normal_cdf,
    normal_ppf,
    sample_uniforms,
    spearman_rank,
    spearman_to_pearson,
)
from repro.montecarlo.spec import (
    SamplingSpec,
    default_correlated_spec,
    default_supply_spec,
)
from repro.sensitivity.distributions import sample_matrix


class TestNormalMaps:
    def test_ppf_cdf_round_trip(self):
        u = np.linspace(1e-6, 1.0 - 1e-6, 10001)
        back = normal_cdf(normal_ppf(u))
        assert np.max(np.abs(back - u)) < 1e-8

    def test_ppf_antisymmetry(self):
        u = np.linspace(1e-6, 0.5, 1001)[:-1]
        assert np.max(np.abs(normal_ppf(u) + normal_ppf(1.0 - u))) < 1e-8

    def test_ppf_rejects_boundary(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(InvalidParameterError):
                normal_ppf([0.5, bad])

    def test_known_quantiles(self):
        assert abs(float(normal_ppf(np.asarray(0.975))) - 1.959964) < 1e-4
        assert abs(float(normal_ppf(np.asarray(0.5)))) < 1e-12


class TestCopula:
    def test_rank_correlation_hits_target(self):
        rng = np.random.default_rng(11)
        target = RankCorrelation({("a", "b"): 0.7, ("b", "c"): -0.5})
        u = rng.random((20000, 3))
        v = correlate_uniforms(u, target.cholesky(("a", "b", "c")))
        assert abs(spearman_rank(v[:, 0], v[:, 1]) - 0.7) < 0.03
        assert abs(spearman_rank(v[:, 1], v[:, 2]) + 0.5) < 0.03
        # Unlisted pair stays (nearly) independent.
        assert abs(spearman_rank(v[:, 0], v[:, 2])) < 0.03

    def test_marginals_stay_uniform(self):
        rng = np.random.default_rng(5)
        target = RankCorrelation({("a", "b"): 0.8})
        v = correlate_uniforms(
            rng.random((20000, 2)), target.cholesky(("a", "b"))
        )
        for j in range(2):
            hist, _ = np.histogram(v[:, j], bins=20, range=(0.0, 1.0))
            assert hist.min() > 0.8 * 1000 and hist.max() < 1.2 * 1000

    def test_spearman_to_pearson_fixed_points(self):
        matrix = spearman_to_pearson(
            np.asarray([[1.0, 0.0], [0.0, 1.0]])
        )
        assert np.array_equal(matrix, np.eye(2))
        near_one = spearman_to_pearson(
            np.asarray([[1.0, 0.99999], [0.99999, 1.0]])
        )[0, 1]
        assert near_one > 0.9999

    @pytest.mark.parametrize(
        "pairs",
        [
            {("a", "a"): 0.5},
            {("a", "b"): 1.0},
            {("a", "b"): -1.5},
        ],
    )
    def test_invalid_pairs(self, pairs):
        with pytest.raises(InvalidParameterError):
            RankCorrelation(pairs)

    def test_duplicate_unordered_pair(self):
        with pytest.raises(InvalidParameterError):
            RankCorrelation([((u"a", "b"), 0.5), (("b", "a"), 0.2)])

    def test_not_positive_definite(self):
        bad = RankCorrelation(
            {("a", "b"): 0.95, ("b", "c"): 0.95, ("a", "c"): -0.95}
        )
        with pytest.raises(InvalidParameterError):
            bad.cholesky(("a", "b", "c"))

    def test_unknown_names(self):
        target = RankCorrelation({("a", "zz"): 0.5})
        with pytest.raises(InvalidParameterError):
            target.cholesky(("a", "b"))


class TestAntithetic:
    def test_halves_mirror_exactly(self):
        rng = np.random.default_rng(3)
        u = sample_uniforms(256, 4, rng, antithetic=True)
        head, tail = u[:128], u[128:]
        assert np.array_equal(tail, 1.0 - head)

    def test_lhs_mirror_preserves_stratification(self):
        # The head is a 32-sample LHS; its mirror maps stratum i onto
        # stratum 31-i, so the full 64 draws hit every 1/32 stratum
        # exactly twice.
        rng = np.random.default_rng(3)
        u = sample_uniforms(64, 2, rng, strategy="lhs", antithetic=True)
        for j in range(2):
            strata = np.floor(u[:, j] * 32).astype(int)
            assert sorted(strata) == sorted(list(range(32)) * 2)

    def test_odd_count_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidParameterError):
            sample_uniforms(7, 2, rng, antithetic=True)

    def test_mirror_is_literal(self):
        u = np.asarray([[0.25, 0.75]])
        assert np.array_equal(mirror_uniforms(u), [[0.75, 0.25]])


class TestLatinHypercube:
    def test_one_sample_per_stratum(self):
        rng = np.random.default_rng(9)
        u = latin_hypercube(100, 3, rng)
        for j in range(3):
            strata = np.floor(u[:, j] * 100).astype(int)
            assert sorted(strata) == list(range(100))

    def test_bad_count(self):
        with pytest.raises(InvalidParameterError):
            latin_hypercube(0, 2, np.random.default_rng(0))

    def test_unknown_strategy(self):
        with pytest.raises(InvalidParameterError):
            sample_uniforms(8, 2, np.random.default_rng(0), strategy="sobol")


class TestSpecIntegration:
    def test_default_spec_draws_bit_unchanged(self):
        """The legacy path must not notice this module exists."""
        spec = default_supply_spec(1e7)
        assert spec.uses_default_sampling
        draws = spec.sample(64, np.random.default_rng(42)).matrix
        legacy = sample_matrix(
            [p.factor for p in spec.parameters],
            64,
            np.random.default_rng(42),
        )
        assert np.array_equal(draws, legacy)

    def test_correlated_spec_moves_joint_ranks(self):
        spec = default_correlated_spec(1e7)
        samples = spec.sample(4096, np.random.default_rng(1))
        names = list(spec.factor_names)
        matrix = samples.matrix
        cap = matrix[:, names.index("capacity")]
        queue = matrix[:, names.index("queue_weeks")]
        assert spearman_rank(cap, queue) < -0.4

    def test_correlated_spec_antithetic_default(self):
        spec = default_correlated_spec(1e7)
        assert spec.antithetic and spec.strategy == "lhs"
        with pytest.raises(InvalidParameterError):
            spec.sample(33, np.random.default_rng(0))

    def test_spec_validates_correlation_upfront(self):
        base = default_supply_spec(1e7)
        with pytest.raises(InvalidParameterError):
            SamplingSpec(
                parameters=base.parameters,
                n_chips=base.n_chips,
                correlation=RankCorrelation({("capacity", "nope"): 0.5}),
            )

    def test_spec_rejects_unknown_strategy(self):
        base = default_supply_spec(1e7)
        with pytest.raises(InvalidParameterError):
            SamplingSpec(
                parameters=base.parameters,
                n_chips=base.n_chips,
                strategy="quasi",
            )
