"""Scenario-study executor and chunking contracts.

The cube is a pure function of (spec, seed, scenarios): serial, thread,
and process executors — and any chunk size — must produce bit-identical
summaries. CVaR is pinned against a hand-computed tail mean, and the
CLI-facing tables must carry every scenario row.
"""

import numpy as np
import pytest

from repro.design.library.a11 import a11
from repro.design.library.zen2 import zen2
from repro.errors import InvalidParameterError
from repro.montecarlo.scenario_study import (
    conditional_value_at_risk,
    run_scenario_study,
)
from repro.montecarlo.spec import default_supply_spec
from repro.montecarlo.stress import stress_scenarios
from repro.sensitivity.distributions import Factor
from repro.montecarlo.spec import SampledParameter, SamplingSpec

N_SAMPLES = 48
SEED = 1234


@pytest.fixture
def designs():
    return (a11("7nm"), zen2())


@pytest.fixture
def spec():
    return default_supply_spec(1.5e7)


@pytest.fixture
def scenario_set():
    return stress_scenarios(
        ["baseline", "fab-outage:severe", "logistics:mild",
         "demand-whiplash:moderate", "defect-excursion:extreme"]
    )


def study_fingerprint(study):
    """Every float a study exposes, for exact cross-executor equality."""
    out = []
    for scenario in study.scenarios:
        for design in study.designs:
            cell = study.cell(scenario, design)
            for name in sorted(cell.summaries):
                summary = cell.summaries[name]
                out.extend([summary.mean, summary.median, summary.var,
                            summary.cvar])
                out.extend(summary.percentiles.values())
    return np.asarray(out)


class TestExecutorBitIdentity:
    def test_serial_thread_process_identical(self, model, designs, spec,
                                             scenario_set):
        results = {
            executor: run_scenario_study(
                model, designs, spec, scenario_set, N_SAMPLES, SEED,
                executor=executor, max_workers=2, chunk_scenarios=2,
            )
            for executor in ("serial", "thread", "process")
        }
        reference = study_fingerprint(results["serial"])
        for executor in ("thread", "process"):
            assert np.array_equal(
                study_fingerprint(results[executor]), reference
            ), executor

    def test_chunk_size_invariance(self, model, designs, spec,
                                   scenario_set):
        studies = [
            run_scenario_study(
                model, designs, spec, scenario_set, N_SAMPLES, SEED,
                chunk_scenarios=chunk,
            )
            for chunk in (1, 3, 100)
        ]
        reference = study_fingerprint(studies[0])
        for study in studies[1:]:
            assert np.array_equal(study_fingerprint(study), reference)

    def test_seed_changes_draws(self, model, designs, spec, scenario_set):
        a = run_scenario_study(model, designs, spec, scenario_set,
                               N_SAMPLES, SEED)
        b = run_scenario_study(model, designs, spec, scenario_set,
                               N_SAMPLES, SEED + 1)
        assert not np.array_equal(study_fingerprint(a),
                                  study_fingerprint(b))


class TestStudyShape:
    def test_cube_covers_every_cell(self, model, designs, spec,
                                    scenario_set):
        study = run_scenario_study(model, designs, spec, scenario_set,
                                   N_SAMPLES, SEED)
        assert study.scenarios == scenario_set.names
        assert study.designs == tuple(d.name for d in designs)
        assert study.baseline == "baseline"
        cell = study.cell("fab-outage:severe", designs[0].name)
        assert {"ttm_weeks", "cas"} <= set(cell.summaries)

    def test_cost_metric_present_with_cost_model(self, model, designs,
                                                 spec, scenario_set):
        from repro.cost.model import CostModel

        study = run_scenario_study(model, designs, spec, scenario_set,
                                   N_SAMPLES, SEED,
                                   cost_model=CostModel.nominal())
        cell = study.cell("baseline", designs[0].name)
        assert "cost_per_chip_usd" in cell.summaries

    def test_tables_have_one_row_per_scenario(self, model, designs, spec,
                                              scenario_set):
        study = run_scenario_study(model, designs, spec, scenario_set,
                                   N_SAMPLES, SEED)
        cvar = study.cvar_table("ttm_weeks", designs[0].name)
        exceed = study.exceedance_table("ttm_weeks", designs[0].name)
        for scenario in scenario_set.names:
            assert scenario in cvar
            assert scenario in exceed

    def test_unknown_metric_and_cell(self, model, designs, spec,
                                     scenario_set):
        study = run_scenario_study(model, designs, spec, scenario_set,
                                   N_SAMPLES, SEED)
        with pytest.raises(InvalidParameterError):
            study.cvar_table("nope", designs[0].name)
        with pytest.raises(KeyError):
            study.cell("no-such-scenario", designs[0].name)
        with pytest.raises(KeyError):
            study.cell("baseline", "no-such-design")

    def test_per_node_capacity_sampling_rejected(self, model, designs,
                                                 scenario_set):
        spec = SamplingSpec(
            parameters=(
                SampledParameter(
                    target="capacity",
                    node="7nm",
                    factor=Factor("capacity@7nm", 0.5, 0.9),
                ),
            ),
            n_chips=1e7,
        )
        with pytest.raises(InvalidParameterError):
            run_scenario_study(model, designs, spec, scenario_set,
                               N_SAMPLES, SEED)


class TestCVaR:
    def test_upper_tail_hand_computed(self):
        values = np.arange(1.0, 101.0)  # 1..100
        # 95th percentile of 1..100 is 95.05; tail = {96..100}.
        expected = np.mean([96.0, 97.0, 98.0, 99.0, 100.0])
        assert conditional_value_at_risk(values, 0.95) == pytest.approx(
            expected, abs=1.5
        )

    def test_lower_tail(self):
        values = np.arange(1.0, 101.0)
        result = conditional_value_at_risk(values, 0.95, tail="lower")
        assert result < 10.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            conditional_value_at_risk(np.asarray([]), 0.95)
        with pytest.raises(InvalidParameterError):
            conditional_value_at_risk(np.asarray([1.0]), 0.4)
        with pytest.raises(InvalidParameterError):
            conditional_value_at_risk(np.asarray([1.0]), 0.95,
                                      tail="sideways")
