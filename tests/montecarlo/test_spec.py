"""Tests for sampling specifications and their kernel-keyword mapping."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.montecarlo.spec import (
    TARGETS,
    SampledParameter,
    SamplingSpec,
    default_supply_spec,
)
from repro.sensitivity.distributions import Factor


def spec_of(*parameters, n_chips=1e6):
    return SamplingSpec(parameters=tuple(parameters), n_chips=n_chips)


class TestSampledParameter:
    def test_rejects_unknown_target(self):
        with pytest.raises(InvalidParameterError, match="target"):
            SampledParameter("warp_factor", Factor("x", 1.0))

    def test_rejects_node_on_non_capacity(self):
        with pytest.raises(InvalidParameterError, match="node"):
            SampledParameter("d0_scale", Factor("x", 1.0), node="7nm")

    def test_node_allowed_for_capacity(self):
        parameter = SampledParameter("capacity", Factor("c", 0.8), node="7nm")
        assert parameter.key == ("capacity", "7nm")


class TestSamplingSpec:
    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            spec_of()

    def test_rejects_duplicates(self):
        parameter = SampledParameter("d0_scale", Factor("x", 1.0))
        with pytest.raises(InvalidParameterError, match="duplicate"):
            spec_of(parameter, parameter)

    def test_rejects_mixed_global_and_per_node_capacity(self):
        with pytest.raises(InvalidParameterError, match="mix"):
            spec_of(
                SampledParameter("capacity", Factor("cg", 0.9)),
                SampledParameter("capacity", Factor("c7", 0.8), node="7nm"),
            )

    def test_rejects_nonpositive_nominal_demand(self):
        with pytest.raises(InvalidParameterError, match="n_chips"):
            spec_of(
                SampledParameter("d0_scale", Factor("x", 1.0)), n_chips=0.0
            )

    def test_factor_names_in_order(self):
        spec = spec_of(
            SampledParameter("d0_scale", Factor("D0", 1.0)),
            SampledParameter("queue_weeks", Factor("Q", 2.0)),
        )
        assert spec.factor_names == ("D0", "Q")


class TestParameterSamples:
    def test_draws_stay_in_factor_ranges(self):
        spec = default_supply_spec(n_chips=1e7, variation=0.2)
        draws = spec.sample(500, np.random.default_rng(1))
        for i, parameter in enumerate(spec.parameters):
            column = draws.matrix[:, i]
            assert column.min() >= parameter.factor.low
            assert column.max() <= parameter.factor.high

    def test_unsampled_demand_uses_nominal(self):
        spec = spec_of(SampledParameter("d0_scale", Factor("D0", 1.0)))
        draws = spec.sample(8, np.random.default_rng(0))
        assert np.all(draws.n_chips == 1e6)
        assert draws.capacity is None
        assert draws.queue_weeks is None
        assert draws.wafer_rate_scale is None

    def test_global_capacity_is_an_array(self):
        spec = spec_of(SampledParameter("capacity", Factor("c", 0.8)))
        draws = spec.sample(16, np.random.default_rng(0))
        assert isinstance(draws.capacity, np.ndarray)
        assert draws.capacity.shape == (16,)

    def test_per_node_capacity_is_a_mapping(self):
        spec = spec_of(
            SampledParameter("capacity", Factor("c7", 0.8), node="7nm"),
            SampledParameter("capacity", Factor("c14", 0.7), node="14nm"),
        )
        draws = spec.sample(4, np.random.default_rng(0))
        assert set(draws.capacity) == {"7nm", "14nm"}
        assert all(v.shape == (4,) for v in draws.capacity.values())

    def test_kernel_kwargs_keys(self):
        spec = default_supply_spec(n_chips=1e7)
        draws = spec.sample(4, np.random.default_rng(0))
        assert set(draws.kernel_kwargs()) == {
            "capacity", "queue_weeks", "d0_scale", "wafer_rate_scale",
        }

    def test_same_rng_reproduces_matrix(self):
        spec = default_supply_spec(n_chips=1e7)
        a = spec.sample(32, np.random.default_rng(3)).matrix
        b = spec.sample(32, np.random.default_rng(3)).matrix
        assert np.array_equal(a, b)


class TestDefaultSupplySpec:
    def test_covers_all_targets(self):
        spec = default_supply_spec(n_chips=1e7)
        assert {p.target for p in spec.parameters} == set(TARGETS)

    def test_per_node_variant(self):
        spec = default_supply_spec(n_chips=1e7, nodes=("7nm", "5nm"))
        nodes = {p.node for p in spec.parameters if p.target == "capacity"}
        assert nodes == {"7nm", "5nm"}
