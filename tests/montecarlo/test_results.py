"""Tests for Monte Carlo distribution summaries."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.montecarlo.results import (
    ExceedanceCurve,
    MetricSummary,
    StudyResult,
    summarize_metrics,
)


class TestMetricSummary:
    def test_matches_numpy_reductions(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, 5000)
        summary = MetricSummary.from_samples("ttm", samples)
        assert summary.mean == pytest.approx(np.mean(samples))
        assert summary.std == pytest.approx(np.std(samples))
        assert summary.minimum == np.min(samples)
        assert summary.maximum == np.max(samples)
        for p, value in summary.percentiles.items():
            assert value == pytest.approx(np.percentile(samples, p))

    def test_upper_tail_cvar_exceeds_var(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(5.0, 4000)
        summary = MetricSummary.from_samples("cost", samples, tail="upper")
        assert summary.var == pytest.approx(np.percentile(samples, 95))
        assert summary.cvar > summary.var
        assert summary.cvar == pytest.approx(
            samples[samples >= summary.var].mean()
        )

    def test_lower_tail_cvar_below_var(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(100.0, 10.0, 4000)
        summary = MetricSummary.from_samples("cas", samples, tail="lower")
        assert summary.var == pytest.approx(np.percentile(samples, 5))
        assert summary.cvar < summary.var

    def test_rejects_nonfinite_samples(self):
        with pytest.raises(InvalidParameterError, match="non-finite"):
            MetricSummary.from_samples("x", np.array([1.0, np.inf]))

    def test_rejects_empty_and_bad_tail(self):
        with pytest.raises(InvalidParameterError, match="no samples"):
            MetricSummary.from_samples("x", np.array([]))
        with pytest.raises(InvalidParameterError, match="tail"):
            MetricSummary.from_samples("x", np.ones(4), tail="sideways")
        with pytest.raises(InvalidParameterError, match="tail level"):
            MetricSummary.from_samples("x", np.ones(4), tail_level=0.4)

    def test_median_and_band_accessors(self):
        summary = MetricSummary.from_samples("x", np.arange(101.0))
        assert summary.median == pytest.approx(50.0)
        low, high = summary.band()
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(95.0)
        with pytest.raises(InvalidParameterError, match="percentile"):
            summary.band(low=1.0)


class TestExceedanceCurve:
    def test_probabilities_are_survival_function(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        curve = ExceedanceCurve.from_samples("x", samples, n_points=4)
        assert curve.thresholds == (1.0, 2.0, 3.0, 4.0)
        assert curve.probabilities == (0.75, 0.5, 0.25, 0.0)

    def test_monotone_non_increasing(self):
        rng = np.random.default_rng(3)
        curve = ExceedanceCurve.from_samples("x", rng.normal(size=2000))
        assert all(
            a >= b
            for a, b in zip(curve.probabilities, curve.probabilities[1:])
        )

    def test_probability_above_interpolates(self):
        samples = np.array([0.0, 1.0])
        curve = ExceedanceCurve.from_samples("x", samples, n_points=2)
        assert curve.probability_above(-1.0) == 0.5
        assert curve.probability_above(0.5) == pytest.approx(0.25)
        assert curve.probability_above(2.0) == 0.0

    def test_rejects_tiny_grid(self):
        with pytest.raises(InvalidParameterError, match="grid"):
            ExceedanceCurve.from_samples("x", np.ones(4), n_points=1)


class TestStudyResult:
    def build(self):
        rng = np.random.default_rng(4)
        samples = {
            "ttm_weeks": rng.normal(40.0, 2.0, 1000),
            "cas": rng.normal(2e4, 1e3, 1000),
        }
        summaries = summarize_metrics(samples, tails={"cas": "lower"})
        curves = {
            name: ExceedanceCurve.from_samples(name, values)
            for name, values in samples.items()
        }
        return StudyResult(
            design="A11 @ 7nm",
            processes=("7nm",),
            n_samples=1000,
            seed=0,
            summaries=summaries,
            curves=curves,
        )

    def test_getitem_and_unknown_metric(self):
        result = self.build()
        assert result["ttm_weeks"].tail == "upper"
        assert result["cas"].tail == "lower"
        with pytest.raises(KeyError, match="unknown metric"):
            result["ipc"]

    def test_table_lists_every_metric(self):
        table = self.build().table()
        assert "ttm_weeks" in table and "cas" in table
        assert "CVaR" in table
