"""Tests for scripted and stochastic disruption layers."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.market import scenarios
from repro.montecarlo.disruption import (
    MIN_CAPACITY_FRACTION,
    DisruptionEvent,
    DisruptionModel,
    DisruptionTimeline,
    EventEnsemble,
)
from repro.sensitivity.distributions import Factor


def shock(start=4.0, duration=8.0, severity=0.5, nodes=()):
    return DisruptionEvent(
        "capacity_shock", start, duration, severity, nodes=nodes
    )


class TestDisruptionEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            DisruptionEvent("alien_invasion", 0.0, 1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(InvalidParameterError, match="duration"):
            DisruptionEvent("fab_shutdown", 0.0, 0.0)

    def test_rejects_out_of_range_shock_severity(self):
        with pytest.raises(InvalidParameterError, match="severity"):
            DisruptionEvent("capacity_shock", 0.0, 1.0, severity=1.5)

    def test_window_is_half_open(self):
        event = shock(start=4.0, duration=8.0)
        assert not event.active_at(3.9)
        assert event.active_at(4.0)
        assert event.active_at(11.9)
        assert not event.active_at(12.0)

    def test_empty_scope_means_every_node(self):
        assert shock().applies_to("7nm")
        assert shock(nodes=("7nm",)).applies_to("7nm")
        assert not shock(nodes=("7nm",)).applies_to("14nm")


class TestDisruptionTimeline:
    def test_composes_over_scenario_base(self):
        # Base scenario already throttles advanced nodes; the event
        # multiplies on top of the scenario's fraction.
        base = scenarios.advanced_drought(capacity=0.6)
        timeline = DisruptionTimeline(
            base=base, events=(shock(severity=0.5, nodes=("7nm",)),)
        )
        during = timeline.conditions_at(6.0)
        assert during.capacity_for("7nm") == pytest.approx(0.6 * 0.5)
        assert during.capacity_for("14nm") == pytest.approx(0.6)
        after = timeline.conditions_at(20.0)
        assert after.capacity_for("7nm") == pytest.approx(0.6)

    def test_shutdown_leaves_a_trickle(self):
        timeline = DisruptionTimeline(
            base=scenarios.nominal(),
            events=(DisruptionEvent("fab_shutdown", 0.0, 4.0, nodes=("7nm",)),),
        )
        fraction = timeline.conditions_at(1.0).capacity_for("7nm")
        assert fraction == pytest.approx(MIN_CAPACITY_FRACTION)

    def test_demand_multiplier_stacks(self):
        timeline = DisruptionTimeline(
            base=scenarios.nominal(),
            events=(
                DisruptionEvent("demand_spike", 0.0, 10.0, severity=0.5),
                DisruptionEvent("demand_spike", 5.0, 10.0, severity=0.2),
            ),
        )
        assert timeline.demand_multiplier_at(2.0) == pytest.approx(1.5)
        assert timeline.demand_multiplier_at(7.0) == pytest.approx(1.5 * 1.2)
        assert timeline.demand_multiplier_at(20.0) == pytest.approx(1.0)

    def test_queue_quotes_inherited_from_base(self):
        timeline = DisruptionTimeline(
            base=scenarios.shortage_2021(queue_weeks=4.0), events=()
        )
        assert timeline.conditions_at(0.0).queue_weeks_for("7nm") == 4.0


def ensemble(kind="capacity_shock", probability=0.5, nodes=()):
    return EventEnsemble(
        kind,
        probability=probability,
        start_week=Factor("start", 4.0, 0.5),
        duration_weeks=Factor("duration", 10.0, 0.5),
        severity=Factor("severity", 0.5, 0.5),
        nodes=nodes,
    )


class TestEventEnsemble:
    def test_rejects_bad_probability(self):
        with pytest.raises(InvalidParameterError, match="probability"):
            ensemble(probability=1.5)

    def test_occurrence_rate_tracks_probability(self):
        sampled = ensemble(probability=0.3).sample(
            4000, np.random.default_rng(0)
        )
        assert sampled.occurred.mean() == pytest.approx(0.3, abs=0.03)

    def test_multipliers_are_one_where_inactive(self):
        sampled = ensemble(probability=0.0).sample(
            50, np.random.default_rng(1)
        )
        assert np.all(sampled.capacity_multipliers_at(5.0) == 1.0)

    def test_demand_kind_never_touches_capacity(self):
        sampled = ensemble(kind="demand_spike", probability=1.0).sample(
            50, np.random.default_rng(1)
        )
        assert np.all(sampled.capacity_multipliers_at(4.0) == 1.0)
        active = sampled.active_at(4.0)
        multipliers = sampled.demand_multipliers_at(4.0)
        assert np.all(multipliers[active] > 1.0)
        assert np.all(multipliers[~active] == 1.0)


class TestDisruptionModel:
    def model(self, order_week=5.0):
        return DisruptionModel(
            base=scenarios.shortage_2021(),
            ensembles=(
                ensemble(nodes=scenarios.ADVANCED_NODES, probability=0.6),
                ensemble(kind="demand_spike", probability=0.4),
            ),
            order_week=order_week,
        )

    def test_rejects_empty_ensembles(self):
        with pytest.raises(InvalidParameterError, match="ensemble"):
            DisruptionModel(base=scenarios.nominal(), ensembles=())

    def test_draw_covers_affected_nodes_only(self):
        draw = self.model().sample(100, np.random.default_rng(2))
        assert set(draw.capacity) == set(scenarios.ADVANCED_NODES)

    def test_capacity_floored_and_bounded_by_base(self):
        draw = self.model().sample(500, np.random.default_rng(3))
        for values in draw.capacity.values():
            assert np.all(values >= MIN_CAPACITY_FRACTION)
            assert np.all(values <= 1.0)

    def test_same_seed_reproduces_draw(self):
        a = self.model().sample(64, np.random.default_rng(9))
        b = self.model().sample(64, np.random.default_rng(9))
        for node in a.capacity:
            assert np.array_equal(a.capacity[node], b.capacity[node])

    def test_demand_scale_none_when_no_spike_active(self):
        model = DisruptionModel(
            base=scenarios.nominal(),
            ensembles=(ensemble(probability=1.0),),
            order_week=5.0,
        )
        draw = model.sample(32, np.random.default_rng(0))
        assert draw.demand_scale is None
