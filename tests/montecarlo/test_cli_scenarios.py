"""``ttm-cas mc --scenarios`` end-to-end: the stress-suite report."""

import json

from repro.cli import main


class TestMcScenariosCommand:
    def test_emits_cvar_and_exceedance_tables(self, capsys):
        code = main(
            [
                "mc",
                "--design", "a11",
                "--samples", "32",
                "--scenarios", "baseline,fab-outage:severe",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Scenario stress suite" in out
        assert "CVaR ladder" in out
        assert "exceedance vs the baseline world" in out
        for metric in ("ttm_weeks", "cas", "cost_per_chip_usd"):
            assert metric in out
        for row in ("baseline", "fab-outage:severe"):
            assert row in out

    def test_json_output_covers_every_scenario(self, capsys):
        code = main(
            [
                "mc",
                "--design", "a11",
                "--samples", "32",
                "--scenarios", "logistics",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        text = json.dumps(payload)
        for severity in ("mild", "moderate", "severe", "extreme"):
            assert f"logistics:{severity}" in text

    def test_unknown_selector_fails_cleanly(self, capsys):
        code = main(
            ["mc", "--design", "a11", "--scenarios", "meteor-strike"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown stress scenario" in captured.err
